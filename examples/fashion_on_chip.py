"""Fashion workload: the paper's harder dataset end to end, plus the
reordering ablation and the timing/FPS analysis of the encoded streams.

Run:  python examples/fashion_on_chip.py
"""

import numpy as np

from repro import (
    SpikingClassifier,
    SushiRuntime,
    Trainer,
    TrainerConfig,
    accuracy,
    binarize_network,
    consistency,
    load_fashion,
    plan_network,
)
from repro.data.datasets import class_names
from repro.snn.encoding import PoissonEncoder
from repro.ssnn import encode_inference


def main() -> None:
    print("training on the synthetic fashion dataset (harder: heavier "
          "noise/blur/jitter) ...")
    data = load_fashion(train_size=1200, test_size=300, seed=1)
    model = SpikingClassifier.mlp(
        hidden_size=128, time_steps=5, binary_aware=True, seed=1
    )
    Trainer(model, TrainerConfig(epochs=12, batch_size=64,
                                 learning_rate=5e-3, verbose=True)).fit(
        data.train_images, data.train_labels
    )
    reference = model.predict(data.test_images)
    print(f"reference accuracy: {accuracy(reference, data.test_labels):.3f}")

    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    trains = encoder.encode_steps(
        data.test_images.reshape(len(data.test_images), -1),
        model.time_steps,
    )

    print("\nchip inference (reordered/bucketed vs naive synapse order):")
    ordered = SushiRuntime(chip_n=16).infer(network, trains)
    naive = SushiRuntime(chip_n=16, reorder=False).infer(network, trains)
    print(f"  ordered: acc={accuracy(ordered.predictions, data.test_labels):.3f} "
          f"consistency={consistency(ordered.predictions, reference):.3f} "
          f"spurious={ordered.spurious_decisions}")
    print(f"  naive  : acc={accuracy(naive.predictions, data.test_labels):.3f} "
          f"spurious={naive.spurious_decisions}  <- erroneous excitation")

    print("\nper-class chip accuracy:")
    names = class_names("fashion")
    for c in range(10):
        mask = data.test_labels == c
        if mask.any():
            acc = float((ordered.predictions[mask] == c).mean())
            print(f"  {names[c]:<11} {acc:.2f}  (n={int(mask.sum())})")

    print("\nencoded-stream timing of one inference on a 16x16 mesh:")
    plan = plan_network(network, 16)
    enc = encode_inference(plan, trains[:, 0, :])
    print(f"  passes: {enc.total_passes}  spikes streamed: "
          f"{enc.spikes_streamed}  synaptic ops: {enc.synaptic_ops:,}")
    print(f"  inference time: {enc.total_ps / 1e3:.1f} ns  "
          f"(reload share {100 * enc.reload_fraction:.1f}%, transmission "
          f"share {100 * enc.transmission_fraction:.1f}%)")
    print(f"  single-sample throughput: {enc.fps:,.0f} FPS")


if __name__ == "__main__":
    main()
