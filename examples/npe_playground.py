"""NPE playground: watch the SC-chain counter integrate and fire.

Builds a gate-level NPE (a serial chain of state controllers), walks it
through the asynchronous protocol of paper section 5.2, and prints the
counter state after every phase -- including the down-counting inhibitory
mode and the underflow failure mode that the bucketing algorithm exists to
prevent.

Run:  python examples/npe_playground.py
"""

from repro.neuro.npe import BehavioralNPE, GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.timing import NPEDriver
from repro.rsfq import Netlist, Simulator


def show(npe, label):
    bits = "".join(str(int(sc.state)) for sc in reversed(npe.scs))
    print(f"  {label:<42} counter={npe.counter_value:4d}  bits={bits}")


def main() -> None:
    n_sc = 6
    print(f"Gate-level NPE with {n_sc} SCs "
          f"(2**{n_sc} = {2 ** n_sc} membrane states)\n")
    net = Netlist("playground")
    npe = GateLevelNPE(net, "npe", n_sc=n_sc)
    sim = Simulator(net)
    driver = NPEDriver(sim, npe)

    threshold = 10
    driver.reset()
    driver.configure_threshold(threshold)
    driver.run()
    show(npe, f"after rst + threshold preload ({threshold})")

    driver.set_polarity(Polarity.SET1)
    driver.pulses(6)
    driver.run()
    show(npe, "after 6 excitatory pulses")

    driver.set_polarity(Polarity.SET0)
    driver.pulses(2)
    driver.run()
    show(npe, "after 2 inhibitory pulses (down-count)")

    driver.set_polarity(Polarity.SET1)
    driver.pulses(6)
    driver.run()
    show(npe, "after 6 more excitatory pulses")
    print(f"\n  output spikes: {len(npe.fire_times)} "
          f"(net input 10 reached the threshold exactly)")
    print(f"  timing violations: {len(sim.violations)}")

    print("\nUnderflow demo (behavioural NPE): inhibition through zero")
    beh = BehavioralNPE(n_sc=4)
    beh.rst()
    beh.configure_threshold(3)
    spurious = beh.inhibit(14)  # preload 13, drive below zero
    print(f"  preload 13, 14 inhibitory pulses -> {spurious} spurious "
          "output pulse(s): the borrow escaping the chain is")
    print("  indistinguishable from a fire -- the erroneous excitation "
          "that synapse bucketing prevents.")


if __name__ == "__main__":
    main()
