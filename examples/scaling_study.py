"""Scaling study: resources, performance, power, and efficiency vs mesh
size -- the paper's Figs. 13, 19, 20, 21 and Table 4 in one report.

Run:  python examples/scaling_study.py
"""

from repro.harness.experiments import (
    run_delay_fraction,
    run_fig13,
    run_fig19,
    run_fig20,
    run_fig21,
    run_fps,
    run_table2,
    run_table4,
)


def main() -> None:
    for runner in (run_table2, run_fig13, run_fig19, run_fig20, run_fig21,
                   run_table4, run_fps, run_delay_fraction):
        print(runner()["report"])
        print()


if __name__ == "__main__":
    main()
