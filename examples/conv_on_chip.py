"""Convolutional SNN on SUSHI (extension beyond the paper's MLP).

The paper's evaluation uses a fully-connected SNN, but its background
(section 2.2) frames convolutional and pooling layers as standard SNN
structure, and the bit-slice method is layer-agnostic once a layer is
expressed as integer synapses.  This example trains a small binary conv
SNN, *lowers* the convolution to a structured-sparse integer layer and the
OR-pooling to a threshold-1 layer, and streams the whole stack through the
SUSHI chip model.

Run:  python examples/conv_on_chip.py
"""

from repro import SushiRuntime, Trainer, TrainerConfig, load_digits
from repro.harness.artifacts import downsample_images
from repro.snn import (
    BinaryConv2d,
    BinaryLinear,
    Flatten,
    Sequential,
    SpikePool2d,
    ToSpatial,
    lower_network,
)
from repro.snn.encoding import PoissonEncoder
from repro.snn.model import SpikingClassifier
from repro.snn.neurons import IFNode
from repro.ssnn import plan_network, verify_plan


def main() -> None:
    print("training a binary conv SNN (1x14x14 -> conv3x4 -> pool2 -> fc) ...")
    data = load_digits(train_size=800, test_size=200, seed=5)
    train_images = downsample_images(data.train_images, 2)
    test_images = downsample_images(data.test_images, 2)
    network = Sequential(
        ToSpatial(1, 14, 14),
        BinaryConv2d(1, 4, kernel=3, seed=0),   # -> 4x12x12
        IFNode(),
        SpikePool2d(2),                          # -> 4x6x6
        Flatten(),
        BinaryLinear(144, 10, seed=1),
        IFNode(),
    )
    model = SpikingClassifier(network, time_steps=4, encoder_seed=7)
    Trainer(model, TrainerConfig(epochs=12, batch_size=32,
                                 learning_rate=5e-3, verbose=True)).fit(
        train_images, data.train_labels
    )
    print(f"model accuracy: "
          f"{(model.predict(test_images) == data.test_labels).mean():.3f}")

    print("\nlowering to the chip's integer layer stack ...")
    lowered = lower_network(model, input_shape=(1, 14, 14))
    for i, layer in enumerate(lowered.layers):
        kind = ["conv (unrolled)", "OR-pool", "classifier"][i]
        print(f"  layer {i} ({kind}): {layer.in_features} -> "
              f"{layer.out_features}, thresholds "
              f"{layer.thresholds.min()}..{layer.thresholds.max()}")
    plan = plan_network(lowered, chip_n=16)
    verify_plan(plan).raise_if_failed()
    print(f"  bit-slice plan: {plan.pass_count} passes on a 16x16 mesh, "
          f"verified faithful")

    print("\nchip inference ...")
    encoder = PoissonEncoder(seed=model.encoder_seed)
    trains = encoder.encode_steps(
        test_images.reshape(len(test_images), -1), model.time_steps
    )
    result = SushiRuntime(chip_n=16).infer(lowered, trains)
    acc = (result.predictions == data.test_labels).mean()
    print(f"  chip accuracy: {acc:.3f} "
          f"(spurious decisions: {result.spurious_decisions})")


if __name__ == "__main__":
    main()
