"""Quickstart: train a small SNN and run it on the SUSHI chip model.

Pipeline (the paper's Fig. 12 workflow, scaled down to run in ~a minute):

1. generate the synthetic digit dataset;
2. train a binarization-aware spiking MLP with surrogate-gradient BPTT;
3. convert it to the integer SSNN form (XNOR binarization, thresholds
   folded from the scaling parameters);
4. bit-slice it onto a 16x16 SUSHI mesh and run chip inference;
5. compare chip predictions against the software reference.

Run:  python examples/quickstart.py
"""

from repro import (
    SpikingClassifier,
    SushiRuntime,
    Trainer,
    TrainerConfig,
    accuracy,
    binarize_network,
    consistency,
    load_digits,
)
from repro.snn.encoding import PoissonEncoder


def main() -> None:
    print("1) generating synthetic digits ...")
    data = load_digits(train_size=800, test_size=200, seed=0)

    print("2) training a binary-aware spiking MLP (784-64-10, T=5) ...")
    model = SpikingClassifier.mlp(
        hidden_size=64, time_steps=5, binary_aware=True, seed=0
    )
    trainer = Trainer(
        model, TrainerConfig(epochs=10, batch_size=64, learning_rate=5e-3,
                             verbose=True)
    )
    trainer.fit(data.train_images, data.train_labels)
    reference_preds = model.predict(data.test_images)
    print(f"   reference accuracy: "
          f"{accuracy(reference_preds, data.test_labels):.3f}")

    print("3) binarizing to the integer SSNN form ...")
    network = binarize_network(model)
    for i, layer in enumerate(network.layers):
        print(f"   layer {i}: {layer.in_features}x{layer.out_features}, "
              f"thresholds {layer.thresholds.min()}..{layer.thresholds.max()}")

    print("4) chip inference on a 16x16 SUSHI mesh (bit-sliced) ...")
    encoder = PoissonEncoder(seed=model.encoder_seed)
    trains = encoder.encode_steps(
        data.test_images.reshape(len(data.test_images), -1),
        model.time_steps,
    )
    result = SushiRuntime(chip_n=16).infer(network, trains)

    print("5) results:")
    print(f"   chip accuracy     : "
          f"{accuracy(result.predictions, data.test_labels):.3f}")
    print(f"   chip/ref agreement: "
          f"{consistency(result.predictions, reference_preds):.3f}")
    print(f"   synaptic ops      : {result.synaptic_ops:,}")
    print(f"   spurious decisions: {result.spurious_decisions} "
          f"(0 == bucketing guarantee held)")


if __name__ == "__main__":
    main()
