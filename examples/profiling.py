"""Deployment analysis: per-layer profile, metrics, margins, regression.

Shows the analysis tooling a deployment would run before committing to a
chip configuration: the per-layer time/energy profile, per-class quality
metrics, the timing sign-off margins of the gate-level protocol, and a
headline-metric snapshot for regression tracking.

Run:  python examples/profiling.py
"""

from repro import (
    SpikingClassifier,
    SushiRuntime,
    Trainer,
    TrainerConfig,
    binarize_network,
    load_digits,
)
from repro.harness.regression import snapshot_headline_metrics
from repro.harness.reporting import format_table
from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.state_controller import Polarity
from repro.snn.encoding import PoissonEncoder
from repro.snn.metrics import per_class_report, spike_stats
from repro.ssnn import profile_network, profile_report


def main() -> None:
    print("training a compact model ...")
    data = load_digits(train_size=1000, test_size=200, seed=0)
    model = SpikingClassifier.mlp(hidden_size=96, time_steps=5,
                                  binary_aware=True, seed=0)
    Trainer(model, TrainerConfig(epochs=12, batch_size=64,
                                 learning_rate=5e-3)).fit(
        data.train_images, data.train_labels
    )
    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    trains = encoder.encode_steps(
        data.test_images.reshape(len(data.test_images), -1),
        model.time_steps,
    )
    result = SushiRuntime(chip_n=16).infer(network, trains)

    print("\n-- per-layer profile (one sample, 16x16 mesh) --")
    print(profile_report(profile_network(network, trains[:, 0, :],
                                         chip_n=16)))

    print("\n-- per-class quality --")
    print(format_table(per_class_report(result.predictions,
                                        data.test_labels)))

    print("\n-- output spike activity --")
    stats = spike_stats(result.output_raster)
    print(f"mean rate {stats.mean_rate:.3f}, active units "
          f"{stats.active_fraction:.2f}, spikes/sample "
          f"{stats.spikes_per_sample:.1f}, silent steps "
          f"{stats.silent_steps:.2f}")

    print("\n-- gate-level timing sign-off (tightest slack first) --")
    chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=4, max_strength=2))
    driver = ChipDriver(chip)
    driver.begin_timestep([3, 5])
    driver.configure_weights([[1, 2], [2, 1]])
    driver.run_pass(Polarity.SET1, [True, True])
    print(format_table(driver.sim.margin_report()[:6]))

    print("\n-- headline-metric snapshot (regression gate) --")
    snap = snapshot_headline_metrics()
    for key, value in sorted(snap.metrics.items()):
        print(f"  {key}: {value:,.2f}")


if __name__ == "__main__":
    main()
