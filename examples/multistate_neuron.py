"""The biological multi-state neuron on an NPE (paper Figs. 6-7).

Drives a state-controller-chain NPE through the paper's state-transition
neuron model: spike stimuli charge the membrane, time stimuli leak it, and
once the threshold is reached a programmed rising/falling/undershoot
sequence plays out, emitting the visible spike at the top of the rise.
The chip-side counter (flux states of the SC chain) is plotted against
the automaton's state at every step.

Run:  python examples/multistate_neuron.py
"""

from repro.neuro.multistate import MultiStatePulseProgram


def main() -> None:
    program = MultiStatePulseProgram(threshold=5, rising_steps=3,
                                     falling_steps=3, n_sc=6)
    # A stimulus story: a burst that fails to initiate, decay, then a
    # stronger burst that fires, and the refractory return to rest.
    stimuli = (
        ["spike"] * 3 + ["time"] * 4          # failed initiation + leak
        + ["spike"] * 5                        # reaches threshold
        + ["time"] * 9                         # rise, fire, fall, rest
    )
    print("stimulus        automaton  counter  membrane trace")
    peak = program.threshold + program.rising_steps \
        + program.falling_steps + 2
    for stimulus in stimuli:
        fired = (program.time_stimulus() if stimulus == "time"
                 else program.spike_stimulus())
        bar = "#" * program.counter_value
        label = program.reference.state.label()
        marker = "  <-- SPIKE" if fired else ""
        print(f"{stimulus:<14}  {label:>9}  {program.counter_value:>7}  "
              f"|{bar.ljust(peak)}|{marker}")
    print(f"\nspikes emitted: {program.spikes_emitted}")
    print("(chip counter tracked the Fig. 7 automaton exactly at every "
          "step -- the NPE's flux state IS the neuron state)")


if __name__ == "__main__":
    main()
