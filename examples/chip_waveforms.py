"""Drive the fabricated 2-NPE chip configuration at gate level.

Reproduces the flavour of the paper's Fig. 16: a 1x1 SUSHI chip (one relay
NPE, one neuron NPE -- the configuration that was actually fabricated) is
built cell by cell from RSFQ primitives, driven through the asynchronous
protocol (rst -> write -> set -> input), and observed through pulse-level
conversion, both with ideal wire delays ("simulation") and with Gaussian
delay jitter standing in for the fabricated chip.

Run:  python examples/chip_waveforms.py
"""

from repro import ChipConfig, GateLevelChip, Polarity
from repro.neuro.chip import ChipDriver
from repro.rsfq.waveform import PulseTrace, render_waveform


def run_chip(jitter_ps: float, seed: int):
    """One integrate-and-fire episode: threshold 3, five input spikes."""
    chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=8))
    trace = PulseTrace()
    sim = chip.simulator(jitter_ps=jitter_ps, seed=seed, trace=trace)
    driver = ChipDriver(chip, sim)
    driver.begin_timestep([3])          # fire on the third net pulse
    driver.configure_weights([[1]])
    for _ in range(5):                  # five excitatory input spikes
        driver.run_pass(Polarity.SET1, [True])
    relay_times = trace.times("rowline0.thru", "din")
    return chip, relay_times, sim


def main() -> None:
    ideal_chip, ideal_relay, ideal_sim = run_chip(jitter_ps=0.0, seed=1)
    chip_chip, chip_relay, chip_sim = run_chip(jitter_ps=0.4, seed=2)

    t_end = max(ideal_relay[-1], ideal_chip.fire_times(0)[-1]) + 500.0
    print("Gate-level 2-NPE chip, ideal wire delays ('simulation') vs")
    print("jittered wire delays ('fabricated chip'):\n")
    print(render_waveform(
        {
            "NPE0 (sim)": ideal_relay,
            "NPE0 (chip)": chip_relay,
            "NPE1 (sim)": ideal_chip.fire_times(0),
            "NPE1 (chip)": chip_chip.fire_times(0),
        },
        t_end=t_end, width=76,
    ))
    print(f"\nNPE0 relayed {len(ideal_relay)} input pulses; NPE1 fired "
          f"{len(ideal_chip.fire_times(0))} times (threshold 3, then a "
          f"second fire would need 2**8 more pulses).")
    print(f"Counter left at {ideal_chip.col_npes[0].counter_value} "
          f"(= preload {2**8 - 3} + 5 pulses, mod 256).")
    print(f"Timing violations: sim={len(ideal_sim.violations)}, "
          f"chip={len(chip_sim.violations)}")
    match = (
        len(ideal_relay) == len(chip_relay)
        and len(ideal_chip.fire_times(0)) == len(chip_chip.fire_times(0))
    )
    print(f"Pulse counts identical across sim/chip: {match}")


if __name__ == "__main__":
    main()
