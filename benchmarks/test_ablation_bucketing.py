"""Ablation: synapse reordering & bucketing (sections 4.2.2 / 5.1).

Paper claims: the optimisation's own accuracy impact is negligible (<1%
relative to ideal software inference), while it "alleviate[s] the problem
of erroneous excitation" -- i.e. the naive order suffers premature fires.
"""

from conftest import emit

from repro.harness.experiments import run_ablation_bucketing


def test_ablation_bucketing(benchmark):
    result = benchmark.pedantic(run_ablation_bucketing, rounds=1,
                                iterations=1)
    emit(result["report"])
    # Reordered+bucketed chip inference is exactly the software decision:
    # zero spurious fires, identical accuracy (<1% impact, trivially).
    assert result["ordered_spurious"] == 0
    assert abs(result["ordered_acc"] - result["software_acc"]) < 0.01
    # Naive ordering produces erroneous excitation and loses accuracy.
    assert result["naive_spurious"] > 0
    assert result["naive_acc"] < result["ordered_acc"] - 0.05
