"""Resilience campaign benchmark: regenerate the fault-degradation curves
and assert their qualitative shape (see ``docs/FAULTS.md``).

The bit-exact numbers are pinned separately in ``BENCH_faults.json``
(``bench_faults.py --check``); this test asserts the physics-level trends
that must hold whatever the seeds: a clean baseline at p=0, monotone
degradation, near-total loss under heavy pulse dropping, and a recorded
self-healing recovery trail for the acceptance scenario.
"""

from conftest import emit

from repro.harness.experiments import run_resilience


def test_resilience_campaign_shape(once):
    result = once("resilience", run_resilience)
    emit(result["report"])

    assert result["zero_probability_clean"]
    assert result["ber_monotone"]

    points = result["campaign"]["points"]
    drop = {
        pt["probability"]: pt["ber"]
        for pt in points if pt["kind"] == "pulse_drop"
        and pt["jitter_ps"] == 0.0
    }
    assert drop[0.0] == 0.0
    # Dropping 30% of pulses per wire across a 24-stage pipeline loses
    # essentially the whole stream.
    assert drop[max(drop)] > 0.9


def test_self_healing_acceptance(once):
    result = once("resilience", run_resilience)
    # The ISSUE acceptance scenario: pulse-drop p=0.05 inference finishes
    # through retry/fallback with the degradation recorded.
    assert result["healed_attempts"] >= 2
    assert result["healed_degraded"] is True
    assert any("fallback" in line for line in result["healed_recovery"])
