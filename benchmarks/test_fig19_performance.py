"""Fig. 19: performance (GSOPS) vs number of NPEs."""

from conftest import emit

from repro.baselines import TRUENORTH
from repro.harness.experiments import run_fig19


def test_fig19_performance(benchmark):
    result = benchmark.pedantic(run_fig19, rounds=1, iterations=1)
    emit(result["report"])
    rows = result["rows"]
    gsops = [row["gsops"] for row in rows]
    # Monotone growth, sublinear at scale (wiring penalty).
    assert gsops == sorted(gsops)
    assert gsops[-1] < 2 * gsops[-2] * 1.01
    # Peak 1,355 GSOPS (23x TrueNorth).
    assert abs(gsops[-1] - 1355) / 1355 < 0.02
    # Crossover with TrueNorth happens at the smallest configuration
    # already; every SUSHI point clears the TrueNorth line.
    assert all(g > TRUENORTH.gsops for g in gsops)
