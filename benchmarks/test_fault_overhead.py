"""The zero-fault overhead gate: attaching no fault model (or an inactive
one) must not slow the event engine down.

Two layers of defence:

* **Structural** (deterministic, the real gate): ``faults=None`` and an
  inactive :class:`~repro.rsfq.faults.FaultModel` must bind the *same*
  specialised delivery fast path and reuse the fan-out table's own
  cell/port views -- i.e. the fault subsystem is provably absent from the
  hot loop, so its overhead is zero by construction.
* **Empirical** (best-of-N wall clock): a back-to-back run of the same
  workload must stay under the ISSUE's 3% overhead budget.  Best-of
  timing keeps scheduler noise out; the structural gate above is what
  actually prevents regressions.
"""

import time

from repro.harness.campaign import build_reference_pipeline
from repro.rsfq import FaultModel, Simulator
from repro.rsfq.events import EventQueue

OVERHEAD_BUDGET = 1.03  # <3% per ISSUE acceptance criteria
REPEATS = 7


def make_sim(faults):
    net, probe = build_reference_pipeline(64)
    sim = Simulator(net, faults=faults)
    return sim, probe


def timed_run(faults) -> float:
    sim, _probe = make_sim(faults)
    for k in range(256):
        sim.schedule_input("j0", "din", 50.0 * k)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


class TestStructuralGuard:
    def test_none_and_inactive_model_bind_identical_fast_path(self):
        for faults in (None, FaultModel()):
            sim, _ = make_sim(faults)
            assert sim._fault_runtime is None
            assert sim._cells_view is sim._fanout.cell_list
            assert sim._ports_view is sim._fanout.input_ports
            assert sim.deliver.__func__ is Simulator._deliver_ideal_heap
            assert type(sim.queue) is EventQueue

    def test_active_model_is_the_only_slow_binding(self):
        sim, _ = make_sim(FaultModel.single("pulse_drop", 0.0))
        assert sim._fault_runtime is not None
        assert sim.deliver.__func__ is Simulator._deliver_faulty


class TestEmpiricalGuard:
    def test_inactive_model_within_overhead_budget(self):
        base = min(timed_run(None) for _ in range(REPEATS))
        inactive = min(timed_run(FaultModel()) for _ in range(REPEATS))
        ratio = inactive / base
        print(f"\nzero-fault overhead ratio: {ratio:.4f}x "
              f"(budget {OVERHEAD_BUDGET}x)")
        assert ratio < OVERHEAD_BUDGET, (
            f"inactive fault model cost {ratio:.4f}x "
            f"(budget {OVERHEAD_BUDGET}x) -- the fast-path specialisation "
            "regressed; see Simulator._bind_deliver"
        )
