"""Chaos benchmark report: ``BENCH_chaos.json`` writer/checker.

Runs the deterministic chaos campaign (:mod:`repro.harness.chaos`) and
a zero-failure overhead measurement against the pre-supervision pool
replica (``legacy_pool.LegacyInferencePool``), and pins the
deterministic outcomes the way ``bench_faults.py`` pins campaign
counters:

* **Pinned** (checked by ``--check`` and the CI chaos-smoke step): the
  pass/fail verdict of every scenario (each scenario internally asserts
  bit-identical-to-serial predictions and full worker restoration), the
  exact chaos-injection counts of the single-shot scenarios, and the
  breaker-cycle transition counters (opens / closes / probes /
  pool_failures).  Any drift means the supervision *semantics* changed
  and must be acknowledged by regenerating the baseline.
* **Informational** (recorded, never asserted): per-scenario recovery
  wall time and the measured zero-failure supervision overhead ratio
  (the structural <5% guard lives in
  ``benchmarks/test_supervision_overhead.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --write   # new baseline
    PYTHONPATH=src python benchmarks/bench_chaos.py --check   # CI drift gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from legacy_pool import LegacyInferencePool  # noqa: E402
from legacy_runtime import make_serving_workload  # noqa: E402
from repro.harness.chaos import run_chaos  # noqa: E402
from repro.ssnn import InferencePool, compile_network  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_chaos.json"
SCHEMA_VERSION = 1

#: Deterministic per-scenario detail fields pinned alongside ``passed``.
PINNED_DETAILS = {
    "worker-kill": ("fired",),
    "shm-unlink": ("fired",),
    "shm-corrupt": ("fired",),
    "breaker-cycle": ("opens", "closes", "probes", "pool_failures"),
    # Node-level scenarios: only the verdict is pinned here; the exact
    # router/autoscaler counters are pinned by bench_cluster.py.
}


def run_campaign() -> dict:
    report = run_chaos(quick=True)
    if not report["passed"]:
        failing = [s["name"] for s in report["scenarios"]
                   if not s["passed"]]
        raise AssertionError(
            f"chaos scenarios failed their recovery invariants: {failing}"
        )
    return report


def measure_zero_failure_overhead(repeats: int = 3, calls: int = 4) -> dict:
    """Steady-state supervised-vs-legacy pool timing (informational; the
    asserted <5% gate is ``test_supervision_overhead.py``)."""
    network, rows, _steps, _batch = make_serving_workload(
        sizes=(196, 64, 10), batch=96,
    )
    compiled = compile_network(network, 16, 10)

    def sweep(pool) -> float:
        start = time.perf_counter()
        for _ in range(calls):
            pool.infer_rows(rows)
        return time.perf_counter() - start

    with LegacyInferencePool(compiled, workers=2) as legacy:
        legacy.infer_rows(rows)  # warm-up
        t_legacy = min(sweep(legacy) for _ in range(repeats))
    with InferencePool(compiled, workers=2) as pool:
        pool.infer_rows(rows)  # warm-up
        t_supervised = min(sweep(pool) for _ in range(repeats))
    return {
        "legacy_pool_s": round(t_legacy, 6),
        "supervised_pool_s": round(t_supervised, 6),
        "overhead_ratio": round(t_supervised / t_legacy, 4),
    }


def measure() -> dict:
    campaign = run_campaign()
    recovery = {
        entry["name"]: entry["elapsed_s"]
        for entry in campaign["scenarios"]
    }
    return {
        "version": SCHEMA_VERSION,
        "note": ("scenario verdicts, injection counts and breaker "
                 "counters are pinned by --check; recovery latencies "
                 "and the overhead ratio are informational"),
        "campaign": campaign,
        "recovery_latency_s": recovery,
        "zero_failure_overhead": measure_zero_failure_overhead(),
    }


def _pinned_view(report: dict) -> dict:
    view = {}
    scenarios = {
        entry["name"]: entry
        for entry in report.get("campaign", {}).get("scenarios", [])
    }
    for name, entry in scenarios.items():
        view[f"chaos.{name}.passed"] = entry.get("passed")
        for field in PINNED_DETAILS.get(name, ()):
            view[f"chaos.{name}.{field}"] = (
                entry.get("details", {}).get(field)
            )
    view["chaos.schema"] = report.get("campaign", {}).get("schema")
    view["chaos.all_passed"] = report.get("campaign", {}).get("passed")
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("chaos drift against BENCH_chaos.json:", file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"chaos smoke OK: {len(expected)} pinned fields match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-field drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        ratio = report["zero_failure_overhead"]["overhead_ratio"]
        print(f"  zero-failure overhead ratio = {ratio}x")
        for name, elapsed in report["recovery_latency_s"].items():
            print(f"  {name}: recovered in {elapsed}s")
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
