"""Design-space exploration: mesh size vs FPS, area and energy on the
real digit workload (extension; section 4.2.3's scalability knob)."""

from conftest import emit

from repro.harness.experiments import run_design_space


def test_design_space(benchmark):
    result = benchmark.pedantic(run_design_space, rounds=1, iterations=1)
    emit(result["report"])
    rows = result["rows"]
    # Bigger meshes always cut passes and latency...
    passes = [row["passes"] for row in rows]
    latency = [row["latency_us"] for row in rows]
    assert passes == sorted(passes, reverse=True)
    assert latency == sorted(latency, reverse=True)
    # ...but density/energy peak at an interior optimum: the sweep must
    # not be monotone in FPS/mm^2 (the trade-off is real), and the
    # optimum matches the paper's chosen 16x16 deployment.
    densities = [row["fps_per_mm2"] for row in rows]
    assert densities != sorted(densities)
    assert result["best_density"] == "16x16"
