"""Table 4: SUSHI vs TrueNorth vs Tianjic."""

from conftest import emit

from repro.baselines import TIANJIC, TRUENORTH
from repro.harness.experiments import run_table4


def test_table4_comparison(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    emit(result["report"])
    gsops = result["gsops"]
    efficiency = result["efficiency"]
    # Headline numbers (paper: 1,355 GSOPS; 32,366 GSOPS/W; 41.87 mW).
    assert abs(gsops - 1355) / 1355 < 0.02
    assert abs(efficiency - 32_366) / 32_366 < 0.02
    assert abs(result["power_mw"] - 41.87) / 41.87 < 0.02
    # Who wins and by what factor: 23x TrueNorth throughput; 81x / 50x
    # power efficiency over TrueNorth / Tianjic.
    assert 21 < gsops / TRUENORTH.gsops < 25
    assert 75 < efficiency / TRUENORTH.gsops_per_w < 87
    assert 46 < efficiency / TIANJIC.gsops_per_w < 54
