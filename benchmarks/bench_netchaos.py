"""Network-chaos benchmark report: ``BENCH_netchaos.json`` writer/checker.

Runs the network-layer chaos campaign (the ``net-*`` scenarios of
:mod:`repro.harness.chaos`: resilient client -> seeded chaos proxy ->
live gateway -> server) and pins the deterministic outcomes the way
``bench_chaos.py`` pins the worker/node campaign:

* **Pinned** (checked by ``--check`` and the CI netchaos-smoke step):
  the pass/fail verdict of every network scenario (each internally
  asserts predictions bit-identical to a fault-free serial run and an
  exactly-once server compute count), the full client retry/hedge/
  timeout counter ledgers, the proxy's exact fault fire counts, the
  gateway's idempotent-replay counters, and the overload-shed ledger.
  Any drift means the retry/hedging/shedding *semantics* changed and
  must be acknowledged by regenerating the baseline.
* **Informational** (recorded, never asserted): per-scenario wall
  time and the proxy byte counters (TCP segmentation and timed-out
  responses make raw byte totals racy).

Usage::

    PYTHONPATH=src python benchmarks/bench_netchaos.py --write  # baseline
    PYTHONPATH=src python benchmarks/bench_netchaos.py --check  # drift gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.gateway.client import CLIENT_COUNTER_FIELDS  # noqa: E402
from repro.harness.chaos import NETWORK_SCENARIOS, run_chaos  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_netchaos.json"
SCHEMA_VERSION = 1


def run_campaign() -> dict:
    report = run_chaos(quick=True, names=list(NETWORK_SCENARIOS))
    if not report["passed"]:
        failing = [s["name"] for s in report["scenarios"]
                   if not s["passed"]]
        raise AssertionError(
            f"network chaos scenarios failed their resilience "
            f"invariants: {failing}"
        )
    return report


def measure() -> dict:
    campaign = run_campaign()
    wall = {
        entry["name"]: entry["elapsed_s"]
        for entry in campaign["scenarios"]
    }
    return {
        "version": SCHEMA_VERSION,
        "note": ("scenario verdicts, client retry/hedge ledgers, proxy "
                 "fire counts, gateway replay counters and the shed "
                 "ledger are pinned by --check; wall times and byte "
                 "counters are informational"),
        "campaign": campaign,
        "wall_time_s": wall,
    }


def _pinned_view(report: dict) -> dict:
    view = {}
    scenarios = {
        entry["name"]: entry
        for entry in report.get("campaign", {}).get("scenarios", [])
    }
    for name, entry in scenarios.items():
        view[f"netchaos.{name}.passed"] = entry.get("passed")
        details = entry.get("details") or {}
        for ledger in ("client", "shed_client"):
            counters = details.get(ledger)
            if counters is None:
                continue
            for field in CLIENT_COUNTER_FIELDS:
                view[f"netchaos.{name}.{ledger}.{field}"] = (
                    counters.get(field)
                )
        proxy = details.get("proxy") or {}
        if proxy:
            view[f"netchaos.{name}.fired"] = proxy.get("fired")
            view[f"netchaos.{name}.connections"] = (
                proxy.get("connections")
            )
        for key in ("gateway_replays", "sheds", "admitted", "n_trains"):
            if key in details:
                view[f"netchaos.{name}.{key}"] = details[key]
    view["netchaos.schema"] = report.get("campaign", {}).get("schema")
    view["netchaos.all_passed"] = report.get("campaign", {}).get("passed")
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("network chaos drift against BENCH_netchaos.json:",
              file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"netchaos smoke OK: {len(expected)} pinned fields match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-field drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        for name, elapsed in report["wall_time_s"].items():
            print(f"  {name}: settled in {elapsed}s")
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
