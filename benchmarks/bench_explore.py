"""Design-space explorer benchmark: ``BENCH_explore.json`` writer/checker.

Runs the full default grid (NPE count up to 32 -- the paper's 16x16
mesh) three ways over one shared cache root:

1. **cold serial** -- fresh cache, ``workers=0``: every point evaluates;
2. **warm parallel** -- same cache, ``workers=2``: every point must come
   back from the explore-point cache (the 100% hit rate is pinned);
3. **cold parallel** -- second fresh cache, ``workers=2``: the pinned
   view must be *bit-identical* to the serial sweep's (the determinism
   contract across process-pool worker counts).

Two field classes live in the JSON (the repo-wide convention):

* **Pinned** (checked by ``--check`` and CI): the schema, point /
  feasible / infeasible counts, the Pareto frontier keys, the workload
  fingerprint, the pinned-view digest, the warm hit rate (1.0), the
  serial-vs-parallel equality verdict and the trace-probe fallback
  count (0).  All deterministic on any machine.
* **Informational** (recorded, never asserted): wall clocks and the
  warm-over-cold speedup.  The enforced ">= 3x" gate lives in
  ``test_explore_speedup.py`` where both sweeps run back-to-back.

Usage::

    PYTHONPATH=src python benchmarks/bench_explore.py --write
    PYTHONPATH=src python benchmarks/bench_explore.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.explore import (  # noqa: E402
    ExploreConfig,
    ExploreCounters,
    pinned_digest,
    pinned_view,
    run_explore,
)
from repro.ssnn import PlanCache  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_explore.json"
SCHEMA_VERSION = 1
WORKERS = 2


def _timed_sweep(config: ExploreConfig, cache: PlanCache):
    counters = ExploreCounters()
    start = time.perf_counter()
    report = run_explore(config, plan_cache=cache, counters=counters)
    elapsed = time.perf_counter() - start
    return report, counters.snapshot(), elapsed


def measure() -> dict:
    serial = ExploreConfig()
    parallel = replace(serial, workers=WORKERS)

    with tempfile.TemporaryDirectory() as root_a, \
            tempfile.TemporaryDirectory() as root_b:
        cold_report, cold_counts, t_cold = _timed_sweep(
            serial, PlanCache(root=root_a)
        )
        warm_report, warm_counts, t_warm = _timed_sweep(
            parallel, PlanCache(root=root_a)
        )
        par_report, par_counts, t_par = _timed_sweep(
            parallel, PlanCache(root=root_b)
        )

    points_total = cold_report["counters"]["points_total"]
    warm_hits = warm_counts["point_cache_hits"]
    canonical = json.dumps(pinned_view(cold_report), sort_keys=True)
    return {
        "version": SCHEMA_VERSION,
        "note": ("counts/pareto/fingerprint/digest/hit-rate/equality "
                 "fields are pinned by --check; wall-clock numbers are "
                 "informational (the >=3x gate is "
                 "test_explore_speedup.py)"),
        "sweep": {
            "schema": cold_report["schema"],
            "points_total": points_total,
            "points_feasible": points_total
            - cold_report["counters"]["infeasible_points"],
            "points_infeasible":
                cold_report["counters"]["infeasible_points"],
            "pareto": cold_report["pareto"],
            "workload_fingerprint":
                cold_report["workload"]["fingerprint"],
            "pinned_digest": pinned_digest(cold_report),
            "trace_probe_fallbacks":
                cold_counts["trace_probe_fallbacks"],
        },
        "memoization": {
            "warm_hit_rate": round(warm_hits / points_total, 6),
            "warm_points_evaluated": warm_counts["points_evaluated"],
            "serial_equals_parallel": bool(
                canonical == json.dumps(
                    pinned_view(par_report), sort_keys=True
                )
                and canonical == json.dumps(
                    pinned_view(warm_report), sort_keys=True
                )
            ),
            "parallel_workers": WORKERS,
        },
        "timing": {
            "cold_serial_s": round(t_cold, 4),
            "warm_parallel_s": round(t_warm, 4),
            "cold_parallel_s": round(t_par, 4),
            "warm_speedup": round(t_cold / max(t_warm, 1e-9), 2),
        },
    }


def _pinned_view(report: dict) -> dict:
    """The pinned (deterministic) subset of a benchmark report."""
    view = {}
    for field, value in report.get("sweep", {}).items():
        view[f"sweep.{field}"] = value
    memo = report.get("memoization", {})
    for field in ("warm_hit_rate", "warm_points_evaluated",
                  "serial_equals_parallel"):
        view[f"memoization.{field}"] = memo.get(field)
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write",
              file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("explorer drift against BENCH_explore.json:",
              file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"explore perf smoke OK: {len(expected)} pinned fields match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-field drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        print(
            f"  {report['sweep']['points_total']} points "
            f"({report['sweep']['points_infeasible']} infeasible), "
            f"warm hit rate "
            f"{report['memoization']['warm_hit_rate']}, warm speedup "
            f"{report['timing']['warm_speedup']}x"
        )
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
