"""Table 1: RSFQ cell timing constraints and their enforcement."""

from conftest import emit

from repro.harness.experiments import run_table1


def test_table1_constraints(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(result["report"])
    # Every cell family of the paper's table is present.
    cells = {row["cell"] for row in result["rows"]}
    assert {"CB", "SPL", "NDRO", "TFF", "DFF", "JTL"} <= cells
    # The simulator catches a too-fast pulse pair on every cell family.
    assert all(check["violation_detected"] for check in result["checks"])
    # Spot-check the published values.
    values = {
        (row["cell"], row["constraint"]): row["min_lag_ps"]
        for row in result["rows"]
    }
    assert values[("CB", "dinA/B-dinB/A")] == 5.7
    assert values[("NDRO", "din/rst-rst/din")] == 39.9
    assert values[("DFF", "din-clk")] == 8.53
