"""Fig. 13: JJ count and area scaling with the number of NPEs."""

from conftest import emit

from repro.harness.experiments import run_fig13


def test_fig13_scaling(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    emit(result["report"])
    rows = result["rows"]
    # Monotone growth in both JJs and area.
    totals = [row["total_jj"] for row in rows]
    areas = [row["area_mm2"] for row in rows]
    assert totals == sorted(totals)
    assert areas == sorted(areas)
    # Tracks the linear reference, only slightly exceeding it at scale.
    for row in rows:
        assert row["total_jj"] <= 1.5 * row["linear_ref_jj"]
    assert rows[-1]["total_jj"] >= rows[-1]["linear_ref_jj"]
    # Endpoint anchors (paper: 99,982 JJs / 103.75 mm^2 at 32 NPEs).
    assert abs(rows[-1]["total_jj"] - 99_982) / 99_982 < 0.02
    assert abs(rows[-1]["area_mm2"] - 103.75) / 103.75 < 0.05
