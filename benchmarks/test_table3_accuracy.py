"""Table 3: inference accuracy and consistency, reference vs SUSHI.

Absolute accuracies use the synthetic stand-in datasets (see DESIGN.md);
the assertions check the paper's *shape*: high agreement between the two
platforms, a small accuracy change from the SSNN optimisations, digits
easier than fashion, and consistency lower on the harder dataset.
"""

from conftest import emit

from repro.harness.experiments import run_table3


def test_table3_accuracy(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit(result["report"])
    digits = result["results"]["digits"]
    fashion = result["results"]["fashion"]

    # Both platforms learn both tasks well above chance.
    assert digits["reference_acc"] > 0.85
    assert fashion["reference_acc"] > 0.55

    # The SSNN conversion costs little accuracy (paper: -0.8% / -2.7%).
    assert abs(digits["sushi_acc"] - digits["reference_acc"]) < 0.05
    assert abs(fashion["sushi_acc"] - fashion["reference_acc"]) < 0.08

    # Platforms agree on most samples, more on the easier dataset
    # (paper: 98.18% vs 88.71%).
    assert digits["consistency"] > 0.9
    assert fashion["consistency"] > 0.75
    assert digits["consistency"] > fashion["consistency"]

    # Digits are easier than fashion on both platforms (paper: ~10 pts).
    assert digits["reference_acc"] > fashion["reference_acc"]
    assert digits["sushi_acc"] > fashion["sushi_acc"]

    # Bucketing guarantees no spurious hardware decisions.
    assert digits["spurious"] == 0
    assert fashion["spurious"] == 0
