"""Benchmark: compiled serving pipeline vs the pre-rework fast engine.

Asserts the serving PR's headline claims on this interpreter, back to
back:

* at batch 512 with workers, the persistent shared-memory pool over the
  compiled plan delivers >= 3x the throughput of the pre-PR fast engine
  with its per-call executor (same row block, same machine, same
  interpreter);
* a warm plan-cache hit (load off disk) beats a cold compile;
* every path -- legacy serial, legacy parallel, compiled serial,
  compiled pool -- computes identical decisions, spurious counts and
  synops totals;
* the committed ``BENCH_serve.json`` baseline still matches the
  deterministic pinned fields (the same gate CI runs via
  ``bench_serve.py --check``).
"""

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import emit
from legacy_runtime import (
    legacy_forward_rows,
    legacy_parallel_rows,
    make_serving_workload,
)
from repro.ssnn import InferencePool, PlanCache, compile_network

POOL_SPEEDUP_FLOOR = 3.0
CACHE_SPEEDUP_FLOOR = 1.5
CHIP_N = 16
SC_PER_NPE = 10
WORKERS = 2
TRIALS = 3


def best_time(fn, trials=TRIALS):
    times = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


class TestServingSpeedup:
    def test_pool_beats_pre_pr_parallel_engine_by_3x(self):
        network, rows, steps, batch = make_serving_workload()
        capacity = 1 << SC_PER_NPE
        compiled = compile_network(network, CHIP_N, SC_PER_NPE)
        with InferencePool(compiled, workers=WORKERS) as pool:
            pool.infer_rows(rows)  # spawn + buffer warmup outside timing
            t_pool = best_time(lambda: pool.infer_rows(rows))
            t_legacy = best_time(lambda: legacy_parallel_rows(
                network.layers, rows, capacity, workers=WORKERS
            ))
        speedup = t_legacy / t_pool
        emit(
            f"batch-{batch} serving (workers={WORKERS}): "
            f"pre-PR parallel {t_legacy * 1000:.1f} ms, "
            f"compiled pool {t_pool * 1000:.1f} ms, "
            f"speedup {speedup:.2f}x (floor {POOL_SPEEDUP_FLOOR}x)"
        )
        assert speedup >= POOL_SPEEDUP_FLOOR

    def test_warm_cache_hit_beats_cold_compile(self):
        network, _, _, _ = make_serving_workload()
        with tempfile.TemporaryDirectory() as root:
            cold_cache = PlanCache(root=root)
            start = time.perf_counter()
            cold = cold_cache.get_or_compile(network, CHIP_N, SC_PER_NPE)
            t_cold = time.perf_counter() - start
            assert cold_cache.misses == 1 and cold_cache.hits == 0

            warm_cache = PlanCache(root=root)
            start = time.perf_counter()
            warm = warm_cache.get_or_compile(network, CHIP_N, SC_PER_NPE)
            t_warm = time.perf_counter() - start
            assert warm_cache.hits == 1 and warm_cache.misses == 0
        assert warm.fingerprint == cold.fingerprint
        speedup = t_cold / t_warm
        emit(
            f"plan cache: cold compile {t_cold * 1000:.1f} ms, "
            f"warm hit {t_warm * 1000:.1f} ms, "
            f"speedup {speedup:.2f}x (floor {CACHE_SPEEDUP_FLOOR}x)"
        )
        assert speedup >= CACHE_SPEEDUP_FLOOR


class TestServingEquivalence:
    def test_all_paths_agree_bit_for_bit(self):
        network, rows, _, _ = make_serving_workload()
        capacity = 1 << SC_PER_NPE
        compiled = compile_network(network, CHIP_N, SC_PER_NPE)
        serial = legacy_forward_rows(network.layers, rows, capacity)
        parallel = legacy_parallel_rows(
            network.layers, rows, capacity, workers=WORKERS
        )
        fused = compiled.forward_rows(rows)
        with InferencePool(compiled, workers=WORKERS) as pool:
            pooled = pool.infer_rows(rows)
        for name, (dec, spur, syn) in {
            "legacy-parallel": parallel,
            "compiled-serial": fused,
            "compiled-pool": pooled,
        }.items():
            assert np.array_equal(dec, serial[0]), name
            assert (spur, syn) == serial[1:], name

    def test_committed_baseline_pinned_fields_match(self):
        from bench_serve import REPORT_PATH, _pinned_view, measure

        baseline = json.loads(Path(REPORT_PATH).read_text())
        assert _pinned_view(baseline) == _pinned_view(measure(trials=1))
