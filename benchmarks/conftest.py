"""Shared helpers for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark
regenerates one table/figure of the paper, prints the paper-vs-measured
report, and asserts the qualitative shape (who wins, by roughly what
factor, where trends bend) rather than absolute equality.
"""

import pytest


def emit(report: str) -> None:
    """Print an experiment report so it appears in the benchmark log."""
    print("\n" + report + "\n")


@pytest.fixture(scope="session")
def once():
    """Run a callable exactly once per session and cache its result."""
    cache = {}

    def runner(key, fn):
        if key not in cache:
            cache[key] = fn()
        return cache[key]

    return runner
