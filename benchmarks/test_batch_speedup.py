"""Batched dispatch speedup: whole-test-set inference vs per-sample loop.

The batched fast engine folds the full ``(T, batch)`` digits test set into
one row block per layer (see :mod:`repro.ssnn.runtime`), which the issue
gates at a >= 3x wall-clock win over the per-sample reference loop on a
200-sample run -- while staying *bit-identical* to it (and to the
behavioural chip on a subset: batching is a pure performance transform).
"""

import time

import numpy as np
from conftest import emit

from repro.harness import get_trained_bundle
from repro.snn import binarize_network
from repro.snn.encoding import PoissonEncoder
from repro.ssnn import SushiRuntime

SAMPLES = 200
BEHAVIORAL_SUBSET = 6


def _digits_workload(once):
    """A trained digits network plus 200 encoded test samples (cached)."""

    def build():
        bundle = get_trained_bundle(
            dataset="digits", hidden=48, epochs=12,
            train_size=800, test_size=SAMPLES, downsample=4,
        )
        model, data = bundle.model, bundle.dataset
        network = binarize_network(model)
        encoder = PoissonEncoder(seed=model.encoder_seed)
        trains = encoder.encode_steps(
            data.test_images.reshape(len(data.test_images), -1),
            model.time_steps,
        )
        return network, trains

    return once("batch_speedup_workload", build)


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_batched_dispatch_is_3x_faster_and_bit_identical(benchmark, once):
    network, trains = _digits_workload(once)
    assert trains.shape[1] == SAMPLES
    runtime = SushiRuntime(chip_n=16, sc_per_npe=10)

    runtime.infer(network, trains)  # warm caches (plan, numpy buffers)
    batched, batched_s = _best_of(lambda: runtime.infer(network, trains))
    per_sample, per_sample_s = _best_of(
        lambda: runtime.infer_per_sample(network, trains), repeats=1
    )
    benchmark.pedantic(
        lambda: runtime.infer(network, trains), rounds=3, iterations=1
    )

    speedup = per_sample_s / batched_s
    emit(
        "batched dispatch on {} digits samples:\n"
        "  per-sample loop : {:8.4f} s\n"
        "  batched         : {:8.4f} s\n"
        "  speedup         : {:8.2f}x (gate: >= 3x)".format(
            SAMPLES, per_sample_s, batched_s, speedup
        )
    )

    # Performance gate from the issue: >= 3x on 200 samples.
    assert speedup >= 3.0, (
        f"batched dispatch only {speedup:.2f}x faster than the "
        f"per-sample loop (need >= 3x)"
    )

    # Equivalence gate: batching must not change a single bit.
    assert np.array_equal(batched.output_raster, per_sample.output_raster)
    assert np.array_equal(batched.predictions, per_sample.predictions)
    assert batched.spurious_decisions == per_sample.spurious_decisions == 0
    assert batched.synaptic_ops == per_sample.synaptic_ops
    assert batched.reload_events == per_sample.reload_events


def test_batched_matches_behavioral_chip_on_subset(once):
    """The protocol-exact chip agrees with the batched engine bit for bit
    (small subset: the behavioural model simulates every pass)."""
    network, trains = _digits_workload(once)
    subset = trains[:, :BEHAVIORAL_SUBSET, :]
    fast = SushiRuntime(chip_n=16, sc_per_npe=10).infer(network, subset)
    chip = SushiRuntime(
        chip_n=16, sc_per_npe=10, engine="behavioral"
    ).infer(network, subset)
    assert np.array_equal(fast.output_raster, chip.output_raster)
    assert np.array_equal(fast.predictions, chip.predictions)
    assert fast.spurious_decisions == chip.spurious_decisions == 0


def test_process_pool_matches_serial_on_full_set(once):
    network, trains = _digits_workload(once)
    serial = SushiRuntime(chip_n=16, sc_per_npe=10).infer(network, trains)
    pooled = SushiRuntime(
        chip_n=16, sc_per_npe=10, max_workers=2
    ).infer(network, trains)
    assert np.array_equal(serial.output_raster, pooled.output_raster)
    assert np.array_equal(serial.predictions, pooled.predictions)
