"""Faithful replica of the pre-compile-pipeline fast inference engine.

Preserved from the runtime as it stood before the compiled-plan/serving
rework so the committed serving benchmarks keep measuring against the
*real* historical baseline:

* ``legacy_forward_rows`` -- the per-layer kernel: one
  :func:`hardware_layer_outputs` call (two float64 bucket matmuls), a
  third full matmul for the final-sum reference (``layer.forward``) and
  a fourth boolean matmul for the synops statistic;
* ``legacy_parallel_rows`` -- the per-call ``ProcessPoolExecutor`` that
  re-pickled the full layer list once per row chunk (``[layers] *
  len(chunks)``), spawn and teardown included in every call -- exactly
  the overhead the persistent shared-memory pool removes.

Both return ``(decisions, spurious, synops)`` with the same bit-exact
semantics as :meth:`repro.ssnn.compile.CompiledNetwork.forward_rows`,
which is what lets ``bench_serve.py`` pin the equivalence alongside the
throughput numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.harness import (  # noqa: E402
    random_binarized_network,
    random_spike_trains,
)
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork  # noqa: E402
from repro.ssnn.bucketing import hardware_layer_outputs  # noqa: E402


def legacy_forward_rows(
    layers: Sequence[BinarizedLayer],
    rows: np.ndarray,
    capacity: int,
    reorder: bool = True,
) -> Tuple[np.ndarray, int, int]:
    """The pre-rework fast kernel (4 matmuls per layer, all float64)."""
    current = rows
    spurious = 0
    synops = 0
    for layer in layers:
        decisions, _ = hardware_layer_outputs(
            layer, current, capacity, reorder=reorder
        )
        reference = layer.forward(current)
        spurious += int((decisions != reference).sum())
        synops += int((current @ (layer.signed_weights != 0)).sum())
        current = decisions
    return current, spurious, synops


def legacy_parallel_rows(
    layers: Sequence[BinarizedLayer],
    rows: np.ndarray,
    capacity: int,
    reorder: bool = True,
    workers: int = 2,
) -> Tuple[np.ndarray, int, int]:
    """The pre-rework multi-core path: a throwaway executor per call,
    layer list pickled once *per chunk*."""
    from concurrent.futures import ProcessPoolExecutor

    layers = list(layers)
    chunks = np.array_split(rows, workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(
            legacy_forward_rows,
            [layers] * len(chunks),
            chunks,
            [capacity] * len(chunks),
            [reorder] * len(chunks),
        ))
    decisions = np.concatenate([p[0] for p in parts], axis=0)
    spurious = sum(p[1] for p in parts)
    synops = sum(p[2] for p in parts)
    return decisions, spurious, synops


def make_serving_workload(
    seed: int = 2024,
    sizes: Sequence[int] = (784, 512, 10),
    steps: int = 2,
    batch: int = 512,
    sc_per_npe: int = 10,
) -> Tuple[BinarizedNetwork, np.ndarray, int, int]:
    """The committed serving benchmark workload: an MNIST-shaped random
    network at the paper's scale and a batch-512 spike block.

    Returns ``(network, rows, steps, batch)`` with ``rows`` already
    flattened to the ``(steps * batch, in_features)`` row block both
    engines consume.
    """
    rng = np.random.default_rng(seed)
    network = random_binarized_network(
        rng, sizes=sizes, sc_per_npe=sc_per_npe
    )
    trains = random_spike_trains(rng, steps, batch, sizes[0])
    rows = np.ascontiguousarray(
        trains.reshape(steps * batch, sizes[0])
    )
    return network, rows, steps, batch
