"""Resilience benchmark report: ``BENCH_faults.json`` writer/checker.

Runs the reference Monte-Carlo resilience campaign (see
:mod:`repro.harness.campaign` and ``docs/FAULTS.md``) plus the
self-healing runtime acceptance scenario, and pins their deterministic
outputs the same way ``bench_report.py`` pins events-processed counts:

* **Pinned** (checked by ``--check`` and the CI resilience-smoke step):
  per grid point -- BER, bit errors, injected-fault counts, violation
  counts and events processed; for the self-healing scenario -- attempts,
  degraded flag and injected-fault total.  Every number derives from
  seeded per-site RNG streams, so any drift means the fault subsystem's
  *semantics* changed (not just its speed) and must be acknowledged by
  regenerating the baseline.
* **Asserted invariants** (checked on every run, not stored): BER is 0
  with zero injections at p=0, and BER is monotone non-decreasing in
  fault probability.
* **Informational** (recorded, never asserted): wall time per campaign
  and the measured zero-fault overhead ratio (the structural <3% guard
  lives in ``benchmarks/test_fault_overhead.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py --write   # new baseline
    PYTHONPATH=src python benchmarks/bench_faults.py --check   # CI drift gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.harness.campaign import (  # noqa: E402
    CampaignConfig,
    run_resilience_campaign,
)
from repro.harness.differential import (  # noqa: E402
    random_binarized_network,
    random_spike_trains,
)
from repro.rsfq.faults import FaultModel  # noqa: E402
from repro.ssnn import RetryPolicy, SushiRuntime  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_faults.json"
SCHEMA_VERSION = 1

#: Per-point fields that must not drift between runs.
PINNED_POINT_FIELDS = (
    "ber", "bit_errors", "bits", "injections", "violations", "events",
)
#: Self-healing fields that must not drift between runs.
PINNED_HEALING_FIELDS = ("attempts", "degraded", "fault_injections")

#: The reference campaign grid (kept small enough for CI, large enough
#: that every wire-fault kind visibly bends its BER curve).
CAMPAIGN = CampaignConfig(
    kinds=("pulse_drop", "pulse_duplicate", "extra_delay"),
    probabilities=(0.0, 0.02, 0.1, 0.3),
    jitter_sigmas=(0.0,),
    trials=3,
    seed=0,
    chain_length=16,
    n_pulses=24,
)


def run_campaign() -> dict:
    start = time.perf_counter()
    result = run_resilience_campaign(CAMPAIGN)
    wall = time.perf_counter() - start
    if not result.zero_probability_clean():
        raise AssertionError("p=0 campaign points are not fault-free")
    if not result.ber_monotone():
        raise AssertionError("BER is not monotone in fault probability")
    points = {}
    for pt in result.points:
        key = f"{pt.kind}@p={pt.probability:g}"
        points[key] = {
            "ber": round(pt.ber, 6),
            "bit_errors": pt.bit_errors,
            "bits": pt.bits,
            "injections": pt.injections,
            "violations": pt.violations,
            "events": pt.events,
        }
    return {
        "description": (
            f"{CAMPAIGN.chain_length}-stage pipeline, "
            f"{CAMPAIGN.n_pulses} pulses, {CAMPAIGN.trials} trials/point"
        ),
        "wall_time_s": round(wall, 6),
        "points": points,
    }


def run_self_healing() -> dict:
    """The ISSUE acceptance scenario: pulse-drop p=0.05 inference must
    complete through retry/fallback with the degradation recorded."""
    sizes = (8, 6, 4)
    network = random_binarized_network(
        np.random.default_rng(0), sizes, sc_per_npe=8
    )
    trains = random_spike_trains(
        np.random.default_rng(1), 6, 8, sizes[0], rate=0.5
    )
    runtime = SushiRuntime(
        chip_n=8, sc_per_npe=8,
        faults=FaultModel.single("pulse_drop", 0.05, seed=3),
        retry_policy=RetryPolicy(max_retries=2),
    )
    result = runtime.infer(network, trains)
    clean = SushiRuntime(chip_n=8, sc_per_npe=8).infer(network, trains)
    if not np.array_equal(result.output_raster, clean.output_raster):
        raise AssertionError(
            "self-healed inference disagrees with the clean reference"
        )
    return {
        "description": "pulse_drop p=0.05, RetryPolicy(max_retries=2)",
        "attempts": result.attempts,
        "degraded": result.degraded,
        "fault_injections": result.fault_injections,
        "recovery_lines": len(result.recovery),
    }


def measure_zero_fault_overhead(repeats: int = 5) -> dict:
    """Back-to-back timing of the reference pipeline with ``faults=None``
    vs an *inactive* model (informational: both bind the identical
    delivery fast path, so the true overhead is structurally zero)."""
    from repro.harness.campaign import build_reference_pipeline
    from repro.rsfq import Simulator

    def one_run(faults):
        net, _probe = build_reference_pipeline(64)
        sim = Simulator(net, faults=faults)
        for k in range(256):
            sim.schedule_input("j0", "din", 50.0 * k)
        start = time.perf_counter()
        sim.run()
        return time.perf_counter() - start

    base = min(one_run(None) for _ in range(repeats))
    inactive = min(one_run(FaultModel()) for _ in range(repeats))
    return {
        "baseline_s": round(base, 6),
        "inactive_model_s": round(inactive, 6),
        "overhead_ratio": round(inactive / base, 4),
    }


def measure() -> dict:
    return {
        "version": SCHEMA_VERSION,
        "note": ("campaign points and self-healing outcomes are pinned "
                 "by --check; wall-clock numbers are informational"),
        "campaign": run_campaign(),
        "self_healing": run_self_healing(),
        "zero_fault_overhead": measure_zero_fault_overhead(),
    }


def _pinned_view(report: dict) -> dict:
    view = {}
    for key, point in report.get("campaign", {}).get("points", {}).items():
        for field in PINNED_POINT_FIELDS:
            view[f"campaign.{key}.{field}"] = point.get(field)
    healing = report.get("self_healing", {})
    for field in PINNED_HEALING_FIELDS:
        view[f"self_healing.{field}"] = healing.get(field)
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("resilience drift against BENCH_faults.json:",
              file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"resilience smoke OK: {len(expected)} pinned counters match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-counter drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        ratio = report["zero_fault_overhead"]["overhead_ratio"]
        print(f"  zero-fault overhead ratio = {ratio}x")
        print(f"  self-healing: {report['self_healing']['attempts']} "
              f"attempts, degraded={report['self_healing']['degraded']}")
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
