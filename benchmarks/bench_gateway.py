"""Gateway benchmark report: ``BENCH_gateway.json`` writer/checker.

Runs the quick gateway load campaign (:mod:`repro.gateway.loadgen`) --
six arrival-mix scenarios over a live in-process gateway on an
ephemeral port -- and pins the deterministic outcomes the way
``bench_chaos.py`` pins campaign counters:

* **Pinned** (checked by ``--check`` and the CI gateway drift step):
  the campaign / per-scenario pass verdicts, every scenario's exact
  status-code counts (200/429/503/504 -- the load-shedding contract),
  the typed rejection-code counts (``rate_limited`` /
  ``breaker_open`` / ``deadline_exceeded``), the campaign totals, the
  workload plan fingerprint, and the *presence* of the latency and
  throughput fields.  Any drift means the admission/rate-limit/deadline
  semantics changed and must be acknowledged by regenerating the
  baseline.
* **Informational** (recorded, never asserted): client-side p50/p99
  latency, max latency, and throughput (req/s) per scenario -- wall
  clock is machine-dependent and is never a gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py --write  # baseline
    PYTHONPATH=src python benchmarks/bench_gateway.py --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.gateway.loadgen import run_loadtest  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_gateway.json"
SCHEMA_VERSION = 1

#: Scenario fields that must exist in every entry (schema guard; their
#: *values* are informational except the ones re-pinned below).
REQUIRED_SCENARIO_FIELDS = (
    "name", "mode", "sent", "statuses", "expected_statuses", "passed",
    "rejections", "latency_ms_p50", "latency_ms_p99", "latency_ms_max",
    "throughput_rps", "elapsed_s",
)


def measure() -> dict:
    campaign = run_loadtest(quick=True)
    if not campaign["passed"]:
        failing = [s["name"] for s in campaign["scenarios"]
                   if not s["passed"]]
        raise AssertionError(
            f"load scenarios missed their deterministic status "
            f"expectations: {failing}"
        )
    return {
        "version": SCHEMA_VERSION,
        "note": ("status/rejection counts, verdicts, totals and the "
                 "plan fingerprint are pinned by --check; p50/p99 "
                 "latency and throughput are informational"),
        "campaign": campaign,
    }


def _pinned_view(report: dict) -> dict:
    campaign = report.get("campaign", {})
    view = {
        "gateway.schema": campaign.get("schema"),
        "gateway.quick": campaign.get("quick"),
        "gateway.passed": campaign.get("passed"),
        "gateway.workload.fingerprint":
            campaign.get("workload", {}).get("fingerprint"),
        "gateway.totals.sent":
            campaign.get("totals", {}).get("sent"),
        "gateway.totals.statuses":
            campaign.get("totals", {}).get("statuses"),
        "gateway.totals.rejections":
            campaign.get("totals", {}).get("rejections"),
    }
    for entry in campaign.get("scenarios", []):
        name = entry.get("name", "?")
        view[f"gateway.{name}.passed"] = entry.get("passed")
        view[f"gateway.{name}.sent"] = entry.get("sent")
        view[f"gateway.{name}.statuses"] = entry.get("statuses")
        view[f"gateway.{name}.rejections"] = entry.get("rejections")
        view[f"gateway.{name}.fields_present"] = sorted(
            field for field in REQUIRED_SCENARIO_FIELDS if field in entry
        )
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("gateway drift against BENCH_gateway.json:", file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"gateway smoke OK: {len(expected)} pinned fields match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-field drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        for entry in report["campaign"]["scenarios"]:
            print(f"  {entry['name']}: {entry['statuses']} "
                  f"p50={entry['latency_ms_p50']}ms "
                  f"p99={entry['latency_ms_p99']}ms "
                  f"{entry['throughput_rps']} req/s")
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
