"""Benchmark: warm trace replay vs the PR 2 fast path (issue 7 gate).

Asserts the trace-compilation headline claims on this interpreter, back
to back:

* a warm vectorized replay of the ``chip_n2_sc4_r6`` schedule runs
  >= 5x faster than re-executing the same segments on the sequential
  fast-path :class:`~repro.rsfq.simulator.Simulator`;
* the replay is bit-identical to the fast path (fire times, events,
  violations) and is actually served from the trace (``mode ==
  "replay"``, zero fallbacks);
* the recorded ``BENCH_simulator.json`` baseline still carries the
  pinned ``trace_replay`` counters.
"""

import json
from pathlib import Path

from conftest import emit
from legacy_engine import run_trace_replay_workload

SPEEDUP_FLOOR = 5.0
TRIALS = 3


class TestTraceReplaySpeedup:
    def test_warm_replay_speedup_and_equivalence(self):
        results = [run_trace_replay_workload() for _ in range(TRIALS)]
        for result in results:
            assert result["replay_equal"], result
            assert result["fallbacks"] == 0, result
        best = max(
            results, key=lambda r: r["speedup_warm_replay_over_fast"]
        )
        emit(
            "trace replay: "
            f"record {best['record_wall_s'] * 1e3:.2f} ms, "
            f"warm replay {best['warm_replay_wall_s'] * 1e3:.3f} ms, "
            f"fast path {best['fast_wall_s'] * 1e3:.3f} ms, "
            f"speedup {best['speedup_warm_replay_over_fast']:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
        assert best["speedup_warm_replay_over_fast"] >= SPEEDUP_FLOOR

    def test_committed_baseline_has_trace_counters(self):
        from bench_report import PINNED_FIELDS, REPORT_PATH

        baseline = json.loads(Path(REPORT_PATH).read_text())
        traced = baseline["workloads"]["trace_replay"]["traced"]
        assert traced["replay_equal"] is True
        assert traced["fallbacks"] == 0
        assert traced["events"] > 0
        for field in ("replays", "fallbacks", "replay_equal"):
            assert field in PINNED_FIELDS
