"""Section 4.2.2: weight-reload share of inference time (paper: ~20%)."""

from conftest import emit

from repro.harness.experiments import run_reload_overhead


def test_reload_overhead(benchmark):
    result = benchmark.pedantic(run_reload_overhead, rounds=1, iterations=1)
    emit(result["report"])
    # Optimised reloading stays a moderate fraction of inference time.
    assert 0.10 < result["reload_fraction"] < 0.30
    # Throughput remains positive and finite on the real workload.
    assert all(f > 0 for f in result["fps_values"])
