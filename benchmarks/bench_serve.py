"""Serving-pipeline benchmark report: ``BENCH_serve.json`` writer/checker.

Measures the batch-512 serving workload of :mod:`legacy_runtime` on the
pre-rework fast engine (serial and per-call-executor parallel) and on the
compiled pipeline (serial fused kernel and persistent shared-memory
pool), plus the plan-cache cold/warm path and the micro-batching server.

Two field classes live in the JSON:

* **Pinned** (checked by ``--check`` and the CI perf-smoke step): the
  workload fingerprint, the decisions checksum, the spurious/synops/
  reload totals, the compiled-vs-legacy equality verdicts and the
  cold-miss/warm-hit cache flags.  All are deterministic integer math --
  any semantics drift in the compiled pipeline fails the check on any
  machine.
* **Informational** (recorded, never asserted): wall-clock numbers
  (latencies, samples/sec, speedups).  They document the baseline
  machine; asserting them in CI would be flaky.  The enforced ">= 3x
  pre-PR fast engine at batch 512 with workers" gate lives in
  ``test_serve_speedup.py``, where both engines run back-to-back on the
  same interpreter.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --write   # new baseline
    PYTHONPATH=src python benchmarks/bench_serve.py --check   # CI drift gate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from legacy_runtime import (  # noqa: E402
    legacy_forward_rows,
    legacy_parallel_rows,
    make_serving_workload,
)
from repro.ssnn import (  # noqa: E402
    InferencePool,
    PlanCache,
    compile_network,
    network_fingerprint,
)

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_serve.json"
SCHEMA_VERSION = 1
CHIP_N = 16
SC_PER_NPE = 10
WORKERS = 2
TRIALS = 3


def _best(fn, trials: int = TRIALS) -> float:
    """Best wall time over a few trials (suppresses scheduler noise)."""
    times = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _checksum(decisions: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(decisions, dtype=np.float64).tobytes()
    ).hexdigest()[:16]


def measure(trials: int = TRIALS) -> dict:
    network, rows, steps, batch = make_serving_workload()
    capacity = 1 << SC_PER_NPE
    samples = rows.shape[0] / max(steps, 1)

    # -- functional ground truth (pinned) --------------------------------
    legacy_dec, legacy_spur, legacy_syn = legacy_forward_rows(
        network.layers, rows, capacity
    )
    compiled = compile_network(network, CHIP_N, SC_PER_NPE)
    comp_dec, comp_spur, comp_syn = compiled.forward_rows(rows)
    with InferencePool(compiled, workers=WORKERS) as pool:
        pool_dec, pool_spur, pool_syn = pool.infer_rows(rows)

        # -- wall clock (informational) ----------------------------------
        t_legacy_serial = _best(
            lambda: legacy_forward_rows(network.layers, rows, capacity),
            trials,
        )
        t_legacy_parallel = _best(
            lambda: legacy_parallel_rows(
                network.layers, rows, capacity, workers=WORKERS
            ),
            trials,
        )
        t_compiled_serial = _best(
            lambda: compiled.forward_rows(rows), trials
        )
        t_compiled_pool = _best(lambda: pool.infer_rows(rows), trials)

    # -- plan cache cold/warm (hit flags pinned, times informational) ----
    with tempfile.TemporaryDirectory() as root:
        cold_cache = PlanCache(root=root)
        t_cold = _best(
            lambda: cold_cache.get_or_compile(network, CHIP_N, SC_PER_NPE),
            trials=1,
        )
        cold_hit = cold_cache.hits > 0
        warm_cache = PlanCache(root=root)
        t_warm = _best(
            lambda: warm_cache.get_or_compile(network, CHIP_N, SC_PER_NPE),
            trials=1,
        )
        warm_hit = warm_cache.hits > 0 and warm_cache.misses == 0

    equality = {
        "compiled_equals_legacy": bool(
            np.array_equal(comp_dec, legacy_dec)
            and comp_spur == legacy_spur and comp_syn == legacy_syn
        ),
        "pool_equals_serial": bool(
            np.array_equal(pool_dec, comp_dec)
            and pool_spur == comp_spur and pool_syn == comp_syn
        ),
        "spurious": int(comp_spur),
        "synops": int(comp_syn),
        "reload_events": int(compiled.reload_events),
        "decisions_sha256_16": _checksum(comp_dec),
    }

    return {
        "version": SCHEMA_VERSION,
        "note": ("fingerprint/checksums/equality/cache-hit flags are "
                 "pinned by --check; wall-clock numbers are "
                 "informational"),
        "workload": {
            "sizes": list(compiled.layer_shapes[0][:1])
            + [shape[1] for shape in compiled.layer_shapes],
            "steps": steps,
            "batch": batch,
            "rows": int(rows.shape[0]),
            "chip_n": CHIP_N,
            "sc_per_npe": SC_PER_NPE,
            "workers": WORKERS,
            "fingerprint": network_fingerprint(
                network, CHIP_N, SC_PER_NPE, True
            ),
        },
        "equivalence": equality,
        "plan_cache": {
            "cold_hit": bool(cold_hit),
            "warm_hit": bool(warm_hit),
            "cold_ms": round(t_cold * 1000, 2),
            "warm_ms": round(t_warm * 1000, 2),
            "warm_speedup": round(t_cold / max(t_warm, 1e-9), 2),
        },
        "throughput": {
            "legacy_serial_ms": round(t_legacy_serial * 1000, 2),
            "legacy_parallel_ms": round(t_legacy_parallel * 1000, 2),
            "compiled_serial_ms": round(t_compiled_serial * 1000, 2),
            "compiled_pool_ms": round(t_compiled_pool * 1000, 2),
            "legacy_parallel_samples_per_s": round(
                samples / t_legacy_parallel, 1
            ),
            "compiled_pool_samples_per_s": round(
                samples / t_compiled_pool, 1
            ),
            "speedup_compiled_serial_over_legacy_serial": round(
                t_legacy_serial / t_compiled_serial, 3
            ),
            "speedup_pool_over_legacy_parallel": round(
                t_legacy_parallel / t_compiled_pool, 3
            ),
        },
    }


def _pinned_view(report: dict) -> dict:
    """Extract the pinned (deterministic) subset of a report."""
    view = {}
    workload = report.get("workload", {})
    for field in ("sizes", "steps", "batch", "rows", "chip_n",
                  "sc_per_npe", "fingerprint"):
        view[f"workload.{field}"] = workload.get(field)
    for field, value in report.get("equivalence", {}).items():
        view[f"equivalence.{field}"] = value
    cache = report.get("plan_cache", {})
    for field in ("cold_hit", "warm_hit"):
        view[f"plan_cache.{field}"] = cache.get(field)
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure(trials=1))
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("serving-pipeline drift against BENCH_serve.json:",
              file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"serve perf smoke OK: {len(expected)} pinned fields match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-field drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        throughput = report["throughput"]
        print(
            "  pool over pre-PR parallel: "
            f"{throughput['speedup_pool_over_legacy_parallel']}x; "
            "compiled serial over legacy serial: "
            f"{throughput['speedup_compiled_serial_over_legacy_serial']}x; "
            "warm cache: "
            f"{report['plan_cache']['warm_speedup']}x"
        )
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
