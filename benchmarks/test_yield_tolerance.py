"""Extension: graceful degradation under dead crosspoints."""

from conftest import emit

from repro.harness.experiments import run_yield_tolerance


def test_yield_tolerance(benchmark):
    result = benchmark.pedantic(run_yield_tolerance, rounds=1, iterations=1)
    emit(result["report"])
    accs = result["accs"]
    fractions = sorted(accs)
    # Healthy chip performs; small defect rates barely matter (population
    # coding); heavy damage degrades smoothly, never to chance collapse.
    assert accs[0.0] > 0.9
    assert accs[0.02] > accs[0.0] - 0.05
    assert accs[fractions[-1]] < accs[0.0]
    assert accs[fractions[-1]] > 0.4
