"""The zero-failure supervision overhead gate: when nothing fails, the
supervised pool must serve within 5% of the pre-supervision baseline
(`legacy_pool.LegacyInferencePool`, the pool as it stood before worker
resurrection / shard retry / epoch guards landed).

Two layers of defence, mirroring ``test_fault_overhead.py``:

* **Structural** (deterministic, the real gate): in a failure-free
  steady state the supervision machinery must be provably idle --
  zero respawns, zero stale-task drains, zero segment churn (both
  shared segments keep their warm-up identity), and the per-call
  supervision cost is one ``is_alive()`` poll per worker.  These
  assertions catch a hot-path regression without any timing noise.
* **Empirical** (best-of-N wall clock): *interleaved* steady-state
  ``infer_rows`` sweep pairs (legacy, then supervised, under the same
  instantaneous machine load) over the same compiled workload; the best
  per-pair ratio must stay under the ISSUE's 5% overhead budget.
  Pairing plus best-of keeps scheduler noise out; the structural gate
  above is what actually prevents regressions.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from legacy_pool import LegacyInferencePool  # noqa: E402
from legacy_runtime import make_serving_workload  # noqa: E402
from repro.ssnn import InferencePool, compile_network  # noqa: E402

OVERHEAD_BUDGET = 1.05  # <5% per ISSUE acceptance criteria
REPEATS = 5
CALLS_PER_SWEEP = 4
WORKERS = 2


def _workload():
    network, rows, _steps, _batch = make_serving_workload(
        sizes=(196, 64, 10), batch=96,
    )
    compiled = compile_network(network, 16, 10)
    return compiled, rows


def _sweep(pool, rows) -> float:
    start = time.perf_counter()
    for _ in range(CALLS_PER_SWEEP):
        pool.infer_rows(rows)
    return time.perf_counter() - start


class TestStructuralGuard:
    def test_steady_state_supervision_is_idle(self):
        compiled, rows = _workload()
        with InferencePool(compiled, workers=WORKERS) as pool:
            pool.infer_rows(rows)  # warm-up: allocates the segments
            in_name = pool._segments[0].name
            out_name = pool._segments[1].name
            for _ in range(5):
                pool.infer_rows(rows)
            # No respawns, no stale-task drains, no segment churn.
            assert pool.restarts == 0
            assert pool._stale_tasks == 0
            assert pool._segments[0].name == in_name
            assert pool._segments[1].name == out_name
            assert pool.alive_workers() == WORKERS

    def test_supervised_pool_is_bit_identical_to_legacy(self):
        compiled, rows = _workload()
        want = compiled.forward_rows(rows)
        with InferencePool(compiled, workers=WORKERS) as pool:
            got = pool.infer_rows(rows)
        with LegacyInferencePool(compiled, workers=WORKERS) as legacy:
            old = legacy.infer_rows(rows)
        assert np.array_equal(got[0], want[0]) and got[1:] == want[1:]
        assert np.array_equal(old[0], want[0]) and old[1:] == want[1:]


class TestEmpiricalGuard:
    def test_zero_failure_overhead_within_budget(self):
        compiled, rows = _workload()
        with LegacyInferencePool(compiled, workers=WORKERS) as legacy, \
                InferencePool(compiled, workers=WORKERS) as pool:
            legacy.infer_rows(rows)  # warm-up
            pool.infer_rows(rows)  # warm-up
            # Interleave the two pools so each ratio sample compares
            # sweeps taken under the same instantaneous machine load,
            # then keep the cleanest pair.
            ratio = min(
                _sweep(pool, rows) / _sweep(legacy, rows)
                for _ in range(REPEATS)
            )
        print(f"\nsupervision overhead ratio: {ratio:.4f}x "
              f"(budget {OVERHEAD_BUDGET}x)")
        assert ratio < OVERHEAD_BUDGET, (
            f"zero-failure supervision cost {ratio:.4f}x the legacy pool "
            f"(budget {OVERHEAD_BUDGET}x) -- the supervised hot path "
            "regressed; see InferencePool._run_block_locked"
        )
