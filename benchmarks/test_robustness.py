"""Extension: chip-inference robustness to encoding stochasticity and
input corruption."""

from conftest import emit

from repro.harness.experiments import run_robustness


def test_robustness(benchmark):
    result = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    emit(result["report"])
    # Fresh Poisson draws barely move accuracy (rate coding averages out).
    assert result["seed_spread"] < 0.06
    assert min(result["seed_accs"]) > 0.85
    # Degradation under noise is graceful, not catastrophic.
    accs = [row["chip_accuracy"] for row in result["noise_rows"]]
    assert accs[0] >= accs[-1]          # more noise never helps
    assert accs[-1] > accs[0] - 0.35    # and never collapses
