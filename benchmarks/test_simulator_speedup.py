"""Benchmark: event-engine fast path vs the pre-rework legacy loop.

Asserts the PR's headline claims on this interpreter, back to back:

* the sequential fast path processes >= 2x the events/sec of the legacy
  engine (per-event object allocation + string dispatch) on both the pure
  event-churn workload and the full gate-level chip protocol;
* all engines -- legacy, fast, partitioned parallel -- compute identical
  physics (same events, same outputs, same violation counts);
* the recorded ``BENCH_simulator.json`` baseline still matches the
  deterministic events-processed counters (the same gate CI runs via
  ``bench_report.py --check``).
"""

import json
from pathlib import Path

from conftest import emit
from legacy_engine import run_chain_workload, run_chip_workload

SPEEDUP_FLOOR = 2.0
TRIALS = 3


def best_of(fn, trials=TRIALS):
    """Best events/sec over a few trials (suppresses scheduler noise)."""
    results = [fn() for _ in range(trials)]
    return max(results, key=lambda r: r.events_per_sec)


class TestSequentialSpeedup:
    def test_chain_event_churn_speedup(self):
        legacy = best_of(lambda: run_chain_workload("legacy"))
        fast = best_of(lambda: run_chain_workload("fast"))
        assert fast.events == legacy.events
        assert fast.violations == legacy.violations
        speedup = fast.events_per_sec / legacy.events_per_sec
        emit(
            "chain event churn: "
            f"legacy {legacy.events_per_sec:,.0f} ev/s, "
            f"fast {fast.events_per_sec:,.0f} ev/s, "
            f"speedup {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
        )
        assert speedup >= SPEEDUP_FLOOR

    def test_chip_protocol_speedup(self):
        legacy = best_of(lambda: run_chip_workload(engine="legacy"))
        fast = best_of(lambda: run_chip_workload(engine="fast"))
        assert fast.events == legacy.events
        assert fast.outputs == legacy.outputs
        assert fast.violations == legacy.violations == 0
        speedup = fast.events_per_sec / legacy.events_per_sec
        emit(
            "chip protocol: "
            f"legacy {legacy.events_per_sec:,.0f} ev/s, "
            f"fast {fast.events_per_sec:,.0f} ev/s, "
            f"speedup {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
        )
        assert speedup >= SPEEDUP_FLOOR


class TestEngineAgreement:
    def test_parallel_engine_matches_sequential_physics(self):
        fast = run_chip_workload(engine="fast")
        parallel = run_chip_workload(engine="parallel")
        assert parallel.events == fast.events
        assert parallel.outputs == fast.outputs
        assert parallel.violations == fast.violations

    def test_committed_baseline_counters_match(self):
        from bench_report import REPORT_PATH, _pinned_view, measure

        baseline = json.loads(Path(REPORT_PATH).read_text())
        assert _pinned_view(baseline) == _pinned_view(measure())
