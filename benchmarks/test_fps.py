"""Section 6.3: frame rate on the MNIST network (paper: 2.61e5 FPS)."""

from conftest import emit

from repro.harness.experiments import run_fps


def test_fps(benchmark):
    result = benchmark.pedantic(run_fps, rounds=1, iterations=1)
    emit(result["report"])
    assert abs(result["fps"] - 2.61e5) / 2.61e5 < 0.02
