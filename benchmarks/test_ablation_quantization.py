"""Extension: multi-bit weights through pulse-gain strengths > 1."""

from conftest import emit

from repro.harness.experiments import run_ablation_quantization


def test_ablation_quantization(benchmark):
    result = benchmark.pedantic(run_ablation_quantization, rounds=1,
                                iterations=1)
    emit(result["report"])
    one_bit = result["results"][1]
    two_bit = result["results"][2]
    # 1-bit deployments use unit gains; 2-bit need gains up to 3.
    assert one_bit["max_strength"] == 1
    assert 2 <= two_bit["max_strength"] <= 3
    # For a float-trained network, the extra magnitude levels of the
    # pulse-gain weight structure recover accuracy the 1-bit conversion
    # loses (binarization-aware training is what makes 1-bit viable).
    assert two_bit["accuracy"] > one_bit["accuracy"] + 0.1
    assert two_bit["accuracy"] > 0.8
