"""Benchmark: memoized parallel explorer vs naive serial cold sweep.

Asserts the explorer PR's headline claims on this interpreter, back to
back:

* a parallel warm-cache sweep of the full default grid completes >= 3x
  faster than the naive serial cold sweep it repeats (every point must
  come back from the content-addressed explore-point cache: the hit
  rate is asserted at 100%);
* serial and process-pool sweeps produce *bit-identical* pinned views
  (the determinism contract across worker counts);
* the committed ``BENCH_explore.json`` baseline still matches the
  deterministic pinned fields (the same gate CI runs via
  ``bench_explore.py --check``).
"""

import json
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from conftest import emit
from repro.explore import (
    ExploreConfig,
    ExploreCounters,
    pinned_digest,
    pinned_view,
    run_explore,
)
from repro.ssnn import PlanCache

WARM_SPEEDUP_FLOOR = 3.0
WORKERS = 2
BASELINE = Path(__file__).resolve().parent / "BENCH_explore.json"


def _sweep(config, cache):
    counters = ExploreCounters()
    start = time.perf_counter()
    report = run_explore(config, plan_cache=cache, counters=counters)
    return report, counters.snapshot(), time.perf_counter() - start


class TestExploreSpeedup:
    def test_warm_parallel_sweep_beats_cold_serial_by_3x(self):
        serial = ExploreConfig()
        parallel = replace(serial, workers=WORKERS)
        with tempfile.TemporaryDirectory() as root:
            cold_report, cold_counts, t_cold = _sweep(
                serial, PlanCache(root=root)
            )
            warm_report, warm_counts, t_warm = _sweep(
                parallel, PlanCache(root=root)
            )
        points = cold_report["counters"]["points_total"]
        assert cold_counts["point_cache_hits"] == 0
        assert cold_counts["points_evaluated"] == points
        # Repeating the identical sweep is 100% point-cache hits.
        assert warm_counts["point_cache_hits"] == points
        assert warm_counts["points_evaluated"] == 0
        # ... and bit-identical to the cold serial run.
        assert (json.dumps(pinned_view(warm_report), sort_keys=True)
                == json.dumps(pinned_view(cold_report), sort_keys=True))
        speedup = t_cold / max(t_warm, 1e-9)
        emit(
            f"explore sweep ({points} points): cold serial "
            f"{t_cold * 1000:.1f} ms, warm parallel "
            f"{t_warm * 1000:.1f} ms, speedup {speedup:.2f}x "
            f"(floor {WARM_SPEEDUP_FLOOR}x)"
        )
        assert speedup >= WARM_SPEEDUP_FLOOR

    def test_serial_and_parallel_cold_sweeps_are_bit_identical(self):
        serial = ExploreConfig()
        parallel = replace(serial, workers=WORKERS)
        a = run_explore(serial, plan_cache=None)
        b = run_explore(parallel, plan_cache=None)
        assert (json.dumps(pinned_view(a), sort_keys=True)
                == json.dumps(pinned_view(b), sort_keys=True))
        assert a["pareto"] == b["pareto"]

    def test_committed_baseline_still_matches(self):
        baseline = json.loads(BASELINE.read_text())
        report = run_explore(ExploreConfig(), plan_cache=None)
        sweep = baseline["sweep"]
        assert sweep["schema"] == report["schema"]
        assert sweep["points_total"] == \
            report["counters"]["points_total"]
        assert sweep["points_infeasible"] == \
            report["counters"]["infeasible_points"]
        assert sweep["pareto"] == report["pareto"]
        assert sweep["workload_fingerprint"] == \
            report["workload"]["fingerprint"]
        assert sweep["pinned_digest"] == pinned_digest(report)
        assert baseline["memoization"]["warm_hit_rate"] == 1.0
        assert baseline["memoization"]["serial_equals_parallel"] is True
        assert sweep["trace_probe_fallbacks"] == 0
