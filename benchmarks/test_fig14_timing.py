"""Fig. 14 / section 5.2: the asynchronous neuron timing example."""

from conftest import emit

from repro.harness.experiments import run_fig14


def test_fig14_timing(benchmark):
    result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    emit(result["report"])
    # Every asynchronous ordering constraint holds on the observed pulses.
    assert all(result["checks"].values()), result["checks"]
    # Six inputs were streamed (as in the figure); the read-back of the
    # written 0b1010 produced two read pulses.
    assert result["input_count"] == 6
    assert result["read_count"] == 2
