"""Section 6.3A: transmission delay share of per-pulse processing time
(paper: ~6% at 1x1, ~53% at 16x16)."""

from conftest import emit

from repro.harness.experiments import run_delay_fraction


def test_delay_fraction(benchmark):
    result = benchmark.pedantic(run_delay_fraction, rounds=1, iterations=1)
    emit(result["report"])
    rows = result["rows"]
    shares = [row["model_share_pct"] for row in rows]
    assert shares == sorted(shares)  # grows with mesh span
    assert abs(shares[0] - 6.0) < 1.0
    assert abs(shares[-1] - 53.0) < 2.0
    # Gate-level cross-check: measured netlist shares grow too and the
    # 1x1 point lands on the paper's 6%.
    measured = [row["gate_level_pct"] for row in rows
                if row["gate_level_pct"] != "-"]
    assert measured == sorted(measured)
    assert abs(measured[0] - 6.0) < 1.5
