"""Extension: direct SSNN training vs ANN-to-SNN conversion."""

from conftest import emit

from repro.harness.experiments import run_conversion_comparison


def test_conversion_comparison(benchmark):
    result = benchmark.pedantic(run_conversion_comparison, rounds=1,
                                iterations=1)
    emit(result["report"])
    converted = result["converted_accs"]
    steps = sorted(converted)
    # Conversion needs a long rate window: the shortest window is the
    # worst, and accuracy recovers as T grows.
    assert converted[steps[-1]] >= converted[steps[0]]
    # At the chip's low-latency operating point (T~5), direct training is
    # competitive with conversion given 3-6x more steps.
    assert result["direct_acc"] >= converted[steps[0]] - 0.05
    # The converted SNN approaches its source ANN at large T.
    assert converted[steps[-1]] >= result["ann_acc"] - 0.06
