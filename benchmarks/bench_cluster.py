"""Cluster benchmark report: ``BENCH_cluster.json`` writer/checker.

Runs the node-level chaos scenarios (:mod:`repro.harness.chaos`:
``node-kill``, ``node-partition``, ``scale-storm``) plus a
deterministic routing measurement, and pins the outcomes the way
``bench_chaos.py`` pins the worker-level campaign:

* **Pinned** (checked by ``--check`` and the CI cluster-smoke step):
  every scenario's pass/fail verdict (each internally asserts answers
  bit-identical to serial ``forward_rows`` and full cluster recovery),
  the exact retry/eviction/quarantine/rejoin counters of the failure
  scenarios, the full 1 -> 8 -> 1 autoscaler size trajectory and action
  sequence, and the consistent-hash routing distribution of a seeded
  request population (router counters + per-node shares + ring balance
  bounds -- all pure functions of the seeds).
* **Informational** (recorded, never asserted): per-scenario recovery
  wall time and dispatch throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py --write  # baseline
    PYTHONPATH=src python benchmarks/bench_cluster.py --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.cluster import ClusterRouter, ConsistentHashRing, PoolNode  # noqa: E402
from repro.harness.chaos import run_chaos  # noqa: E402
from repro.harness.differential import random_binarized_network  # noqa: E402
from repro.ssnn import compile_network  # noqa: E402

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_cluster.json"
SCHEMA_VERSION = 1

NODE_SCENARIOS = ("node-kill", "node-partition", "scale-storm")

#: Deterministic per-scenario detail fields pinned alongside ``passed``.
PINNED_DETAILS = {
    "node-kill": ("retries", "evictions", "rebalances",
                  "nodes_routable"),
    "node-partition": ("fallbacks", "quarantines", "rejoins",
                       "rebalances"),
    "scale-storm": ("sizes", "scale_ups", "scale_downs", "actions"),
}

#: Routing measurement shape (seeded, fully deterministic).
ROUTING_NODES = 4
ROUTING_BLOCKS = 64


def run_campaign() -> dict:
    report = run_chaos(quick=True, names=list(NODE_SCENARIOS))
    if not report["passed"]:
        failing = [s["name"] for s in report["scenarios"]
                   if not s["passed"]]
        raise AssertionError(
            f"node chaos scenarios failed their invariants: {failing}"
        )
    return report


def measure_routing() -> dict:
    """Dispatch a seeded request population through a healthy cluster
    and record the (deterministic) affinity distribution and counters;
    wall-clock throughput rides along as informational."""
    rng = np.random.default_rng(7)
    network = random_binarized_network(rng, sizes=(12, 9, 5), sc_per_npe=8)
    compiled = compile_network(network, 4, 8)
    blocks_rng = np.random.default_rng(11)
    blocks = [
        (blocks_rng.random((6, compiled.in_features)) < 0.4)
        .astype(np.float64)
        for _ in range(ROUTING_BLOCKS)
    ]
    router = ClusterRouter(compiled)
    for i in range(ROUTING_NODES):
        router.join(PoolNode(f"node-{i}", compiled, workers=0))
    try:
        start = time.perf_counter()
        for block in blocks:
            router.dispatch(block)
        elapsed = time.perf_counter() - start
        snap = router.stats()
        shares = {
            node_id: entry["dispatches"]
            for node_id, entry in snap["per_node"].items()
        }
        return {
            "nodes": ROUTING_NODES,
            "blocks": ROUTING_BLOCKS,
            "plan": compiled.fingerprint,
            "counters": snap["counters"],
            "per_node_dispatches": shares,
            "dispatch_throughput_rps": round(
                ROUTING_BLOCKS / elapsed, 1
            ) if elapsed else 0.0,
        }
    finally:
        router.shutdown()


def measure_ring_balance() -> dict:
    """Key-share spread of an 8-node/2000-key population (the balance
    property the hypothesis suite checks in bounds; here the exact
    deterministic shares are pinned)."""
    ring = ConsistentHashRing(
        replicas=64, nodes=[f"node-{i}" for i in range(8)]
    )
    counts = {node: 0 for node in ring.node_ids}
    keys = 2000
    for i in range(keys):
        counts[ring.route(f"key-{i}")] += 1
    fair = keys / len(counts)
    return {
        "nodes": len(counts),
        "keys": keys,
        "replicas": 64,
        "min_share": min(counts.values()),
        "max_share": max(counts.values()),
        "max_over_fair": round(max(counts.values()) / fair, 4),
    }


def measure() -> dict:
    campaign = run_campaign()
    recovery = {
        entry["name"]: entry["elapsed_s"]
        for entry in campaign["scenarios"]
    }
    return {
        "version": SCHEMA_VERSION,
        "note": ("scenario verdicts, router counters, the autoscaler "
                 "trajectory and the routing/ring distributions are "
                 "pinned by --check; recovery latencies and throughput "
                 "are informational"),
        "campaign": campaign,
        "recovery_latency_s": recovery,
        "routing": measure_routing(),
        "ring_balance": measure_ring_balance(),
    }


def _pinned_view(report: dict) -> dict:
    view = {}
    scenarios = {
        entry["name"]: entry
        for entry in report.get("campaign", {}).get("scenarios", [])
    }
    for name, entry in scenarios.items():
        view[f"cluster.{name}.passed"] = entry.get("passed")
        for field in PINNED_DETAILS.get(name, ()):
            view[f"cluster.{name}.{field}"] = (
                entry.get("details", {}).get(field)
            )
    view["cluster.schema"] = report.get("campaign", {}).get("schema")
    view["cluster.all_passed"] = report.get("campaign", {}).get("passed")
    routing = report.get("routing", {})
    for field in ("nodes", "blocks", "plan", "counters",
                  "per_node_dispatches"):
        view[f"routing.{field}"] = routing.get(field)
    balance = report.get("ring_balance", {})
    for field in ("nodes", "keys", "replicas", "min_share",
                  "max_share", "max_over_fair"):
        view[f"ring.{field}"] = balance.get(field)
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("cluster drift against BENCH_cluster.json:", file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"cluster smoke OK: {len(expected)} pinned fields match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-field drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        storm = next(
            s for s in report["campaign"]["scenarios"]
            if s["name"] == "scale-storm"
        )
        print(f"  scale trajectory: {storm['details']['sizes']}")
        for name, elapsed in report["recovery_latency_s"].items():
            print(f"  {name}: recovered in {elapsed}s")
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
