"""Fig. 20: power consumption vs number of NPEs."""

from conftest import emit

from repro.harness.experiments import run_fig20


def test_fig20_power(benchmark):
    result = benchmark.pedantic(run_fig20, rounds=1, iterations=1)
    emit(result["report"])
    rows = result["rows"]
    powers = [row["power_mw"] for row in rows]
    # Monotone and slightly superlinear in NPE count (wiring growth).
    assert powers == sorted(powers)
    per_npe = [p / row["npes"] for p, row in zip(powers, rows)]
    assert per_npe[-1] > per_npe[1]
    # Peak power 41.87 mW at 32 NPEs -- milliwatts, three orders below
    # the CMOS baselines.
    assert abs(result["peak_power_mw"] - 41.87) / 41.87 < 0.02
