"""Section 3 motivation: timing overhead of synchronous RSFQ (~80%) vs
the asynchronous SUSHI design -- measured from real netlists."""

from conftest import emit

from repro.harness.experiments import run_motivation_sync_overhead


def test_motivation_sync_overhead(benchmark):
    result = benchmark.pedantic(run_motivation_sync_overhead, rounds=1,
                                iterations=1)
    emit(result["report"])
    # Synchronous designs are timing-dominated (the paper's ~80% figure;
    # our small blocks land in the 60-85% band).
    assert result["sync_shift_register"] > 0.6
    assert result["sync_adder"] > 0.5
    # The asynchronous design reduces the overhead relative to the
    # synchronous memory structure.
    assert (result["sushi_configurable"]
            < result["sync_shift_register"])
    assert result["sushi_fixed"] < result["sync_shift_register"]
