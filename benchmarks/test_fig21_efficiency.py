"""Fig. 21: power efficiency (GSOPS/W) vs number of NPEs."""

from conftest import emit

from repro.baselines import TIANJIC, TRUENORTH
from repro.harness.experiments import run_fig21


def test_fig21_efficiency(benchmark):
    result = benchmark.pedantic(run_fig21, rounds=1, iterations=1)
    emit(result["report"])
    rows = result["rows"]
    efficiencies = [row["gsops_per_w"] for row in rows]
    # Every configuration beats both CMOS baselines by a wide margin.
    for eff in efficiencies:
        assert eff > 10 * TRUENORTH.gsops_per_w
        assert eff > 10 * TIANJIC.gsops_per_w
    # Efficiency erodes as the mesh grows (transmission-line energy), the
    # paper's "slightly impacted ... in larger designs" observation.
    assert efficiencies[0] > efficiencies[-1]
    # Peak configuration lands at the published 32,366 GSOPS/W.
    assert abs(efficiencies[-1] - 32_366) / 32_366 < 0.02
