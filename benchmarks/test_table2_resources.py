"""Table 2: resource overhead of the configurable 4x4 mesh."""

from conftest import emit

from repro.harness.experiments import run_table2


def test_table2_resources(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit(result["report"])
    measured = result["measured"]
    # Paper: 45,542 total JJs, 31,026 wiring (68.13%), 44.73 mm^2.
    assert abs(measured.total_jj - 45_542) / 45_542 < 0.05
    assert abs(measured.wiring_jj - 31_026) / 31_026 < 0.05
    assert abs(measured.total_area_mm2 - 44.73) / 44.73 < 0.05
    # Wiring dominates, as on every RSFQ chip -- but stays well under the
    # ~80% typical of synchronous designs (the paper's headline claim).
    assert 0.60 < measured.wiring_fraction < 0.80
