"""Extension: the stateless SSNN neuron's cost on temporal workloads."""

from conftest import emit

from repro.harness.experiments import run_temporal_limits


def test_temporal_limits(benchmark):
    result = benchmark.pedantic(run_temporal_limits, rounds=1, iterations=1)
    emit(result["report"])
    # Stateful IF solves the motion task (information lives across steps).
    assert result["stateful_acc"] > 0.9
    # The stateless simplification loses most of that information...
    assert result["stateless_acc"] < result["stateful_acc"] - 0.3
    # ...while staying above chance (edge positions leak a little).
    assert result["stateless_acc"] > 0.25
