"""A faithful replica of the pre-optimisation event loop, for benchmarks.

The fast-path work in :mod:`repro.rsfq.simulator` (tuple queue entries,
integer-indexed dispatch, hoisted jitter/trace branches) is only a win if
we can measure it against the engine it replaced.  :class:`LegacySimulator`
reproduces that engine's hot path exactly as it stood before the rework:

* queue entries carry **string** cell / port names;
* every pop materialises a :class:`~repro.rsfq.events.PulseEvent` object;
* dispatch goes through the string-keyed ``FanoutTable.cells`` dict and
  the string-keyed ``routes`` view;
* the jitter branch is evaluated **per delivered pulse** inside
  ``deliver`` rather than specialised at construction;
* the trace branch is evaluated **per event** inside the loop;
* constraint checking scans the cell's **whole** ``CONSTRAINTS`` table on
  every arrival (the per-port ``CONSTRAINTS_BY_PORT`` split came with the
  rework), exactly as the old ``Cell.receive`` did.

It subclasses :class:`~repro.rsfq.simulator.Simulator`, so cells interact
with it through the very same ``deliver`` / ``report_violation`` /
``record_margin`` surface -- the physics is bit-identical (asserted by
``test_simulator_speedup.py``); only the per-event constant factor
differs.  That makes ``events/sec(new) / events/sec(legacy)`` a clean
measurement of the optimisation, on the same interpreter, same day.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.state_controller import Polarity
from repro.rsfq import library
from repro.rsfq.cells import Violation
from repro.rsfq.netlist import Netlist
from repro.rsfq.constraints import INTERVAL_EPSILON
from repro.rsfq.events import PulseEvent
from repro.rsfq.simulator import Simulator

from repro.errors import ConfigurationError


def _legacy_receive(cell, port, time, sim):
    """The pre-rework ``Cell.receive``: per-event port validation plus a
    scan of the *entire* constraint table (physics identical to the
    current per-port fast path, constant factor higher)."""
    if port not in cell.INPUTS:
        raise ConfigurationError(
            f"cell '{cell.name}' ({type(cell).__name__}) has no input "
            f"port '{port}'; ports are {cell.INPUTS}"
        )
    for (port_a, port_b), min_lag in cell.CONSTRAINTS.items():
        if port_b != port:
            continue
        last = cell._last_arrival.get(port_a)
        if last is None:
            continue
        actual = time - last
        sim.record_margin(type(cell).__name__, port_a, port_b,
                          min_lag, actual)
        if actual + INTERVAL_EPSILON < min_lag:
            sim.report_violation(Violation(
                component=cell.name,
                cell_type=type(cell).__name__,
                port_a=port_a,
                port_b=port,
                required=min_lag,
                actual=actual,
                time=time,
            ))
    cell._last_arrival[port] = time
    cell.switch_count += 1
    cell.on_pulse(port, time, sim)


class LegacySimulator(Simulator):
    """The pre-rework engine: per-event object allocation + string dispatch."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # The base class binds ``deliver`` to a jitter-specialised fast
        # variant at construction; rebind to the legacy single variant
        # with the per-pulse jitter branch inside.
        self.deliver = self._legacy_deliver

    def schedule_input(self, cell, port, time):
        # Same validation as the base class, but queue entries carry the
        # *names* (the pre-rework representation).
        cell = self._resolve(cell)
        if port not in cell.INPUTS:
            raise ConfigurationError(
                f"cell '{cell.name}' has no input port '{port}'"
            )
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule input for '{cell.name}.{port}' at "
                f"{time} ps: simulation time is already {self.now} ps"
            )
        self._refresh()
        self.queue.push(time, cell.name, port)

    def _legacy_deliver(self, cell, port, time):
        for dst, dst_port, delay in self._fanout.fanout(cell.name, port):
            if self.jitter_ps > 0.0:
                delay = max(0.0, delay + self._rng.gauss(0.0, self.jitter_ps))
            self.queue.push(time + delay, dst, dst_port)

    def run(self, until=None, max_events=10_000_000):
        self._refresh()
        cells = self._fanout.cells
        queue = self.queue
        trace = self.trace
        processed = 0
        while queue:
            next_time = queue.peek_time()
            if until is not None and next_time > until:
                break
            if processed >= max_events:
                raise ConfigurationError(
                    f"simulation exceeded {max_events} events; suspected "
                    "feedback oscillation in the netlist"
                )
            event = PulseEvent.from_entry(queue.pop())
            self.now = event.time
            cell = cells[event.component]
            if trace is not None:
                trace.record(event.component, event.port, event.time)
            _legacy_receive(cell, event.port, event.time, self)
            self.delivered_pulses += 1
            processed += 1
        self.events_processed += processed
        if until is not None and until > self.now:
            self.now = until
        return self.now


# -- the standard benchmark workload ---------------------------------------


@dataclass
class WorkloadResult:
    """Outcome of one engine running the reference workload."""

    engine: str
    events: int
    violations: int
    wall_time_s: float
    outputs: tuple  #: per-repeat ``read_out()`` results (physics check)

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.events / self.wall_time_s


def run_chip_workload(
    sim_factory: Optional[Callable[[GateLevelChip], Simulator]] = None,
    engine: str = "fast",
    n: int = 2,
    sc_per_npe: int = 4,
    repeats: int = 6,
) -> WorkloadResult:
    """Drive the reference gate-level protocol and time the event loop.

    The workload is a fixed, fully deterministic multi-timestep inference
    on the Fig. 16 gate-level chip: per repeat, one threshold load, one
    weight configuration, and four polarity passes.  All engines process
    exactly the same pulses, so ``events`` is engine-independent (the
    drift check in ``bench_report.py --check`` pins it) while
    ``wall_time_s`` measures the per-event constant factor.
    """
    chip = GateLevelChip(ChipConfig(n=n, sc_per_npe=sc_per_npe))
    if sim_factory is not None:
        sim = sim_factory(chip)
    elif engine == "legacy":
        sim = LegacySimulator(chip.net)
    elif engine == "fast":
        sim = chip.simulator()
    elif engine == "parallel":
        sim = chip.parallel_simulator(parts=2 * n)
    else:
        raise ConfigurationError(f"unknown workload engine '{engine}'")
    return _drive_protocol(chip, sim, engine, n, repeats)


def _drive_protocol(chip, sim, engine, n, repeats) -> WorkloadResult:

    driver = ChipDriver(chip, sim)
    outputs = []
    start = _time.perf_counter()
    for r in range(repeats):
        driver.begin_timestep([2 + (r % 2)] * n)
        driver.configure_weights(
            [[(i + j + r) % 2 for j in range(n)] for i in range(n)]
        )
        driver.run_pass(Polarity.SET1, [True] * n)
        driver.run_pass(Polarity.SET1, [i % 2 == 0 for i in range(n)])
        driver.run_pass(Polarity.SET0, [r % 2 == 1] * n)
        driver.run_pass(Polarity.SET1, [True] * n)
        outputs.append(tuple(driver.read_out()))
    wall = _time.perf_counter() - start
    return WorkloadResult(
        engine=engine,
        events=sim.events_processed,
        violations=len(sim.violations),
        wall_time_s=wall,
        outputs=tuple(outputs),
    )


def run_trace_replay_workload(
    n: int = 2,
    sc_per_npe: int = 4,
    repeats: int = 6,
    replays: int = 20,
) -> dict:
    """Record-once / replay-many measurement on the chip workload.

    Captures the exact ``chip_n2_sc4_r6`` stimulus schedule with a
    :class:`~repro.rsfq.trace.ScheduleRecorder`, records it into a
    :class:`~repro.rsfq.trace.CompiledTrace` (cold cost), then times
    ``replays`` warm vectorized replays against the same number of
    fast-path re-executions of the identical segments on a fresh
    :class:`~repro.rsfq.simulator.Simulator`.  The deterministic fields
    (events, violations, replay/fallback counts, bit-equality verdict)
    are pinned by ``bench_report.py --check``; wall-clock numbers are
    informational.  The enforced ">= 5x" gate lives in
    ``test_trace_speedup.py``.
    """
    from repro.rsfq.trace import ScheduleRecorder, TraceEngine

    chip = GateLevelChip(ChipConfig(n=n, sc_per_npe=sc_per_npe))
    recorder = ScheduleRecorder(chip.net)
    _drive_protocol(chip, recorder, "capture", n, repeats)
    segments = recorder.captured_segments()
    baseline_fires = [list(chip.fire_times(j)) for j in range(n)]

    chip_t = GateLevelChip(ChipConfig(n=n, sc_per_npe=sc_per_npe))
    engine = TraceEngine(chip_t.net)
    start = _time.perf_counter()
    episode = engine.run_episode(segments)
    record_s = _time.perf_counter() - start

    start = _time.perf_counter()
    for _ in range(replays):
        episode = engine.run_episode(segments)
    warm_s = _time.perf_counter() - start
    traced_fires = [list(chip_t.fire_times(j)) for j in range(n)]

    chip_f = GateLevelChip(ChipConfig(n=n, sc_per_npe=sc_per_npe))
    sim = chip_f.simulator()
    start = _time.perf_counter()
    for _ in range(replays):
        sim.reset()
        for segment in segments:
            for name, port, time in segment:
                sim.schedule_input(name, port, time)
            sim.run()
    fast_s = _time.perf_counter() - start
    fast_fires = [list(chip_f.fire_times(j)) for j in range(n)]

    warm_per_replay = warm_s / replays
    fast_per_run = fast_s / replays
    return {
        "events": episode.events,
        "violations": len(episode.violations),
        "replays": engine.stats["replays"],
        "fallbacks": engine.stats["fallbacks"],
        "replay_equal": (
            traced_fires == baseline_fires == fast_fires
            and episode.mode == "replay"
        ),
        "record_wall_s": round(record_s, 6),
        "warm_replay_wall_s": round(warm_per_replay, 6),
        "fast_wall_s": round(fast_per_run, 6),
        "speedup_warm_replay_over_fast": round(
            fast_per_run / warm_per_replay, 3
        ) if warm_per_replay > 0 else 0.0,
    }


def run_chain_workload(
    engine: str = "fast", n: int = 300, pulses: int = 150
) -> WorkloadResult:
    """Pure event-churn workload: a long JTL chain fed many pulses.

    ``pulses`` stimuli fan into ``n * pulses`` events with almost no
    scheduling overhead, isolating the per-event constant factor of the
    event loop itself (the chip workload above includes the driver
    protocol around it).
    """
    net = Netlist("bench-chain")
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n)]
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=25.0)
    if engine == "legacy":
        sim = LegacySimulator(net)
    elif engine == "fast":
        sim = Simulator(net)
    else:
        raise ConfigurationError(f"unknown workload engine '{engine}'")
    for k in range(pulses):
        sim.schedule_input(cells[0], "din", 25.0 * k * 2)
    start = _time.perf_counter()
    sim.run()
    wall = _time.perf_counter() - start
    return WorkloadResult(
        engine=engine,
        events=sim.events_processed,
        violations=len(sim.violations),
        wall_time_s=wall,
        outputs=(),
    )
