"""Event-engine benchmark report: ``BENCH_simulator.json`` writer/checker.

Measures the reference workloads of :mod:`legacy_engine` on the legacy,
fast sequential, and partitioned parallel engines and reports events/sec,
wall time and the fast-over-legacy speedup.

Two fields classes live in the JSON:

* **Pinned** (checked by ``--check`` and the CI perf-smoke step): the
  deterministic events-processed counts, violation counts and partition
  counts per workload.  Any optimisation that changes *what* the engine
  simulates -- rather than how fast -- shows up here as drift and fails
  the check.
* **Informational** (recorded, never asserted): wall-clock derived numbers
  (events/sec, speedups).  They document the machine the baseline was
  written on; asserting them would make CI flaky.  The enforced ">= 2x
  sequential fast path" gate lives in ``test_simulator_speedup.py``,
  where it runs both engines back-to-back on the same interpreter.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py --write   # new baseline
    PYTHONPATH=src python benchmarks/bench_report.py --check   # CI drift gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from legacy_engine import (  # noqa: E402
    run_chain_workload,
    run_chip_workload,
    run_trace_replay_workload,
)

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_simulator.json"
SCHEMA_VERSION = 1

#: Fields that must not drift between runs (deterministic engine outputs).
PINNED_FIELDS = ("events", "violations", "partitions", "replays",
                 "fallbacks", "replay_equal")


def measure() -> dict:
    """Run every workload on every engine and assemble the report."""
    chain_legacy = run_chain_workload("legacy")
    chain_fast = run_chain_workload("fast")

    chip_legacy = run_chip_workload(engine="legacy")
    chip_fast = run_chip_workload(engine="fast")
    holder = {}

    def parallel_factory(chip):
        sim = chip.parallel_simulator(parts=4)
        holder["sim"] = sim
        return sim

    chip_parallel = run_chip_workload(sim_factory=parallel_factory,
                                      engine="parallel")
    par_sim = holder["sim"]

    if chip_legacy.outputs != chip_fast.outputs:
        raise AssertionError("legacy and fast engines disagree on outputs")
    if chip_fast.outputs != chip_parallel.outputs:
        raise AssertionError("fast and parallel engines disagree on outputs")

    def block(result, pinned_extra=None):
        data = {
            "events": result.events,
            "violations": result.violations,
            "wall_time_s": round(result.wall_time_s, 6),
            "events_per_sec": round(result.events_per_sec, 1),
        }
        data.update(pinned_extra or {})
        return data

    return {
        "version": SCHEMA_VERSION,
        "note": ("events/violations/partitions are pinned by --check; "
                 "wall-clock numbers are informational"),
        "workloads": {
            "chain_300x150": {
                "description": "300-JTL chain, 150 pulses (pure event churn)",
                "legacy": block(chain_legacy),
                "fast": block(chain_fast),
                "speedup_fast_over_legacy": round(
                    chain_fast.events_per_sec
                    / chain_legacy.events_per_sec, 3),
            },
            "chip_n2_sc4_r6": {
                "description": ("2x2 gate-level chip, sc_per_npe=4, "
                                "6 timesteps x 4 passes"),
                "legacy": block(chip_legacy),
                "fast": block(chip_fast),
                "parallel": block(
                    chip_parallel,
                    {"partitions": par_sim.plan.n_partitions,
                     "rounds": par_sim.rounds},
                ),
                "speedup_fast_over_legacy": round(
                    chip_fast.events_per_sec
                    / chip_legacy.events_per_sec, 3),
            },
            "trace_replay": {
                "description": ("chip_n2_sc4_r6 schedule recorded once, "
                                "20 warm vectorized replays vs fast-path "
                                "re-execution of the same segments"),
                "traced": run_trace_replay_workload(),
            },
        },
    }


def _pinned_view(report: dict) -> dict:
    """Extract the pinned (deterministic) subset of a report."""
    view = {}
    for wname, workload in report.get("workloads", {}).items():
        for ename, engine in workload.items():
            if not isinstance(engine, dict):
                continue
            for field in PINNED_FIELDS:
                if field in engine:
                    view[f"{wname}.{ename}.{field}"] = engine[field]
    return view


def write(path: Path = REPORT_PATH) -> dict:
    report = measure()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return report


def check(path: Path = REPORT_PATH) -> int:
    if not path.exists():
        print(f"missing baseline {path}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    if baseline.get("version") != SCHEMA_VERSION:
        print(f"baseline schema {baseline.get('version')} != "
              f"{SCHEMA_VERSION}; regenerate with --write", file=sys.stderr)
        return 2
    expected = _pinned_view(baseline)
    actual = _pinned_view(measure())
    drift = {
        key: (expected.get(key), actual.get(key))
        for key in sorted(set(expected) | set(actual))
        if expected.get(key) != actual.get(key)
    }
    if drift:
        print("events-processed drift against BENCH_simulator.json:",
              file=sys.stderr)
        for key, (want, got) in drift.items():
            print(f"  {key}: baseline={want} measured={got}",
                  file=sys.stderr)
        print("(if the change is intentional, regenerate the baseline "
              "with --write)", file=sys.stderr)
        return 1
    print(f"perf smoke OK: {len(expected)} pinned counters match "
          f"{path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (re)write the baseline JSON")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on pinned-counter drift")
    args = parser.parse_args(argv)
    if args.write:
        report = write()
        for wname, workload in report["workloads"].items():
            speed = workload.get("speedup_fast_over_legacy")
            print(f"  {wname}: fast/legacy speedup = {speed}x")
        return 0
    return check()


if __name__ == "__main__":
    raise SystemExit(main())
