"""Section 4.2.2: batch reordering reduces weight-reload traffic.

Reload *latency* is span-dependent and parallel per synapse, so the
per-pass time share stays put on dense workloads; what the reordering
saves is the reload control traffic (NDRO set/reset pulses) -- the
"frequency of weight reloading" the paper minimises.
"""

from conftest import emit

from repro.harness.experiments import run_reload_optimization


def test_reload_optimization(benchmark):
    result = benchmark.pedantic(run_reload_optimization, rounds=1,
                                iterations=1)
    emit(result["report"])
    # Reordering strictly reduces crosspoint reload events.
    assert result["events_after"] < result["events_before"]
    assert result["reduction"] > 0.05
    # And never makes the time share worse.
    assert result["time_after"] <= result["time_before"] + 1e-9
