"""Fig. 16: chip-vs-simulation waveforms and the inference readout.

The "fabricated chip" side is the same gate-level netlist re-simulated
with Gaussian wire-delay jitter (fabrication variation stand-in); the
comparison asserts what the paper's oscilloscope study showed -- identical
pulse counts and identical per-step outputs.
"""

from conftest import emit

from repro.harness.experiments import run_fig16


def test_fig16_waveforms(benchmark):
    result = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    emit(result["report"])
    # Chip (jittered) and simulation agree step by step and pulse by pulse.
    assert result["consistent"]
    assert result["pulse_match"]
    # The winning label's stream carries at least one spike; the readout
    # picks it (Fig. 16(d) semantics).
    streams = result["label_streams"]
    winning = streams[f"label{result['prediction']}"]
    assert "1" in winning
    # Complete run: every label reports a 5-step stream.
    assert len(streams) == 10
    assert all(len(s.split("-")) == 5 for s in streams.values())
    # The demonstration sample is classified correctly end to end.
    assert result["prediction"] == result["true_label"]
