"""Faithful replica of the pre-supervision shared-memory pool.

Preserved from :mod:`repro.ssnn.pool` as it stood before the
supervision rework (worker resurrection, shard retry, epoch guards,
poison quarantine) so the overhead gate keeps measuring against the
*real* historical baseline: one shared task queue, no ``(job, epoch)``
header on the input segment, no liveness bookkeeping on the hot path --
and, consequently, a pool where one dead worker fails the whole call
and the pool never recovers.

:class:`LegacyInferencePool` keeps the same bit-exact
``infer_rows`` == ``CompiledNetwork.forward_rows`` contract, which is
what lets ``test_supervision_overhead.py`` and ``bench_chaos.py`` pin
equivalence alongside the steady-state overhead numbers.
"""

from __future__ import annotations

import itertools
import os
import pickle
import sys
import threading
import time
import weakref
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.ssnn.compile import CompiledNetwork  # noqa: E402
from repro.ssnn.pool import InferencePoolError, _attach_shm  # noqa: E402


def _legacy_worker_main(payload: bytes, tasks, results) -> None:
    """Worker loop: deserialize the compiled plan once, then serve row
    shards until the ``None`` sentinel arrives."""
    compiled: CompiledNetwork = pickle.loads(payload)
    while True:
        task = tasks.get()
        if task is None:
            return
        (job, shard, in_name, shape, out_name, start, end) = task
        try:
            shm_in = _attach_shm(in_name)
            shm_out = _attach_shm(out_name)
            try:
                rows = np.ndarray(
                    tuple(shape), dtype=np.float64, buffer=shm_in.buf
                )
                decisions, spurious, synops = compiled.forward_rows(
                    rows[start:end]
                )
                out = np.ndarray(
                    (shape[0], compiled.out_features),
                    dtype=np.float64,
                    buffer=shm_out.buf,
                )
                out[start:end] = decisions
            finally:
                shm_in.close()
                shm_out.close()
            results.put((job, shard, spurious, synops, None))
        except Exception as exc:  # surface the traceback to the parent
            import traceback

            results.put((job, shard, 0, 0,
                         f"{exc}\n{traceback.format_exc()}"))


def _legacy_shutdown(procs, tasks, segments) -> None:
    """Finalizer-safe teardown: sentinel the workers, reap them, unlink
    any surviving shared-memory segments."""
    for _ in procs:
        try:
            tasks.put_nowait(None)
        except Exception:
            pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        try:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        except Exception:
            pass
    try:
        tasks.close()
        tasks.cancel_join_thread()
    except Exception:
        pass
    for shm in list(segments):
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
    segments.clear()


class LegacyInferencePool:
    """The unsupervised persistent pool, exactly as it used to be."""

    def __init__(
        self,
        compiled: CompiledNetwork,
        workers: int = 2,
        start_method: Optional[str] = None,
        result_timeout_s: float = 60.0,
    ):
        import multiprocessing as mp

        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if result_timeout_s <= 0:
            raise ConfigurationError("result_timeout_s must be > 0")
        self.compiled = compiled
        self.workers = workers
        self.result_timeout_s = result_timeout_s
        self._ctx = mp.get_context(start_method)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._jobs = itertools.count()
        self._segments: List = []
        self._segment_gen = itertools.count()
        self._closed = False
        payload = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        self._procs = [
            self._ctx.Process(
                target=_legacy_worker_main,
                args=(payload, self._tasks, self._results),
                daemon=True,
                name=f"sushi-legacy-infer-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        self._finalizer = weakref.finalize(
            self, _legacy_shutdown, self._procs, self._tasks, self._segments
        )

    # -- buffers -------------------------------------------------------------

    def _segment(self, index: int, nbytes: int):
        from multiprocessing import shared_memory

        while len(self._segments) <= index:
            self._segments.append(None)
        current = self._segments[index]
        if current is not None and current.size >= nbytes:
            return current
        if current is not None:
            current.close()
            current.unlink()
        size = max(nbytes, 1)
        if current is not None:
            size = max(size, 2 * current.size)
        name = (f"sushi-legacy-{os.getpid()}-{id(self) & 0xFFFFFF:x}-"
                f"{index}-{next(self._segment_gen)}")
        self._segments[index] = shared_memory.SharedMemory(
            name=name, create=True, size=size
        )
        return self._segments[index]

    @staticmethod
    def _shards(n_rows: int, parts: int) -> List[Tuple[int, int]]:
        parts = max(1, min(parts, n_rows))
        base, extra = divmod(n_rows, parts)
        ranges = []
        start = 0
        for i in range(parts):
            end = start + base + (1 if i < extra else 0)
            ranges.append((start, end))
            start = end
        return ranges

    # -- execution -----------------------------------------------------------

    def infer_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, int, int]:
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.compiled.in_features:
            raise ConfigurationError(
                f"expected (batch, {self.compiled.in_features}) rows, "
                f"got {rows.shape}"
            )
        if rows.shape[0] == 0:
            return (
                np.zeros((0, self.compiled.out_features)), 0, 0,
            )
        with self._lock:
            if self._closed:
                raise InferencePoolError("inference pool is closed")
            n_rows = rows.shape[0]
            out_shape = (n_rows, self.compiled.out_features)
            shm_in = self._segment(0, rows.nbytes)
            shm_out = self._segment(1, int(np.prod(out_shape)) * 8)
            np.ndarray(rows.shape, np.float64, buffer=shm_in.buf)[...] = rows
            job = next(self._jobs)
            shards = self._shards(n_rows, self.workers)
            for idx, (start, end) in enumerate(shards):
                self._tasks.put((
                    job, idx, shm_in.name, tuple(rows.shape),
                    shm_out.name, start, end,
                ))
            spurious = 0
            synops = 0
            pending = len(shards)
            deadline = time.monotonic() + self.result_timeout_s
            while pending:
                try:
                    (rjob, _shard, shard_spurious, shard_synops,
                     error) = self._results.get(timeout=0.1)
                except Exception:
                    if time.monotonic() > deadline:
                        raise InferencePoolError(
                            f"inference pool timed out after "
                            f"{self.result_timeout_s}s"
                        ) from None
                    if not all(p.is_alive() for p in self._procs):
                        raise InferencePoolError(
                            "an inference pool worker died"
                        ) from None
                    continue
                if rjob != job:
                    continue  # stale result of an aborted earlier call
                if error is not None:
                    raise InferencePoolError(
                        f"inference pool worker failed:\n{error}"
                    )
                spurious += shard_spurious
                synops += shard_synops
                pending -= 1
            decisions = np.array(
                np.ndarray(out_shape, np.float64, buffer=shm_out.buf),
                copy=True,
            )
            return decisions, spurious, synops

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def alive_workers(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._finalizer()

    def __enter__(self) -> "LegacyInferencePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
