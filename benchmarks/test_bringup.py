"""Section 6.2: the chip bring-up mechanism battery."""

from conftest import emit

from repro.harness.experiments import run_bringup_battery


def test_bringup_battery(benchmark):
    result = benchmark.pedantic(run_bringup_battery, rounds=1, iterations=1)
    emit(result["report"])
    # Every mechanism behaves identically in ideal simulation and under
    # fabrication-like jitter (the paper's chip-vs-simulation agreement).
    assert result["ideal"].passed
    assert result["jittered"].passed
    # And the full-scale (10-SC, 1024-state) NPE passes the same battery.
    assert result["full_scale"].passed
    # Timing sign-off: every constraint family runs with positive slack.
    assert result["min_slack_ps"] > 0
