"""Synthetic event-stream dataset (DVS-style moving bars).

A temporal workload for spiking networks: each sample is a ``(T, H, W)``
binary event movie of a bar sweeping across the frame in one of several
directions; the label is the motion direction.  Unlike the rate-coded
image datasets, the information here lives *across* time steps -- so it
separates the paper's stateless SSNN neuron (membrane cleared each step,
section 5.1) from the stateful IF model: direction is invisible to any
single frame.

Used by the stateless-cost experiment (`run_temporal_limits`), which
quantifies what the superconducting-circuit-friendly simplification gives
up on genuinely temporal data (the paper's MNIST workload is rate-coded,
where the simplification is nearly free).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Motion directions: name -> (dy, dx) per time step.
DIRECTIONS = {
    "right": (0, 1),
    "left": (0, -1),
    "down": (1, 0),
    "up": (-1, 0),
}
DIRECTION_NAMES = tuple(DIRECTIONS)


@dataclass(frozen=True)
class EventDataset:
    """Train/test split of event movies.

    ``train_events`` / ``test_events`` have shape (N, T, H, W) with binary
    entries; labels index :data:`DIRECTION_NAMES`.
    """

    train_events: np.ndarray
    train_labels: np.ndarray
    test_events: np.ndarray
    test_labels: np.ndarray

    @property
    def num_classes(self) -> int:
        return len(DIRECTION_NAMES)

    @property
    def time_steps(self) -> int:
        return self.train_events.shape[1]

    @property
    def frame_size(self) -> int:
        return self.train_events.shape[2]


def _render_sample(rng: np.random.Generator, side: int, steps: int,
                   direction: str, noise: float) -> np.ndarray:
    """One moving-bar movie: a 1-pixel-wide bar sweeping ``direction``."""
    dy, dx = DIRECTIONS[direction]
    movie = np.zeros((steps, side, side))
    # Bar orientation is perpendicular to the motion.
    vertical_bar = dx != 0
    span0 = int(rng.integers(0, side // 2))
    span1 = int(rng.integers(side // 2 + 1, side + 1))
    if vertical_bar:
        position = 0 if dx > 0 else side - 1
    else:
        position = 0 if dy > 0 else side - 1
    for t in range(steps):
        frame = movie[t]
        pos = int(np.clip(position, 0, side - 1))
        if vertical_bar:
            frame[span0:span1, pos] = 1.0
        else:
            frame[pos, span0:span1] = 1.0
        # Event noise: spurious and dropped events.
        flips = rng.random((side, side)) < noise
        frame[flips] = 1.0 - frame[flips]
        position += dx if vertical_bar else dy
    return movie


def load_moving_bars(
    train_size: int = 400,
    test_size: int = 100,
    side: int = 8,
    steps: int = 8,
    noise: float = 0.02,
    seed: int = 0,
) -> EventDataset:
    """Generate the moving-bar event dataset."""
    if side < 3 or steps < 2:
        raise ConfigurationError("need side >= 3 and steps >= 2")
    if not 0.0 <= noise < 0.5:
        raise ConfigurationError("noise must be in [0, 0.5)")
    rng = np.random.default_rng(seed)

    def split(count: int):
        labels = rng.integers(0, len(DIRECTION_NAMES), size=count)
        events = np.stack([
            _render_sample(rng, side, steps, DIRECTION_NAMES[label], noise)
            for label in labels
        ])
        return events, labels.astype(np.int64)

    train_events, train_labels = split(train_size)
    test_events, test_labels = split(test_size)
    return EventDataset(train_events, train_labels,
                        test_events, test_labels)
