"""Procedural 28x28 image dataset generators (MNIST/Fashion stand-ins)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.glyphs import DIGIT_GLYPHS, FASHION_CLASS_NAMES, FASHION_GLYPHS
from repro.errors import ConfigurationError

IMAGE_SIZE = 28
NUM_CLASSES = 10


@dataclass(frozen=True)
class Dataset:
    """A train/test split of images in [0, 1] with integer labels."""

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self):
        for images, labels in (
            (self.train_images, self.train_labels),
            (self.test_images, self.test_labels),
        ):
            if len(images) != len(labels):
                raise ConfigurationError("image/label count mismatch")
            if images.min(initial=0.0) < 0.0 or images.max(initial=1.0) > 1.0:
                raise ConfigurationError("intensities must lie in [0, 1]")

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES


def _place_glyph(glyph: np.ndarray, rng: np.random.Generator,
                 jitter: float, noise: float, blur: float) -> np.ndarray:
    """Upscale a glyph into a 28x28 canvas with random affine jitter,
    neighbourhood smudging and salt noise."""
    gh, gw = glyph.shape
    # Size-normalised scale (like MNIST's preprocessing), with occasional
    # one-step shrink for mild size variation.
    scale = max(1, min(IMAGE_SIZE // gh, IMAGE_SIZE // gw))
    if scale > 1 and rng.random() < 0.25:
        scale -= 1
    big = np.kron(glyph, np.ones((scale, scale)))
    canvas = np.zeros((IMAGE_SIZE, IMAGE_SIZE))
    max_dy = IMAGE_SIZE - big.shape[0]
    max_dx = IMAGE_SIZE - big.shape[1]
    jr = max(1, int(round(jitter * 2)))
    dy = int(np.clip(max_dy // 2 + rng.integers(-jr, jr + 1), 0, max_dy))
    dx = int(np.clip(max_dx // 2 + rng.integers(-jr, jr + 1), 0, max_dx))
    canvas[dy:dy + big.shape[0], dx:dx + big.shape[1]] = big
    # Random shear: shift each row by a slowly-varying offset.
    shear = rng.uniform(-jitter, jitter)
    sheared = np.zeros_like(canvas)
    for row in range(IMAGE_SIZE):
        offset = int(round(shear * (row - IMAGE_SIZE / 2) / 4))
        sheared[row] = np.roll(canvas[row], offset)
    canvas = sheared
    # Smudge: average with shifted copies (cheap blur).
    if blur > 0:
        acc = canvas.copy()
        for shift_y, shift_x in ((0, 1), (1, 0), (0, -1), (-1, 0)):
            acc += np.roll(np.roll(canvas, shift_y, axis=0), shift_x, axis=1)
        canvas = (1.0 - blur) * canvas + blur * (acc / 5.0)
    # Pixel noise: additive speckle plus random dropout.
    canvas += rng.normal(0.0, noise, canvas.shape)
    drop = rng.random(canvas.shape) < (noise / 2.0)
    canvas[drop] = 0.0
    return np.clip(canvas, 0.0, 1.0)


def _generate(
    glyphs,
    name: str,
    train_size: int,
    test_size: int,
    seed: int,
    jitter: float,
    noise: float,
    blur: float,
) -> Dataset:
    if train_size < NUM_CLASSES or test_size < NUM_CLASSES:
        raise ConfigurationError(
            "need at least one sample per class in each split"
        )
    rng = np.random.default_rng(seed)

    def split(count: int):
        labels = rng.integers(0, NUM_CLASSES, size=count)
        images = np.stack([
            _place_glyph(glyphs[label], rng, jitter, noise, blur)
            for label in labels
        ])
        return images, labels.astype(np.int64)

    train_images, train_labels = split(train_size)
    test_images, test_labels = split(test_size)
    return Dataset(train_images, train_labels, test_images, test_labels,
                   name=name)


def load_digits(
    train_size: int = 2000,
    test_size: int = 500,
    seed: int = 0,
) -> Dataset:
    """The MNIST stand-in: rendered digits, mild jitter and noise."""
    return _generate(
        DIGIT_GLYPHS, "digits", train_size, test_size, seed,
        jitter=1.5, noise=0.14, blur=0.4,
    )


def load_fashion(
    train_size: int = 2000,
    test_size: int = 500,
    seed: int = 1,
) -> Dataset:
    """The Fashion-MNIST stand-in: clothing silhouettes with heavier
    jitter, noise and blur (deliberately harder than the digits)."""
    return _generate(
        FASHION_GLYPHS, "fashion", train_size, test_size, seed,
        jitter=3.0, noise=0.28, blur=0.6,
    )


def class_names(dataset_name: str):
    """Human-readable class names for reports."""
    if dataset_name == "fashion":
        return list(FASHION_CLASS_NAMES)
    return [str(d) for d in range(10)]
