"""Synthetic datasets standing in for MNIST and Fashion-MNIST.

The evaluation environment has no network access, so the paper's datasets
are replaced with deterministic procedural generators that exercise the
identical pipeline: 28x28 grayscale images in [0, 1], ten classes, train
and test splits.  ``digits`` renders glyph bitmaps of the digits 0-9 with
random affine jitter and noise (the MNIST stand-in); ``fashion`` renders
clothing silhouettes with heavier intra-class variation and inter-class
overlap, making it deliberately harder (mirroring Fashion-MNIST being
harder than MNIST).  See DESIGN.md for the substitution rationale.
"""

from repro.data.datasets import Dataset, load_digits, load_fashion
from repro.data.events import EventDataset, load_moving_bars

__all__ = ["Dataset", "load_digits", "load_fashion", "EventDataset", "load_moving_bars"]
