"""Exception hierarchy for the SUSHI reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConstraintViolationError(ReproError):
    """A pulse arrived closer to a previous pulse than an RSFQ cell allows.

    Raised only when the simulator runs in strict mode; otherwise violations
    are recorded on :attr:`repro.rsfq.simulator.Simulator.violations`.
    """


class ProtocolError(ReproError):
    """A control sequence violated the asynchronous neuron timing protocol.

    Examples: writing to a state controller before resetting it, or feeding
    input pulses before the polarity has been selected (see paper section
    5.2).
    """


class ConfigurationError(ReproError):
    """A component was built or configured with inconsistent parameters."""


class CapacityError(ReproError):
    """A workload does not fit the targeted hardware configuration.

    Raised, for example, when a neuron's membrane-state range would underflow
    or overflow the SC chain of an NPE and bucketing cannot bound it.
    """


class TrainingError(ReproError):
    """Gradient-based training could not proceed (bad shapes, NaNs, ...)."""
