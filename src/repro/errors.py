"""Exception hierarchy for the SUSHI reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConstraintViolationError(ReproError):
    """A pulse arrived closer to a previous pulse than an RSFQ cell allows.

    Raised only when the simulator runs in strict mode; otherwise violations
    are recorded on :attr:`repro.rsfq.simulator.Simulator.violations`.
    """


class ProtocolError(ReproError):
    """A control sequence violated the asynchronous neuron timing protocol.

    Examples: writing to a state controller before resetting it, or feeding
    input pulses before the polarity has been selected (see paper section
    5.2).
    """


class ConfigurationError(ReproError):
    """A component was built or configured with inconsistent parameters."""


class CapacityError(ReproError):
    """A workload does not fit the targeted hardware configuration.

    Raised, for example, when a neuron's membrane-state range would underflow
    or overflow the SC chain of an NPE and bucketing cannot bound it.
    """


class TrainingError(ReproError):
    """Gradient-based training could not proceed (bad shapes, NaNs, ...)."""


class FaultInjectionError(ReproError):
    """A fault model could not be constructed or applied.

    Raised when a :class:`repro.rsfq.faults.FaultSpec` is malformed (unknown
    kind, probability outside ``[0, 1]``, negative delay), when a spec
    targets cells or wires that do not exist in the netlist being bound, or
    when a fault configuration is incompatible with the engine it is
    attached to (e.g. fault injection combined with the legacy
    ``jitter_mode="global"`` stream, which is not reproducible under
    partitioned execution).
    """


class WorkerTimeoutError(ReproError):
    """A parallel simulation worker exceeded its per-round time budget.

    Raised by :class:`repro.rsfq.parallel.ParallelSimulator` when
    ``worker_timeout_s`` is set, a round's worker misses the deadline, and
    the simulator was configured with ``on_worker_timeout="raise"``.  With
    the default ``"fallback"`` policy the engine instead records the
    timeout and degrades to the sequential executor for the remaining
    rounds (see ``docs/FAULTS.md``).
    """


class TransportError(ReproError):
    """The network path to the gateway failed mid-request.

    Raised by :class:`repro.gateway.client.GatewayClient` when a
    request could not complete at the transport layer -- connection
    refused/reset, the socket timed out, or the peer closed the stream
    mid-response -- and the retry policy's attempts are exhausted.
    Carries ``category`` (``"timeout"`` or ``"conn_error"``) and
    ``attempts`` so callers and tests can assert *why* the request
    died, not just that it did.
    """

    def __init__(self, message: str, *, category: str = "conn_error",
                 attempts: int = 1):
        super().__init__(message)
        self.category = category
        self.attempts = attempts


class RetryBudgetExceededError(TransportError):
    """The client-wide retry budget ran dry before the request healed.

    Distinct from per-request attempt exhaustion: the budget is a
    lifetime pool of retry permits shared by every request a
    :class:`~repro.gateway.client.GatewayClient` sends, so a storm of
    failing requests degrades to fail-fast instead of retry-amplifying
    an already-unhealthy backend.
    """


class DeadlineExceededError(ReproError):
    """A wall-clock deadline lapsed before the work could run.

    Two layers raise it:

    * :meth:`repro.rsfq.simulator.Simulator.run` (and the partitioned
      engine's round loop) when the ``deadline_s`` guard runs out with
      events still pending.  Complements ``max_events``: the event guard
      bounds *logical* work, the deadline bounds *physical* time, so a
      pathologically slow (but not runaway) simulation cannot stall a
      batch runtime or campaign sweep.
    * The serving dispatcher, for requests submitted with a per-request
      ``deadline_ms`` that were still queued when the deadline lapsed:
      the request fails at dispatch time instead of burning a batch slot
      (counted as ``expired`` in
      :class:`repro.serve.metrics.ServerStats`).
    """
