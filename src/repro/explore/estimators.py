"""Pluggable estimator registry for the design-space explorer.

The paper's scaling claims (Table 2 / Fig. 13 resources, Fig. 17-style
accuracy/JJ/power/FPS trade-offs) are produced by *cost models*, and
SuperLoop-style exploration treats each model as a plug-in: a JJ-count
estimator, an area estimator, a power estimator -- and, crucially,
alternative *memory technologies* (VT-cell RAM, delay-line memory) as
drop-in replacements for the baseline NDRO crosspoint storage.

This module provides exactly that socket:

* :class:`Estimator` -- the protocol every plug-in implements: a
  ``name`` and an ``estimate(point, context)`` returning a flat metric
  dict.
* :func:`register_estimator` -- class decorator adding an estimator to
  the process-wide registry (:func:`get_estimator` /
  :func:`available_estimators` look it up).
* Built-ins wrapping the anchored models of :mod:`repro.resources`:
  ``resources`` (:func:`~repro.resources.estimate_resources`),
  ``power`` (:class:`~repro.resources.PowerModel`) and ``performance``
  (:class:`~repro.resources.PerformanceModel`).
* Memory-technology estimators (``memory-ndro``, ``memory-vt-ram``,
  ``memory-delay-line``): per-bit JJ/area/bias cost of the crosspoint
  weight store plus a relative reload-time scale.  The NDRO numbers
  come from the cell library (the storage the gate-level chip actually
  builds); the VT-cell and delay-line constants are *speculative
  sockets* -- plausible per-bit figures for the alternative
  superconducting memories surveyed by the SFQ design-space literature,
  kept behind the registry so a calibrated model can drop in without
  touching the driver.

Every estimate is a pure function of ``(point, context)``: no wall
clocks, no RNG -- a grid point's metrics are bit-stable across hosts,
processes and worker counts (the explorer's determinism contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.resources import PerformanceModel, PowerModel, estimate_resources
from repro.resources.power import BIAS_POWER_PER_JJ_NW
from repro.rsfq import library

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.grid import ExplorePoint

try:  # Protocol is typing_extensions-free from 3.8 on
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls


#: Registry prefix shared by every memory-technology estimator; the
#: driver resolves ``ExploreConfig.memory_technology`` ("ndro") to the
#: registered name ("memory-ndro") through it.
MEMORY_PREFIX = "memory-"


@dataclass(frozen=True)
class EstimateContext:
    """Workload-derived inputs shared by every estimator of one sweep.

    Attributes:
        max_strength: Largest crosspoint gain the swept network needs
            (drives the configurable-mesh resource estimate).
        with_weights: Estimate the fully-configurable mesh (True, the
            explorer's default -- deployable configurations need
            reloadable weights) or the fixed-weight mesh.
        synops_per_frame: Measured synaptic operations per inference
            frame (None before the accuracy evaluation ran, e.g. for
            infeasible points -- FPS is then omitted).
        reload_fraction: Share of inference time spent reloading
            crosspoints, already scaled by the memory technology's
            reload-time factor.
        utilisation: Input-sparsity derate for the FPS model.
    """

    max_strength: int = 1
    with_weights: bool = True
    synops_per_frame: Optional[float] = None
    reload_fraction: Optional[float] = None
    utilisation: float = 1.0


@runtime_checkable
class Estimator(Protocol):
    """The plug-in protocol: a named, pure metric estimator."""

    name: str

    def estimate(self, point: "ExplorePoint",
                 context: EstimateContext) -> Dict[str, float]:
        """Flat metric dict for one grid point (pure, deterministic)."""
        ...  # pragma: no cover - protocol body


_REGISTRY: Dict[str, Estimator] = {}


def register_estimator(cls):
    """Class decorator: instantiate ``cls`` and add it to the registry.

    The class must carry a unique ``name`` attribute and implement the
    :class:`Estimator` protocol.  Returns the class unchanged so it can
    still be subclassed/instantiated directly.
    """
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"estimator {cls!r} needs a non-empty string 'name'"
        )
    if name in _REGISTRY:
        raise ConfigurationError(
            f"estimator '{name}' is already registered"
        )
    instance = cls()
    if not callable(getattr(instance, "estimate", None)):
        raise ConfigurationError(
            f"estimator '{name}' does not implement estimate()"
        )
    _REGISTRY[name] = instance
    return cls


def get_estimator(name: str) -> Estimator:
    """Look a registered estimator up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown estimator '{name}'; available: "
            f"{available_estimators()}"
        ) from None


def available_estimators() -> List[str]:
    """Registered estimator names, sorted (stable for reports)."""
    return sorted(_REGISTRY)


def memory_technologies() -> List[str]:
    """The registered memory technologies (registry names minus the
    ``memory-`` prefix), sorted."""
    return sorted(
        name[len(MEMORY_PREFIX):] for name in _REGISTRY
        if name.startswith(MEMORY_PREFIX)
    )


# ---------------------------------------------------------------------------
# Built-ins: the anchored chip models
# ---------------------------------------------------------------------------

@register_estimator
class ResourceEstimator:
    """JJ and area counts via :func:`repro.resources.estimate_resources`
    (Table 2 / Fig. 13 calibration)."""

    name = "resources"

    def estimate(self, point, context: EstimateContext) -> Dict[str, float]:
        r = estimate_resources(
            point.mesh_n,
            sc_per_npe=point.sc_per_npe,
            max_strength=context.max_strength,
            with_weights=context.with_weights,
        )
        return {
            "total_jj": int(r.total_jj),
            "logic_jj": int(r.logic_jj),
            "wiring_jj": int(r.wiring_jj),
            "area_mm2": round(r.total_area_mm2, 4),
            "component_area_mm2": round(r.component_area_mm2, 4),
            "wiring_pct": round(100.0 * r.wiring_fraction, 2),
        }


@register_estimator
class PowerEstimator:
    """Static + peak dynamic power via
    :class:`repro.resources.PowerModel` (Fig. 20 calibration)."""

    name = "power"

    def estimate(self, point, context: EstimateContext) -> Dict[str, float]:
        model = PowerModel(estimate_resources(
            point.mesh_n,
            sc_per_npe=point.sc_per_npe,
            max_strength=context.max_strength,
            with_weights=context.with_weights,
        ))
        peak_rate = PerformanceModel(point.mesh_n).peak_sops()
        return {
            "static_mw": round(model.static_mw, 4),
            "power_mw": round(model.total_mw(peak_rate), 4),
        }


@register_estimator
class PerformanceEstimator:
    """Throughput/FPS via :class:`repro.resources.PerformanceModel`
    (Fig. 19/21 calibration).  FPS needs the workload's measured
    ``synops_per_frame``; without it (infeasible points) only the
    workload-independent figures are reported."""

    name = "performance"

    def estimate(self, point, context: EstimateContext) -> Dict[str, float]:
        model = PerformanceModel(point.mesh_n)
        metrics: Dict[str, float] = {
            "peak_gsops": round(model.peak_gsops(), 4),
            "efficiency": round(model.efficiency(), 6),
            "delay_share": round(model.transmission_delay_share(), 4),
        }
        if context.synops_per_frame:
            reload_fraction = min(
                0.95, max(0.0, context.reload_fraction or 0.0)
            )
            metrics["fps"] = round(model.fps(
                context.synops_per_frame,
                reload_fraction=reload_fraction,
                utilisation=context.utilisation,
            ), 3)
        return metrics


# ---------------------------------------------------------------------------
# Memory-technology sockets
# ---------------------------------------------------------------------------

class _MemoryTechnology:
    """Shared shape of the memory estimators: per-bit constants over the
    crosspoint weight store (``mesh_n^2 x max_strength`` thermometer
    bits, matching the gate-level weight structure)."""

    name = ""  # overridden by subclasses
    jj_per_bit = 0.0
    area_um2_per_bit = 0.0
    #: Relative reload time vs the NDRO baseline (1.0); the driver
    #: scales the measured reload fraction by it, so slow memories
    #: depress FPS and fast ones raise it.
    reload_scale = 1.0

    def estimate(self, point, context: EstimateContext) -> Dict[str, float]:
        bits = point.mesh_n * point.mesh_n * max(1, context.max_strength)
        jj = int(round(bits * self.jj_per_bit))
        return {
            "memory_bits": int(bits),
            "memory_jj": jj,
            "memory_area_mm2": round(
                bits * self.area_um2_per_bit * 1e-6, 6
            ),
            "memory_power_mw": round(
                jj * BIAS_POWER_PER_JJ_NW * 1e-6, 6
            ),
            "memory_reload_scale": self.reload_scale,
        }


@register_estimator
class NdroMemoryEstimator(_MemoryTechnology):
    """The baseline: one NDRO cell per thermometer bit -- the storage
    the gate-level chip actually instantiates (and the resource model
    already counts inside ``logic_jj``)."""

    name = MEMORY_PREFIX + "ndro"
    jj_per_bit = float(library.NDRO.JJ_COUNT)
    area_um2_per_bit = float(library.NDRO.AREA_UM2)
    reload_scale = 1.0


@register_estimator
class VtRamMemoryEstimator(_MemoryTechnology):
    """VT-cell (vortex-transitional) RAM socket: denser and fewer JJs
    per bit than NDRO, slightly faster reload.  Speculative constants --
    a calibrated model drops in by re-registering this name."""

    name = MEMORY_PREFIX + "vt-ram"
    jj_per_bit = 6.0
    area_um2_per_bit = 2100.0
    reload_scale = 0.6


@register_estimator
class DelayLineMemoryEstimator(_MemoryTechnology):
    """Delay-line (circulating-pulse) memory socket: very few active
    JJs but long passive lines (area) and serial recirculation (slow
    reload).  Speculative constants, same caveat as VT-cell RAM."""

    name = MEMORY_PREFIX + "delay-line"
    jj_per_bit = 2.0
    area_um2_per_bit = 5200.0
    reload_scale = 1.8
