"""Parallel memoized design-space explorer (``python -m repro explore``).

Sweeps the chip/compiler configuration grid (NPE count, SC per NPE,
bit-slice width, bucketing policy) through the pluggable estimator
registry, memoizes completed points content-addressed in the
:class:`~repro.ssnn.compile.PlanCache`, and extracts the Pareto
frontier over accuracy / FPS / junction count / power.

See ``docs/EXPLORER.md`` for the registry protocol, the grid schema,
the Pareto semantics and the cache behaviour.
"""

from repro.explore.estimators import (
    EstimateContext,
    Estimator,
    available_estimators,
    get_estimator,
    memory_technologies,
    register_estimator,
)
from repro.explore.grid import (
    BUCKETING_POLICIES,
    EXPLORE_KIND,
    EXPLORE_SCHEMA,
    ExploreGrid,
    ExplorePoint,
    point_fingerprint,
)
from repro.explore.pareto import PARETO_AXES, dominates, pareto_frontier
from repro.explore.driver import (
    ExploreConfig,
    ExploreCounters,
    ExploreWorkload,
    GLOBAL_EXPLORE_COUNTERS,
    build_workload,
    evaluate_point,
    explore_counter_families,
    pinned_digest,
    pinned_view,
    render_report,
    run_explore,
)

__all__ = [
    "BUCKETING_POLICIES",
    "EXPLORE_KIND",
    "EXPLORE_SCHEMA",
    "EstimateContext",
    "Estimator",
    "ExploreConfig",
    "ExploreCounters",
    "ExploreGrid",
    "ExplorePoint",
    "ExploreWorkload",
    "GLOBAL_EXPLORE_COUNTERS",
    "PARETO_AXES",
    "available_estimators",
    "build_workload",
    "dominates",
    "evaluate_point",
    "explore_counter_families",
    "get_estimator",
    "memory_technologies",
    "pareto_frontier",
    "pinned_digest",
    "pinned_view",
    "point_fingerprint",
    "register_estimator",
    "render_report",
    "run_explore",
]
