"""Parallel memoized design-space sweeps (the explorer's engine room).

``run_explore`` turns an :class:`~repro.explore.grid.ExploreGrid` into a
``repro.explore/v1`` report:

1. **Workload** -- a deterministic binarized network + spike-row block
   (seeded, content-fingerprinted).  Reference predictions come from the
   ideal (unconstrained) network forward once per sweep.
2. **Memoization** -- every grid point is content-addressed
   (:func:`~repro.explore.grid.point_fingerprint`) and completed points
   are stored in the shared :class:`~repro.ssnn.compile.PlanCache`
   under the :data:`~repro.explore.grid.EXPLORE_KIND` namespace.  A
   re-run or a widened grid pays only for the delta; cache traffic is
   parent-side only, so hit/miss counts are exact and deterministic.
3. **Fan-out** -- uncached points evaluate on a process pool
   (``workers >= 2``); each worker receives the pickled workload once
   at start-up (the initializer idiom of :mod:`repro.ssnn.pool`'s
   ancestors) and per-point tasks are just coordinates.  Results are
   re-assembled in grid order, so serial and parallel sweeps are
   bit-identical.  A broken pool degrades to inline evaluation.
4. **Accuracy** rides the compiled SSNN path:
   :func:`~repro.ssnn.compile.compile_network` (through the plan cache
   when one is given -- points sharing a ``(slice_width, sc,
   bucketing)`` compilation hit the same plan) and
   :meth:`~repro.ssnn.compile.CompiledNetwork.forward_rows`.  Points
   whose capacity check fails are recorded *infeasible* (the SuperSNN
   realizability axis) and keep their resource/power estimates.
5. **Gate-level probe** -- per unique NPE count, the transmission
   latency of a mesh-scale JTL line is measured through
   :class:`~repro.rsfq.trace.TraceEngine` (recorded once, replayed from
   the trace cache on warm sweeps); fallbacks are counted and exported.
6. **Pareto extraction** -- :func:`~repro.explore.pareto
   .pareto_frontier` over the feasible points.

Everything pinned by :func:`pinned_view` is a pure function of the
config -- independent of worker count, cache warmth, host and wall
clock (asserted by ``tests/explore/`` and gated by
``benchmarks/test_explore_speedup.py``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.explore.estimators import (
    EstimateContext,
    MEMORY_PREFIX,
    get_estimator,
    memory_technologies,
)
from repro.explore.grid import (
    EXPLORE_KIND,
    EXPLORE_SCHEMA,
    EXPLORE_SCHEMA_VERSION,
    ExploreGrid,
    ExplorePoint,
    point_fingerprint,
)
from repro.explore.pareto import PARETO_AXES, pareto_frontier
from repro.harness.campaign import build_reference_pipeline
from repro.harness.differential import (
    random_binarized_network,
    random_spike_trains,
)
from repro.harness.reporting import format_table
from repro.snn.binarize import BinarizedNetwork
from repro.ssnn.compile import (
    PlanCache,
    compile_network,
    resolve_plan_cache,
)

__all__ = [
    "ExploreConfig",
    "ExploreWorkload",
    "ExploreCounters",
    "GLOBAL_EXPLORE_COUNTERS",
    "explore_counter_families",
    "build_workload",
    "evaluate_point",
    "run_explore",
    "pinned_view",
    "pinned_digest",
    "render_report",
]


# -- sweep counters ----------------------------------------------------------


class ExploreCounters:
    """Thread-safe sweep counters (Prometheus-exported).

    One process-wide instance (:data:`GLOBAL_EXPLORE_COUNTERS`)
    aggregates across every sweep, mirroring the
    :class:`~repro.rsfq.trace.TraceCounters` idiom.
    """

    FIELDS = ("sweeps", "points_requested", "points_evaluated",
              "point_cache_hits", "point_cache_misses",
              "infeasible_points", "trace_probe_replays",
              "trace_probe_fallbacks")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] += n

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for name in self.FIELDS:
                self._counts[name] = 0


#: Process-wide totals scraped by the gateway ``/metrics`` endpoint.
GLOBAL_EXPLORE_COUNTERS = ExploreCounters()

_COUNTER_HELP = {
    "sweeps": "Design-space sweeps executed",
    "points_requested": "Grid points requested across all sweeps",
    "points_evaluated": "Grid points evaluated (cache misses)",
    "point_cache_hits": "Grid points served from the explore-point cache",
    "point_cache_misses": "Explore-point cache lookups that missed",
    "infeasible_points": "Grid points rejected by the capacity check",
    "trace_probe_replays": "Mesh latency probes served by trace replay",
    "trace_probe_fallbacks":
        "Mesh latency probes that fell back to the event engine",
}


def explore_counter_families(counters: Optional[ExploreCounters] = None,
                             namespace: str = "sushi"):
    """The explorer counters as Prometheus metric families (the shape
    :func:`repro.serve.metrics.render_prometheus` consumes)."""
    snap = (GLOBAL_EXPLORE_COUNTERS if counters is None else counters
            ).snapshot()
    return [
        (f"{namespace}_explore_{name}_total", "counter",
         _COUNTER_HELP[name], [(None, snap[name])])
        for name in ExploreCounters.FIELDS
    ]


# -- configuration and workload ----------------------------------------------


@dataclass(frozen=True)
class ExploreConfig:
    """One sweep's grid, workload recipe and execution knobs.

    Only ``workers`` and the cache are execution details; everything
    else participates in the pinned report.  ``workload_sc`` is the SC
    count the random network is drawn *safe for* -- grid points with
    fewer SCs will typically be infeasible (the realizability axis).
    """

    grid: ExploreGrid = field(default_factory=ExploreGrid)
    seed: int = 2026
    sizes: Tuple[int, ...] = (96, 64, 10)
    steps: int = 2
    frames: int = 32
    workload_sc: int = 8
    spike_rate: float = 0.4
    memory_technology: str = "ndro"
    estimators: Tuple[str, ...] = ("resources", "power", "performance")
    probe_pulses: int = 4
    workers: int = 0

    def __post_init__(self):
        if self.steps < 1 or self.frames < 1:
            raise ConfigurationError("steps and frames must be >= 1")
        if len(self.sizes) < 2:
            raise ConfigurationError("sizes needs input and output")
        if self.memory_technology not in memory_technologies():
            raise ConfigurationError(
                f"unknown memory technology "
                f"'{self.memory_technology}'; available: "
                f"{memory_technologies()}"
            )
        for name in self.estimators:
            get_estimator(name)  # raises on unknown names
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.probe_pulses < 1:
            raise ConfigurationError("probe_pulses must be >= 1")

    @classmethod
    def quick(cls, workers: int = 0) -> "ExploreConfig":
        """The CI smoke grid: 8 points, sub-second cold."""
        return cls(
            grid=ExploreGrid(
                npe_counts=(8, 16),
                sc_per_npe=(4, 8, 10),
                slice_widths=(4,),
                bucketing=("reordered", "naive"),
            ),
            sizes=(32, 24, 8),
            frames=16,
            workers=workers,
        )

    @property
    def memory_estimator(self) -> str:
        return MEMORY_PREFIX + self.memory_technology


@dataclass(frozen=True)
class ExploreWorkload:
    """The sweep's fixed evaluation workload (built once, shipped to
    workers once)."""

    network: BinarizedNetwork
    rows: np.ndarray           # (steps * frames, in_features)
    steps: int
    frames: int
    reference_labels: np.ndarray  # (frames,) ideal-forward argmax
    fingerprint: str
    max_strength: int
    utilisation: float

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "layers": [list(l.signed_weights.shape)
                       for l in self.network.layers],
            "steps": self.steps,
            "frames": self.frames,
            "max_strength": self.max_strength,
            "utilisation": self.utilisation,
        }


def _reference_labels(network: BinarizedNetwork, rows: np.ndarray,
                      steps: int, frames: int) -> np.ndarray:
    """Ideal-forward predictions: per-frame argmax of output decisions
    accumulated over time steps (no capacity limit, no bucketing)."""
    current = rows
    for layer in network.layers:
        current = layer.forward(current)
    spikes = np.asarray(current, dtype=np.float64)
    per_frame = spikes.reshape(steps, frames, -1).sum(axis=0)
    return per_frame.argmax(axis=1).astype(np.int64)


def build_workload(config: ExploreConfig) -> ExploreWorkload:
    """Materialise the deterministic workload described by ``config``."""
    rng = np.random.default_rng(config.seed)
    network = random_binarized_network(
        rng, sizes=config.sizes, sc_per_npe=config.workload_sc
    )
    trains = random_spike_trains(
        rng, config.steps, config.frames, config.sizes[0],
        rate=config.spike_rate,
    )
    rows = np.ascontiguousarray(
        trains.reshape(config.steps * config.frames, config.sizes[0])
    )
    digest = hashlib.sha256()
    digest.update(
        f"{EXPLORE_SCHEMA}/v{EXPLORE_SCHEMA_VERSION}|workload"
        f"|seed={config.seed}|steps={config.steps}"
        f"|frames={config.frames}|rate={config.spike_rate!r}".encode()
    )
    for layer in network.layers:
        digest.update(np.ascontiguousarray(
            layer.signed_weights, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(
            layer.thresholds, dtype=np.int64).tobytes())
    digest.update(rows.astype(np.uint8).tobytes())
    utilisation = float(rows.mean())
    return ExploreWorkload(
        network=network,
        rows=rows,
        steps=config.steps,
        frames=config.frames,
        reference_labels=_reference_labels(
            network, rows, config.steps, config.frames
        ),
        fingerprint=digest.hexdigest(),
        max_strength=max(
            layer.max_strength for layer in network.layers
        ),
        utilisation=utilisation,
    )


# -- point evaluation --------------------------------------------------------


def evaluate_point(
    point: ExplorePoint,
    workload: ExploreWorkload,
    config: ExploreConfig,
    plan_cache: Optional[PlanCache] = None,
) -> dict:
    """Evaluate one grid point into its report row (pure/deterministic:
    same inputs -> bit-identical row, on any host or process)."""
    memory = get_estimator(config.memory_estimator)
    ndro_baseline = get_estimator(MEMORY_PREFIX + "ndro")
    context = EstimateContext(
        max_strength=workload.max_strength,
        utilisation=workload.utilisation,
    )
    metrics: Dict[str, object] = {}
    for name in config.estimators:
        if name == "performance":
            continue  # needs the measured synops; runs below
        metrics.update(get_estimator(name).estimate(point, context))
    mem_metrics = memory.estimate(point, context)
    ndro_metrics = ndro_baseline.estimate(point, context)
    metrics.update(mem_metrics)

    feasible = True
    error: Optional[str] = None
    try:
        if plan_cache is not None:
            compiled = plan_cache.get_or_compile(
                workload.network, point.slice_width, point.sc_per_npe,
                reorder=point.reorder,
            )
        else:
            compiled = compile_network(
                workload.network, point.slice_width, point.sc_per_npe,
                reorder=point.reorder,
            )
    except CapacityError as exc:
        feasible = False
        error = str(exc)
        compiled = None

    synops_per_frame: Optional[float] = None
    reload_fraction: Optional[float] = None
    if compiled is not None:
        decisions, spurious, synops = compiled.forward_rows(workload.rows)
        per_frame = decisions.reshape(
            workload.steps, workload.frames, -1
        ).sum(axis=0)
        predictions = per_frame.argmax(axis=1).astype(np.int64)
        matches = int((predictions == workload.reference_labels).sum())
        synops_per_frame = synops / workload.frames
        reload_per_frame = (compiled.reload_events * workload.steps
                            * float(mem_metrics["memory_reload_scale"]))
        reload_fraction = min(0.95, reload_per_frame / (
            reload_per_frame + synops_per_frame
        )) if synops_per_frame > 0 else 0.0
        metrics.update({
            "accuracy": round(matches / workload.frames, 6),
            "spurious": int(spurious),
            "synops_per_frame": round(synops_per_frame, 3),
            "reload_fraction": round(reload_fraction, 6),
            "pass_count": int(compiled.pass_count),
            "reload_events": int(compiled.reload_events),
            "reload_passes": int(compiled.reload_passes),
            "plan_fingerprint": compiled.fingerprint,
        })

    if "performance" in config.estimators:
        metrics.update(get_estimator("performance").estimate(
            point,
            EstimateContext(
                max_strength=workload.max_strength,
                synops_per_frame=synops_per_frame,
                reload_fraction=reload_fraction,
                utilisation=workload.utilisation,
            ),
        ))

    # Memory-technology-adjusted totals: swap the NDRO crosspoint store
    # (already inside the chip model's logic_jj) for the configured
    # technology's per-bit costs.
    if "total_jj" in metrics:
        metrics["total_jj_effective"] = int(
            metrics["total_jj"] + mem_metrics["memory_jj"]
            - ndro_metrics["memory_jj"]
        )
    if "power_mw" in metrics:
        metrics["power_mw_effective"] = round(
            metrics["power_mw"] + mem_metrics["memory_power_mw"]
            - ndro_metrics["memory_power_mw"], 4
        )

    return {
        "key": point.key,
        "point": point.to_dict(),
        "feasible": feasible,
        "error": error,
        "metrics": metrics,
    }


# -- content-addressed point memoization -------------------------------------


def _store_point(plan_cache: PlanCache, fingerprint: str,
                 row: dict) -> None:
    """Persist one completed row (atomic tmp + rename, the PlanCache
    write discipline); persistence failures degrade silently."""
    payload = {
        "schema_version": EXPLORE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "row": row,
    }
    path = plan_cache.path_for(fingerprint, kind=EXPLORE_KIND)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer, meta=np.array(json.dumps(payload, sort_keys=True))
        )
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_bytes(buffer.getvalue())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink(missing_ok=True)
    except OSError:
        pass  # unwritable cache: the in-memory row still serves


def _load_point(plan_cache: PlanCache,
                fingerprint: str) -> Optional[dict]:
    """Load a memoized row; corrupt or stale entries are dropped and
    treated as misses (the cache can never poison a sweep)."""
    path = plan_cache.lookup(fingerprint, kind=EXPLORE_KIND)
    if path is None:
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = json.loads(str(data["meta"]))
        if (payload.get("schema_version") != EXPLORE_SCHEMA_VERSION
                or payload.get("fingerprint") != fingerprint):
            raise ConfigurationError("stale explore-point entry")
        return payload["row"]
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None


# -- gate-level mesh probes --------------------------------------------------


def measure_probe_latencies(
    npe_counts: Sequence[int],
    plan_cache: Optional[PlanCache],
    n_pulses: int,
    counters: ExploreCounters,
) -> Dict[int, float]:
    """Measured far-end latency (ps) of an ``npe_count``-stage JTL line
    per unique NPE count, through the traced engine: recorded once,
    served as a vectorized replay from the trace cache afterwards."""
    from repro.rsfq.trace import TraceEngine

    latencies: Dict[int, float] = {}
    for npe_count in sorted(set(npe_counts)):
        net, probe = build_reference_pipeline(npe_count)
        engine = TraceEngine(net, cache=plan_cache)
        first = next(iter(net.cells))
        stimuli = [(first, "din", 100.0 * k) for k in range(n_pulses)]
        episode = engine.run_episode((stimuli,))
        latencies[npe_count] = round(
            float(probe.times[0]) if probe.times
            else float(episode.final_time_ps), 4
        )
        counters.bump("trace_probe_replays", engine.stats["replays"])
        counters.bump("trace_probe_fallbacks", engine.stats["fallbacks"])
    return latencies


# -- process-pool fan-out ----------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(payload: bytes, cache_root: Optional[str]) -> None:
    """Pool initializer: unpickle the workload/config once per worker
    (the compile-once artifact is the only payload that ever crosses
    the process boundary by value)."""
    import pickle

    config, workload = pickle.loads(payload)
    _WORKER_STATE["config"] = config
    _WORKER_STATE["workload"] = workload
    _WORKER_STATE["plan_cache"] = (
        PlanCache(root=cache_root) if cache_root else None
    )


def _evaluate_remote(coords: Tuple[int, int, int, str]) -> dict:
    """Pool task: evaluate one point from its coordinates."""
    point = ExplorePoint(*coords)
    return evaluate_point(
        point, _WORKER_STATE["workload"], _WORKER_STATE["config"],
        plan_cache=_WORKER_STATE["plan_cache"],
    )


def _evaluate_pending(
    pending: List[ExplorePoint],
    workload: ExploreWorkload,
    config: ExploreConfig,
    plan_cache: Optional[PlanCache],
) -> Dict[str, dict]:
    """Evaluate the uncached points, fanning out when ``workers >= 2``;
    a broken pool degrades to inline evaluation of whatever is left."""
    results: Dict[str, dict] = {}
    remaining = list(pending)
    if config.workers >= 2 and len(remaining) > 1:
        import pickle

        payload = pickle.dumps((config, workload))
        root = str(plan_cache.root) if plan_cache is not None else None
        try:
            with ProcessPoolExecutor(
                max_workers=min(config.workers, len(remaining)),
                initializer=_init_worker,
                initargs=(payload, root),
            ) as pool:
                for row in pool.map(
                    _evaluate_remote,
                    [(p.npe_count, p.sc_per_npe, p.slice_width,
                      p.bucketing) for p in remaining],
                ):
                    results[row["key"]] = row
                remaining = []
        except Exception:
            pass  # BrokenProcessPool / pickling trouble: finish inline
    for point in remaining:
        if point.key not in results:
            row = evaluate_point(
                point, workload, config, plan_cache=plan_cache
            )
            results[row["key"]] = row
    return results


# -- the sweep ---------------------------------------------------------------


def run_explore(
    config: ExploreConfig = ExploreConfig(),
    plan_cache: Union[str, PlanCache, None] = None,
    counters: Optional[ExploreCounters] = None,
) -> dict:
    """Run one sweep and return the ``repro.explore/v1`` report.

    ``plan_cache`` follows the serving stack's convention (``None`` |
    ``"default"`` | a :class:`PlanCache`); when given it serves both
    the compiled-plan/trace caches *and* the explore-point memoization.
    """
    counters = GLOBAL_EXPLORE_COUNTERS if counters is None else counters
    cache = resolve_plan_cache(plan_cache)
    started = time.monotonic()
    workload = build_workload(config)
    points = config.grid.points()
    counters.bump("sweeps")
    counters.bump("points_requested", len(points))

    probe_latencies = measure_probe_latencies(
        [p.npe_count for p in points], cache, config.probe_pulses,
        counters,
    )

    fingerprints = {
        point.key: point_fingerprint(
            point, workload.fingerprint, config.memory_technology,
            config.estimators,
        )
        for point in points
    }
    rows: Dict[str, dict] = {}
    pending: List[ExplorePoint] = []
    for point in points:
        cached = (_load_point(cache, fingerprints[point.key])
                  if cache is not None else None)
        if cached is not None:
            rows[point.key] = cached
            counters.bump("point_cache_hits")
        else:
            pending.append(point)
            if cache is not None:
                counters.bump("point_cache_misses")
    cache_hits = len(points) - len(pending)

    evaluated = _evaluate_pending(pending, workload, config, cache)
    counters.bump("points_evaluated", len(evaluated))
    for key, row in evaluated.items():
        rows[key] = row
        if cache is not None:
            _store_point(cache, fingerprints[key], row)

    ordered = []
    for point in points:
        row = rows[point.key]
        row["metrics"]["probe_latency_ps"] = probe_latencies[
            point.npe_count
        ]
        ordered.append(row)
    infeasible = sum(1 for row in ordered if not row["feasible"])
    counters.bump("infeasible_points",
                  sum(1 for p in pending
                      if not rows[p.key]["feasible"]))
    frontier = pareto_frontier(ordered)

    return {
        "schema": EXPLORE_SCHEMA,
        "config": {
            "grid": config.grid.to_dict(),
            "seed": config.seed,
            "sizes": list(config.sizes),
            "steps": config.steps,
            "frames": config.frames,
            "workload_sc": config.workload_sc,
            "spike_rate": config.spike_rate,
            "memory_technology": config.memory_technology,
            "estimators": list(config.estimators),
        },
        "workload": workload.to_dict(),
        "points": ordered,
        "pareto": [row["key"] for row in frontier],
        "pareto_axes": [list(axis) for axis in PARETO_AXES],
        "counters": {
            "points_total": len(points),
            "point_cache_hits": cache_hits,
            "points_evaluated": len(evaluated),
            "infeasible_points": infeasible,
        },
        "timing": {  # informational: never pinned, never asserted
            "wall_s": round(time.monotonic() - started, 6),
            "workers": config.workers,
            "cached": cache is not None,
        },
    }


# -- report views ------------------------------------------------------------


def pinned_view(report: dict) -> dict:
    """The deterministic subset of a report: everything except wall
    clocks and cache/executor provenance.  Serial and parallel sweeps
    of one config must produce *bit-identical* pinned views (asserted
    by tests and the benchmark gate)."""
    return {
        "schema": report["schema"],
        "config": report["config"],
        "workload": report["workload"],
        "points": report["points"],
        "pareto": report["pareto"],
        "pareto_axes": report["pareto_axes"],
        "infeasible_points": report["counters"]["infeasible_points"],
    }


def pinned_digest(report: dict) -> str:
    """SHA-256 over the canonical JSON of the pinned view (the single
    drift sentinel committed in ``BENCH_explore.json``)."""
    canonical = json.dumps(
        pinned_view(report), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def render_report(report: dict) -> str:
    """ASCII rendering: the full grid table plus the Pareto frontier."""
    table_rows = []
    pareto = set(report["pareto"])
    for row in report["points"]:
        metrics = row["metrics"]
        table_rows.append({
            "point": row["key"],
            "ok": "yes" if row["feasible"] else "CAP",
            "jj": metrics.get("total_jj_effective", "-"),
            "power_mw": metrics.get("power_mw_effective", "-"),
            "fps": metrics.get("fps", "-"),
            "acc": metrics.get("accuracy", "-"),
            "spur": metrics.get("spurious", "-"),
            "passes": metrics.get("pass_count", "-"),
            "reloads": metrics.get("reload_events", "-"),
            "lat_ps": metrics.get("probe_latency_ps", "-"),
            "pareto": "*" if row["key"] in pareto else "",
        })
    cfg = report["config"]
    text = format_table(
        table_rows,
        title=(
            f"design-space sweep: {len(table_rows)} points, workload "
            f"{'x'.join(str(s) for s in cfg['sizes'])} "
            f"({cfg['memory_technology']} memory)"
        ),
    )
    axes = ", ".join(
        f"{key}({direction})" for key, direction in report["pareto_axes"]
    )
    text += (
        f"\n\nPareto frontier over {axes}:\n  "
        + ("\n  ".join(report["pareto"]) if report["pareto"]
           else "(empty)")
    )
    counters = report["counters"]
    text += (
        f"\n\npoints: {counters['points_total']} total, "
        f"{counters['point_cache_hits']} cached, "
        f"{counters['points_evaluated']} evaluated, "
        f"{counters['infeasible_points']} infeasible"
    )
    return text
