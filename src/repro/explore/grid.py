"""The explorer's sweep grid: explicit, validated, content-addressed.

A sweep enumerates :class:`ExplorePoint` s over four axes -- the axes of
the paper's own scaling studies plus the compilation knobs the SSNN
stack exposes:

* **NPE count** (hardware scale; ``npe_count = 2 * mesh_n``, so the
  paper's 16x16 mesh is the 32-NPE point);
* **SC per NPE** (membrane capacity ``2**sc_per_npe`` -- the
  realizability axis: a network whose worst-case counter range exceeds
  it cannot stream safely and the point is *infeasible*);
* **bit-slice width** (the mesh width the compiler slices layers onto;
  at most the hardware mesh width -- narrower widths under-use the mesh
  but cut reload cost per pass);
* **bucketing policy** (``reordered`` vs ``naive`` streaming order, the
  paper's section 5.2 optimisation -- the accuracy axis).

Grid points are content-addressed: :func:`point_fingerprint` hashes the
schema version, the workload fingerprint, the point coordinates and the
estimator/memory configuration, so a completed point memoized in the
:class:`~repro.ssnn.compile.PlanCache` (under :data:`EXPLORE_KIND`) is
reusable exactly when re-evaluating it would reproduce it bit-for-bit.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

#: Report schema identifier (the ``repro.campaign/v1`` convention).
EXPLORE_SCHEMA = "repro.explore/v1"

#: Artifact-kind namespace of memoized explore points in a
#: :class:`~repro.ssnn.compile.PlanCache` root (SSNN plans use
#: ``ssnn-plan``, RSFQ traces ``rsfq-trace``).
EXPLORE_KIND = "explore-point"

#: Bump to invalidate every memoized point (metric semantics changes).
EXPLORE_SCHEMA_VERSION = 1

#: The streaming-order policies of :mod:`repro.ssnn.bucketing`.
BUCKETING_POLICIES = ("reordered", "naive")


@dataclass(frozen=True, order=True)
class ExplorePoint:
    """One configuration of the sweep grid.

    Ordering is lexicographic over the coordinates, which fixes the
    report order regardless of evaluation order (serial, pool, cache).
    """

    npe_count: int
    sc_per_npe: int
    slice_width: int
    bucketing: str

    def __post_init__(self):
        if self.npe_count < 2 or self.npe_count % 2:
            raise ConfigurationError(
                f"npe_count must be a positive even number "
                f"(2 per mesh row/column pair), got {self.npe_count}"
            )
        if self.sc_per_npe < 1:
            raise ConfigurationError("sc_per_npe must be >= 1")
        if not 1 <= self.slice_width <= self.mesh_n:
            raise ConfigurationError(
                f"slice_width must be in [1, mesh_n={self.mesh_n}], "
                f"got {self.slice_width}"
            )
        if self.bucketing not in BUCKETING_POLICIES:
            raise ConfigurationError(
                f"unknown bucketing policy '{self.bucketing}'; "
                f"available: {BUCKETING_POLICIES}"
            )

    @property
    def mesh_n(self) -> int:
        """Hardware mesh size (``n`` of the ``n x n`` crosspoint array)."""
        return self.npe_count // 2

    @property
    def reorder(self) -> bool:
        """The compiler's ``reorder`` flag for this bucketing policy."""
        return self.bucketing == "reordered"

    @property
    def key(self) -> str:
        """Stable human-readable identity used throughout reports."""
        return (f"npe{self.npe_count}-sc{self.sc_per_npe}"
                f"-w{self.slice_width}-{self.bucketing}")

    def to_dict(self) -> dict:
        return {
            "npe_count": self.npe_count,
            "mesh_n": self.mesh_n,
            "sc_per_npe": self.sc_per_npe,
            "slice_width": self.slice_width,
            "bucketing": self.bucketing,
        }


@dataclass(frozen=True)
class ExploreGrid:
    """The cartesian sweep specification.

    ``points()`` is the cartesian product of the four axes *minus*
    structurally impossible combinations (a slice width wider than the
    mesh), in lexicographic order.  Axes are deduplicated and sorted at
    construction, so two grids describing the same set compare equal
    and fingerprint identically.
    """

    npe_counts: Tuple[int, ...] = (8, 16, 32)
    sc_per_npe: Tuple[int, ...] = (5, 8, 10)
    slice_widths: Tuple[int, ...] = (4, 8, 16)
    bucketing: Tuple[str, ...] = BUCKETING_POLICIES

    def __post_init__(self):
        for axis in ("npe_counts", "sc_per_npe", "slice_widths",
                     "bucketing"):
            values = getattr(self, axis)
            if not values:
                raise ConfigurationError(f"grid axis {axis} is empty")
            object.__setattr__(
                self, axis, tuple(sorted(set(values)))
            )
        widest_mesh = max(self.npe_counts) // 2
        if min(self.slice_widths) > widest_mesh:
            raise ConfigurationError(
                f"no slice width fits the widest mesh "
                f"(n={widest_mesh}); narrow the slice_widths axis"
            )

    def points(self) -> Tuple[ExplorePoint, ...]:
        """Every valid grid point, lexicographically ordered."""
        out = []
        for npe, sc, width, policy in itertools.product(
            self.npe_counts, self.sc_per_npe, self.slice_widths,
            self.bucketing,
        ):
            if width > npe // 2:
                continue  # slice wider than the mesh: impossible
            out.append(ExplorePoint(npe, sc, width, policy))
        return tuple(sorted(out))

    def to_dict(self) -> dict:
        return {
            "npe_counts": list(self.npe_counts),
            "sc_per_npe": list(self.sc_per_npe),
            "slice_widths": list(self.slice_widths),
            "bucketing": list(self.bucketing),
        }


def point_fingerprint(
    point: ExplorePoint,
    workload_fingerprint: str,
    memory_technology: str,
    estimators: Sequence[str],
) -> str:
    """Content address of one completed point.

    Any change to the point coordinates, the workload (network weights,
    rows, steps), the memory technology, the estimator set or the
    explore schema version produces a new key -- the memoization
    invalidation rule, in full.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{EXPLORE_SCHEMA}/v{EXPLORE_SCHEMA_VERSION}"
        f"|workload={workload_fingerprint}"
        f"|mem={memory_technology}"
        f"|est={','.join(sorted(estimators))}"
        f"|{point.key}".encode()
    )
    return digest.hexdigest()
