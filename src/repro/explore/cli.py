"""``python -m repro explore`` -- run a design-space sweep.

Examples::

    python -m repro explore --quick            # CI smoke grid
    python -m repro explore --workers 4        # full grid, 4-way pool
    python -m repro explore --memory vt-ram --json report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    from repro.explore.estimators import memory_technologies

    parser = argparse.ArgumentParser(
        prog="repro explore",
        description=(
            "Sweep NPE count x SC-per-NPE x slice width x bucketing, "
            "memoizing completed points in the plan cache, and report "
            "the Pareto frontier (accuracy / FPS / JJ / power)."
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke grid (8 points, sub-second cold)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool width; 0 or 1 evaluates serially "
             "(default: 0)",
    )
    parser.add_argument(
        "--memory", default="ndro", choices=memory_technologies(),
        help="memory-technology estimator for the crosspoint store "
             "(default: ndro)",
    )
    parser.add_argument(
        "--seed", type=int, default=2026,
        help="workload seed (default: 2026)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the explore-point/plan cache (cold every run)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full repro.explore/v1 report as JSON "
             "('-' for stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.explore.driver import (
        ExploreConfig,
        pinned_digest,
        render_report,
        run_explore,
    )

    try:
        if args.quick:
            config = ExploreConfig.quick(workers=args.workers)
        else:
            config = ExploreConfig(workers=args.workers)
        if args.memory != config.memory_technology \
                or args.seed != config.seed:
            from dataclasses import replace

            config = replace(
                config, memory_technology=args.memory, seed=args.seed
            )
        report = run_explore(
            config,
            plan_cache=None if args.no_cache else "default",
        )
    except ReproError as exc:
        print(f"explore: error: {exc}", file=sys.stderr)
        return 2

    if args.json == "-":
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"report written to {args.json}")
        print(render_report(report))
        print(f"\npinned digest: {pinned_digest(report)}")
        print(f"wall: {report['timing']['wall_s']:.3f}s "
              f"(workers={report['timing']['workers']}, "
              f"cache={'on' if report['timing']['cached'] else 'off'})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    raise SystemExit(main())
