"""Pareto-frontier extraction over evaluated grid points.

The paper's Fig. 17-style trade-off curves are frontiers: for a fixed
workload, which configurations are *not dominated* on the joint
(accuracy, throughput, junction count, power) objective?  The explorer
reports exactly that set.

Semantics (documented, pinned by tests):

* Objectives: **maximize** ``accuracy`` and ``fps``, **minimize**
  ``total_jj_effective`` and ``power_mw_effective`` (the
  memory-technology-adjusted totals).
* Point ``a`` dominates ``b`` iff ``a`` is at least as good on every
  objective and strictly better on at least one.
* Only *feasible* points (those that compiled within the SC capacity)
  participate; infeasible points are realizability failures, not
  trade-offs.
* Duplicate metric vectors all survive (none dominates the other), so
  the frontier is deterministic without tie-break heuristics; output
  order is the grid's lexicographic point order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: ``(metric key, direction)`` of the frontier objective, in report
#: order.  Direction is "max" or "min".
PARETO_AXES: Tuple[Tuple[str, str], ...] = (
    ("accuracy", "max"),
    ("fps", "max"),
    ("total_jj_effective", "min"),
    ("power_mw_effective", "min"),
)


def _objective_vector(metrics: Dict[str, float]) -> List[float]:
    """The point's metrics as a maximize-everything vector."""
    vector = []
    for key, direction in PARETO_AXES:
        value = float(metrics[key])
        vector.append(value if direction == "max" else -value)
    return vector


def dominates(a: Dict[str, float], b: Dict[str, float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` on :data:`PARETO_AXES`."""
    va, vb = _objective_vector(a), _objective_vector(b)
    return all(x >= y for x, y in zip(va, vb)) and va != vb


def pareto_frontier(points: Sequence[dict]) -> List[dict]:
    """The non-dominated subset of ``points`` (entries are report rows
    whose ``metrics`` hold every :data:`PARETO_AXES` key), preserving
    input order.  Entries lacking an axis (infeasible points never got
    an FPS/accuracy measurement) are excluded."""
    eligible = [
        entry for entry in points
        if all(key in entry["metrics"] and entry["metrics"][key] is not None
               for key, _ in PARETO_AXES)
    ]
    frontier = []
    for candidate in eligible:
        if not any(
            dominates(other["metrics"], candidate["metrics"])
            for other in eligible if other is not candidate
        ):
            frontier.append(candidate)
    return frontier
