"""SSNN methodology: running binarized SNNs on SUSHI hardware.

Implements the paper's section 5 methods:

* :mod:`repro.ssnn.bucketing` -- synapse reordering and bucketing (5.1):
  inhibitory synapses stream first so the hardware's threshold-crossing
  firing equals the software final-sum decision, and state-range analysis
  bounds the SC-chain capacity a workload needs.
* :mod:`repro.ssnn.bitslice` -- the bit-slice SSNN method (5.3): slicing
  arbitrarily large layers over an n x n mesh using state preservation.
* :mod:`repro.ssnn.encoder` -- the encoding phase (Fig. 12): timed weight
  configuration and input pulse streams under the Table 1 constraints.
* :mod:`repro.ssnn.runtime` -- end-to-end inference against the behavioural
  chip (exact protocol) or a vectorised fast engine with identical
  semantics, plus the statistics the performance models consume.
* :mod:`repro.ssnn.compile` -- compile-once lowering to an immutable
  :class:`CompiledNetwork` (packed bucket matrices, reorder permutations,
  preload vectors, slice schedule, reload statistics) with a
  content-addressed on-disk :class:`PlanCache`.
* :mod:`repro.ssnn.pool` -- a persistent shared-memory
  :class:`InferencePool` executing one compiled plan across worker
  processes with zero per-call weight pickling (see docs/SERVING.md).
"""

from repro.ssnn.bucketing import (
    SynapseSchedule,
    build_schedule,
    hardware_layer_outputs,
    required_capacity,
)
from repro.ssnn.bitslice import BitSlicePlan, SliceTask, plan_network
from repro.ssnn.compile import (
    PLAN_KIND,
    CacheStats,
    CompiledLayer,
    CompiledNetwork,
    PlanCache,
    compile_network,
    default_cache,
    network_fingerprint,
    resolve_plan_cache,
)
from repro.ssnn.pool import (
    InferencePool,
    InferencePoolError,
    PoisonBatchError,
)
from repro.ssnn.encoder import EncodedInference, InferenceTiming, encode_inference
from repro.ssnn.profiler import LayerProfile, profile_network, profile_report
from repro.ssnn.reload_opt import optimize_plan, reload_reduction
from repro.ssnn.runtime import (
    RetryPolicy,
    RuntimeResult,
    SushiRuntime,
    perturb_spike_trains,
)
from repro.ssnn.verification import (
    VerificationReport,
    reconstruct_weights,
    verify_plan,
)

__all__ = [
    "SynapseSchedule",
    "build_schedule",
    "hardware_layer_outputs",
    "required_capacity",
    "BitSlicePlan",
    "SliceTask",
    "plan_network",
    "PLAN_KIND",
    "CacheStats",
    "CompiledLayer",
    "CompiledNetwork",
    "PlanCache",
    "compile_network",
    "default_cache",
    "network_fingerprint",
    "resolve_plan_cache",
    "InferencePool",
    "InferencePoolError",
    "PoisonBatchError",
    "EncodedInference",
    "InferenceTiming",
    "encode_inference",
    "optimize_plan",
    "reload_reduction",
    "LayerProfile",
    "profile_network",
    "profile_report",
    "RetryPolicy",
    "RuntimeResult",
    "SushiRuntime",
    "perturb_spike_trains",
    "VerificationReport",
    "reconstruct_weights",
    "verify_plan",
]
