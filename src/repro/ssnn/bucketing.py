"""Synapse reordering and bucketing (paper section 5.1).

The NPE fires the moment its counter overflows, so the *order* in which a
neuron's synaptic pulses arrive matters: if excitatory pulses stream before
inhibitory ones, the running membrane can transiently cross the threshold
and emit a premature spike even though the final sum is sub-threshold
("erroneous excitation").  The paper's fix:

1. **Reordering** -- stream all inhibitory synapses first (driving the
   membrane to its minimum), then all excitatory ones, so any threshold
   crossing happens last and is equivalent to the software final-sum
   decision.
2. **Bucketing** -- group synapses of one polarity into buckets so that the
   running range of the membrane stays inside the SC chain's ``2**n_sc``
   states (inhibition cannot underflow the counter).

:func:`hardware_layer_outputs` simulates the exact ripple-counter
semantics -- every change of ``floor(counter / capacity)`` along the pulse
stream is an output pulse (carry or borrow out of the last SC) -- and is the
vectorised equivalent of :class:`repro.neuro.chip.BehavioralChip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.snn.binarize import BinarizedLayer


@dataclass(frozen=True)
class Bucket:
    """A group of same-polarity synapse activations streamed together.

    Attributes:
        polarity: SET0 (inhibitory / down-count) or SET1 (excitatory).
        axons: Input indices streamed in this bucket, in order.
    """

    polarity: Polarity
    axons: Tuple[int, ...]


@dataclass
class SynapseSchedule:
    """Ordered buckets realising one layer's synapse traversal."""

    buckets: List[Bucket]
    reordered: bool

    def polarity_switches(self) -> int:
        """Number of polarity changes between adjacent buckets (each one is
        a set0/set1 reload on the column NPEs)."""
        switches = 0
        for a, b in zip(self.buckets, self.buckets[1:]):
            if a.polarity is not b.polarity:
                switches += 1
        return switches


def build_schedule(
    layer: BinarizedLayer,
    reorder: bool = True,
    bucket_size: int = 0,
) -> SynapseSchedule:
    """Build the synapse traversal order for a layer.

    With ``reorder=True`` (the paper's method) all axons participate in one
    inhibitory bucket followed by one excitatory bucket, optionally split
    into ``bucket_size`` chunks.  With ``reorder=False`` the naive order is
    produced: axons in index order, each contributing its negative then
    positive synapses (polarities interleave -- the erroneous-excitation
    regime used as the ablation baseline).
    """
    if bucket_size < 0:
        raise ConfigurationError("bucket_size must be >= 0 (0 = unsplit)")
    n_in = layer.in_features
    axons = list(range(n_in))
    buckets: List[Bucket] = []
    if reorder:
        groups = [axons] if bucket_size == 0 else [
            axons[i:i + bucket_size] for i in range(0, n_in, bucket_size)
        ]
        for polarity in (Polarity.SET0, Polarity.SET1):
            for group in groups:
                buckets.append(Bucket(polarity, tuple(group)))
    else:
        for axon in axons:
            buckets.append(Bucket(Polarity.SET0, (axon,)))
            buckets.append(Bucket(Polarity.SET1, (axon,)))
    return SynapseSchedule(buckets=buckets, reordered=reorder)


def required_capacity(layer: BinarizedLayer) -> int:
    """States needed under reordered streaming: the worst-case neuron must
    hold ``threshold + total inhibitory strength`` states (the membrane
    floor is reached before any excitation arrives)."""
    negative = np.minimum(layer.signed_weights, 0)
    worst_inhibition = int(-negative.sum(axis=0).min(initial=0))
    return int(layer.thresholds.max()) + worst_inhibition


def check_capacity(layer: BinarizedLayer, n_sc: int) -> None:
    """Raise :class:`CapacityError` when a layer cannot stream safely on an
    ``n_sc``-SC NPE under reordered bucketing."""
    need = required_capacity(layer)
    capacity = 1 << n_sc
    if need > capacity:
        raise CapacityError(
            f"layer needs {need} membrane states but {n_sc} SCs provide "
            f"only {capacity}; use more SCs or tighter bucketing"
        )


def hardware_layer_outputs(
    layer: BinarizedLayer,
    spikes: np.ndarray,
    capacity: int,
    reorder: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ripple-counter semantics of one layer over a spike batch.

    Each neuron's counter starts at ``capacity - threshold``; synaptic
    pulses stream in schedule order; an output pulse is emitted whenever
    ``floor(counter_total / capacity)`` changes (carry or borrow escaping
    the SC chain).  Returns ``(spike_decisions, output_pulse_counts)``,
    both (batch, out) arrays; a neuron's decision is 1 when at least one
    output pulse escaped (the hardware read-out cannot distinguish genuine
    fires from underflow borrows).

    ``reorder=True`` streams inhibitory contributions first (the paper's
    ordering); ``reorder=False`` streams axons in index order with
    interleaved polarities (the ablation baseline).

    Implementation notes (batched execution): under reordering the counter
    moves *monotonically* within each polarity bucket, so the per-pulse
    floor-crossing count telescopes -- the crossings of a monotone segment
    equal ``|floor(end / capacity) - floor(start / capacity)|``.  The whole
    layer then reduces to two matmuls (inhibitory and excitatory column
    sums) instead of a ``(batch, 2 * in, out)`` cumsum cube, which is what
    makes the batched fast engine scale.  The naive interleaved order is
    genuinely non-monotone and keeps the exact pulse-by-pulse cube,
    evaluated in cache-sized chunks.
    """
    spikes = np.asarray(spikes)
    if spikes.ndim != 2 or spikes.shape[1] != layer.in_features:
        raise ConfigurationError(
            f"expected (batch, {layer.in_features}) spikes"
        )
    if capacity < 2:
        raise ConfigurationError("capacity must be >= 2")
    weights = layer.signed_weights  # (in, out)
    preload = capacity - layer.thresholds  # (out,)
    if reorder:
        # Counter trajectory: preload -> preload + neg (monotone down)
        # -> preload + neg + pos (monotone up).  The streaming order
        # within a bucket cannot change the crossing count.
        neg = spikes @ np.minimum(weights, 0)  # (batch, out), <= 0
        pos = spikes @ np.maximum(weights, 0)  # (batch, out), >= 0
        floor_q = np.floor_divide(preload[None, :] + neg, capacity)
        final_q = np.floor_divide(preload[None, :] + neg + pos, capacity)
        # The chain starts inside [0, capacity): quotient 0.
        crossings = np.abs(floor_q) + np.abs(final_q - floor_q)
        pulse_counts = crossings.astype(np.int64)
        decisions = (pulse_counts > 0).astype(np.float64)
        return decisions, pulse_counts
    batch = spikes.shape[0]
    decisions = np.zeros((batch, layer.out_features), dtype=np.float64)
    pulse_counts = np.zeros((batch, layer.out_features), dtype=np.int64)
    # Exact pulse-by-pulse semantics for the interleaved ablation order.
    # Process in cache-sized chunks: the (chunk, 2 * in, out) contribution
    # cube is the memory bottleneck, and large cubes fall off the cache
    # cliff, so target a modest working set per chunk.  The cube is
    # allocated once at the chunk size and reused across chunks (the
    # cumsum runs in place), and because the chain starts at quotient 0
    # the crossing count telescopes as ``|q_0| + sum |diff(q)|`` with no
    # concatenated copy of the cube.
    chunk = max(1, int(300_000 // max(1, 2 * weights.size)))
    n_in, n_out = weights.shape
    neg_w = np.minimum(weights, 0).astype(np.float64)  # (in, out)
    pos_w = np.maximum(weights, 0).astype(np.float64)
    ordered = np.empty(
        (min(chunk, batch), 2 * n_in, n_out), dtype=np.float64
    )
    spikes_f = spikes.astype(np.float64, copy=False)
    for start in range(0, batch, chunk):
        sub = spikes_f[start:start + chunk]  # (c, in)
        cube = ordered[:sub.shape[0]]
        # Per axon: negative part then positive part, axon order.
        np.multiply(sub[:, :, None], neg_w[None, :, :], out=cube[:, 0::2, :])
        np.multiply(sub[:, :, None], pos_w[None, :, :], out=cube[:, 1::2, :])
        running = np.cumsum(cube, axis=1, out=cube)
        running += preload[None, None, :]
        quotient = np.floor_divide(running, capacity, out=running)
        crossings = np.abs(quotient[:, 0, :])
        crossings += np.abs(np.diff(quotient, axis=1)).sum(axis=1)
        pulse_counts[start:start + chunk] = crossings
        decisions[start:start + chunk] = crossings > 0
    return decisions, pulse_counts


def premature_fire_count(
    layer: BinarizedLayer, spikes: np.ndarray, capacity: int
) -> int:
    """Number of (sample, neuron) pairs whose naive-order decision differs
    from the final-sum decision -- the erroneous excitations that
    reordering eliminates."""
    naive, _ = hardware_layer_outputs(layer, spikes, capacity, reorder=False)
    truth = layer.forward(spikes)
    return int((naive != truth).sum())
