"""End-to-end SSNN inference on SUSHI (paper Fig. 12 workflow).

Two execution engines share one semantics:

* ``engine="fast"`` -- vectorised ripple-counter simulation
  (:func:`repro.ssnn.bucketing.hardware_layer_outputs`): the whole
  ``(T, batch)`` test set is folded into one row block per layer, so the
  numpy kernels see thousands of independent rows at once instead of one
  time step at a time; used by the Table 3 benchmark.  An optional
  ``max_workers`` process pool shards the rows for multi-core runs.
* ``engine="behavioral"`` -- drives a
  :class:`repro.neuro.chip.BehavioralChip` through the full bit-slice
  protocol pass by pass: slow but protocol-exact, used to validate the fast
  engine and (in miniature) the gate-level chip.  One elaborated chip
  instance is reused (power-on reset) across the samples of a batch.

Both honour the ``reorder`` flag so the bucketing ablation
(section 4.2.2 / 5.1) can quantify the accuracy cost of naive synapse
ordering, and both are bit-identical to the per-sample reference loop
(:meth:`SushiRuntime.infer_per_sample`) -- the differential harness in
:mod:`repro.harness.differential` asserts exactly that.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, FaultInjectionError
from repro.neuro.chip import BehavioralChip, ChipConfig
from repro.rsfq.faults import FaultModel
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn.bitslice import BitSlicePlan, plan_network
from repro.ssnn.bucketing import hardware_layer_outputs
from repro.ssnn.compile import (
    CompiledNetwork,
    PlanCache,
    compile_network,
    resolve_plan_cache,
)


def _stable_seed(*parts) -> int:
    """Deterministic 64-bit seed from arbitrary parts (hash-randomisation
    proof, unlike :func:`hash`)."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def perturb_spike_trains(
    spike_trains: np.ndarray, faults: FaultModel, attempt: int
) -> Tuple[np.ndarray, int]:
    """Apply a :class:`~repro.rsfq.faults.FaultModel` at spike-train level.

    The runtime engines are functional models -- they do not move
    individual SFQ pulses -- so physical faults surface to them as
    corrupted spike trains: drops clear spikes, duplicates/escapes raise
    spurious ones, extra delay shifts a spike one step later, flux traps
    flip bits, and stuck cells silence whole input features.  Decisions
    draw from a deterministic stream derived from ``(model seed,
    attempt)``, so each retry attempt replays a *different but
    reproducible* transient-fault realisation -- the property the
    self-healing retry loop needs.

    Returns ``(perturbed trains, injected fault count)``.  When no spec
    has a positive probability the input is returned as-is (no copy, no
    RNG construction, ``injected=0``) -- the zero-probability
    configuration used by overhead benchmarks and campaign baselines
    must not pay for a full-array copy per attempt.
    """
    active_specs = [spec for spec in faults.specs if spec.probability > 0.0]
    if not active_specs:
        return np.asarray(spike_trains, dtype=np.float64), 0
    rng = np.random.default_rng(
        _stable_seed("sushi-runtime-faults", repr(faults.seed), attempt)
    )
    trains = np.array(spike_trains, dtype=np.float64, copy=True)
    injected = 0
    for spec in active_specs:
        p = spec.probability
        if spec.kind == "pulse_drop":
            mask = (trains > 0) & (rng.random(trains.shape) < p)
            injected += int(mask.sum())
            trains[mask] = 0.0
        elif spec.kind == "pulse_duplicate":
            mask = (trains == 0) & (rng.random(trains.shape) < p)
            injected += int(mask.sum())
            trains[mask] = 1.0
        elif spec.kind == "extra_delay":
            mask = (trains > 0) & (rng.random(trains.shape) < p)
            injected += int(mask.sum())
            trains[mask] = 0.0
            if trains.shape[0] > 1:
                shifted = np.zeros_like(trains)
                shifted[1:][mask[:-1]] = 1.0
                trains = np.maximum(trains, shifted)
        elif spec.kind == "flux_trap":
            mask = rng.random(trains.shape) < p
            injected += int(mask.sum())
            trains[mask] = 1.0 - trains[mask]
        elif spec.kind == "stuck_cell":
            cols = rng.random(trains.shape[2]) < p
            injected += int(cols.sum())
            trains[:, :, cols] = 0.0
    return trains, injected


@dataclass(frozen=True)
class RetryPolicy:
    """Self-healing policy for fault-afflicted inference.

    Attributes:
        max_retries: Re-run attempts (each with a fresh derived fault
            seed) after the first corrupted attempt, before falling back.
        fallback: When True (default), a run that stays corrupted through
            every retry degrades gracefully to fault-free semantics (and
            optionally another engine) instead of raising.
        fallback_engine: Engine for the degraded run (``None`` keeps the
            runtime's engine; ``"behavioral"`` selects the protocol-exact
            chip model -- the most conservative path).
    """

    max_retries: int = 3
    fallback: bool = True
    fallback_engine: Optional[str] = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.fallback_engine not in (None, "fast", "behavioral"):
            raise ConfigurationError(
                f"unknown fallback_engine '{self.fallback_engine}'; "
                "use None, 'fast' or 'behavioral'"
            )


def layer_activity(plan: BitSlicePlan, spike_trains: np.ndarray) -> List[np.ndarray]:
    """Input spike activity per layer: ``activity[l][t]`` is the (features,)
    input vector of layer ``l`` at time step ``t`` (single sample)."""
    if plan.network is None:
        raise ConfigurationError("plan carries no network reference")
    spike_trains = np.asarray(spike_trains, dtype=np.float64)
    activity = [spike_trains]
    current = spike_trains
    for layer in plan.network.layers:
        current = layer.forward(current)
        activity.append(current)
    return activity


def batch_layer_activity(
    plan: BitSlicePlan, spike_trains: np.ndarray
) -> List[np.ndarray]:
    """Batched :func:`layer_activity`: ``activity[l]`` is the
    ``(T, batch, features)`` input block of layer ``l``.  One vectorised
    forward pass per layer replaces the per-sample/per-step loops."""
    if plan.network is None:
        raise ConfigurationError("plan carries no network reference")
    spike_trains = np.asarray(spike_trains, dtype=np.float64)
    if spike_trains.ndim != 3:
        raise ConfigurationError("spike_trains must be (T, batch, features)")
    steps, batch, _ = spike_trains.shape
    activity = [spike_trains]
    current = spike_trains
    for layer in plan.network.layers:
        flat = layer.forward(current.reshape(steps * batch, -1))
        current = flat.reshape(steps, batch, layer.out_features)
        activity.append(current)
    return activity


def _fast_forward_rows(
    layers: Sequence[BinarizedLayer],
    rows: np.ndarray,
    capacity: int,
    reorder: bool,
) -> Tuple[np.ndarray, int, int]:
    """Push independent spike rows through the layer stack under exact
    ripple-counter semantics.

    Returns ``(decisions, spurious, synops)``.  Module-level (not a
    method) so process-pool workers can pickle it.  This is the
    *legacy* (pre-compile) kernel kept as the differential baseline;
    the serving path runs the fused
    :meth:`repro.ssnn.compile.CompiledNetwork.forward_rows` instead,
    which is bit-identical but folds the final-sum reference and the
    synops statistic into the two bucket matmuls.
    """
    current = rows
    spurious = 0
    synops = 0
    for layer in layers:
        decisions, _ = hardware_layer_outputs(
            layer, current, capacity, reorder=reorder
        )
        reference = layer.forward(current)
        spurious += int((decisions != reference).sum())
        synops += int((current @ (layer.signed_weights != 0)).sum())
        current = decisions
    return current, spurious, synops


# -- process-pool worker state (one-shot executor path) ----------------------
#
# The layer stack (or compiled plan) crosses the process boundary exactly
# once, through the executor's initializer, instead of being re-pickled
# with every mapped chunk as the interim implementation did.

_WORKER_STATE: dict = {}


def _init_fast_worker(layers, capacity, reorder) -> None:
    _WORKER_STATE["fast"] = (list(layers), capacity, reorder)


def _run_fast_chunk(chunk: np.ndarray) -> Tuple[np.ndarray, int, int]:
    layers, capacity, reorder = _WORKER_STATE["fast"]
    return _fast_forward_rows(layers, chunk, capacity, reorder)


def _init_compiled_worker(compiled: CompiledNetwork) -> None:
    _WORKER_STATE["compiled"] = compiled


def _run_compiled_chunk(chunk: np.ndarray) -> Tuple[np.ndarray, int, int]:
    return _WORKER_STATE["compiled"].forward_rows(chunk)


@dataclass
class RuntimeResult:
    """Outcome of a chip inference over a batch.

    Attributes:
        rates: (batch, classes) mean output spike rates.
        predictions: argmax labels.
        output_raster: (T, batch, classes) per-step output spikes.
        spurious_decisions: (sample, neuron, step) triples where the
            hardware decision differed from the final-sum reference
            (premature fires / underflows); empty under reordering with
            adequate capacity.
        synaptic_ops: Total synaptic operations executed.
        reload_events: Crosspoint reloads (behavioural engine) or the
            plan's static estimate (fast engine).
        attempts: Inference attempts executed (1 without faults; includes
            the fallback run when degradation engaged).
        degraded: True when the self-healing loop exhausted its retries
            and fell back to fault-free semantics.
        fault_injections: Spike-train faults injected across all
            attempts (0 without an attached fault model).
        recovery: Human-readable recovery trail -- one line per corrupted
            attempt plus the fallback decision (empty when the first
            attempt was clean).
    """

    rates: np.ndarray
    predictions: np.ndarray
    output_raster: np.ndarray
    spurious_decisions: int
    synaptic_ops: int
    reload_events: int
    attempts: int = 1
    degraded: bool = False
    fault_injections: int = 0
    recovery: Tuple[str, ...] = ()


class SushiRuntime:
    """Runs binarized networks on a SUSHI chip model.

    Args:
        chip_n: Mesh size of the target chip.
        sc_per_npe: SC-chain length (membrane states = ``2**sc_per_npe``).
        engine: ``"fast"`` (vectorised, batched) or ``"behavioral"``
            (protocol-exact chip model).
        reorder: Stream inhibitory synapses first (the paper's bucketing);
            ``False`` selects the naive-order ablation (fast engine only).
        max_workers: Fast engine only -- shard the row block across a
            worker pool of this size.  ``None``/``0``/``1`` run serially
            (the default; identical results either way, the pool only
            changes wall-clock time).  With ``persistent_workers=True``
            (default) the workers are a long-lived
            :class:`~repro.ssnn.pool.InferencePool`: spawned on first
            use, fed through shared memory, reused across ``infer``
            calls, released by :meth:`close` (or GC).
        persistent_workers: When False, fall back to a throwaway
            per-call ``ProcessPoolExecutor`` (the plan still crosses
            the process boundary only once, via the initializer).
        use_compiled: Execute the fast engine through the compile-once
            :class:`~repro.ssnn.compile.CompiledNetwork` artifact
            (default).  ``False`` selects the legacy per-layer kernel --
            bit-identical, kept as the differential baseline.
        plan_cache: ``"default"`` (share the process-wide on-disk
            :class:`~repro.ssnn.compile.PlanCache`), ``None`` (compile
            in memory only) or an explicit :class:`PlanCache`.
        faults: Optional :class:`~repro.rsfq.faults.FaultModel`.  When
            active, every :meth:`infer` runs the self-healing loop: the
            input spike trains are corrupted per the model
            (:func:`perturb_spike_trains`), the corrupted outcome is
            detected by behavioural disagreement against the clean
            software reference, and the runtime retries with fresh
            derived fault seeds before degrading gracefully (see
            ``retry_policy`` and ``docs/FAULTS.md``).
        retry_policy: :class:`RetryPolicy` governing the self-healing
            loop (defaults to ``RetryPolicy()``); ignored without an
            active fault model.

    Bit-slice plans are memoised per network object, so repeated
    ``infer`` calls against the same network skip re-planning.
    """

    def __init__(
        self,
        chip_n: int = 16,
        sc_per_npe: int = 10,
        engine: str = "fast",
        reorder: bool = True,
        max_workers: Optional[int] = None,
        faults: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        use_compiled: bool = True,
        plan_cache="default",
        persistent_workers: bool = True,
    ):
        if engine not in ("fast", "behavioral"):
            raise ConfigurationError(
                f"unknown engine '{engine}'; use 'fast' or 'behavioral'"
            )
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError("max_workers must be >= 0")
        self.chip_n = chip_n
        self.sc_per_npe = sc_per_npe
        self.engine = engine
        self.reorder = reorder
        self.max_workers = max_workers
        self.faults = faults
        self.retry_policy = retry_policy or RetryPolicy()
        self.use_compiled = use_compiled
        self.persistent_workers = persistent_workers
        self.plan_cache: Optional[PlanCache] = resolve_plan_cache(plan_cache)
        self._plan_cache: dict = {}
        self._compiled_memo: dict = {}
        self._pool = None  # lazily-built InferencePool (persistent workers)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the persistent worker pool (if one was spawned).
        Safe to call repeatedly; the runtime stays usable (a fresh pool
        is spawned on the next parallel dispatch)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "SushiRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ---------------------------------------------------------

    def infer(
        self, network: BinarizedNetwork, spike_trains: np.ndarray
    ) -> RuntimeResult:
        """Run inference on a (T, batch, in_features) binary spike train.

        The whole batch is dispatched at once; results are bit-identical
        to :meth:`infer_per_sample` (samples are independent under both
        engines -- the differential tests assert it).
        """
        spike_trains = self._validated(network, spike_trains)
        if self.faults is not None and self.faults.active:
            return self._infer_self_healing(network, spike_trains)
        return self._infer_engine(network, spike_trains)

    def _infer_engine(
        self, network, spike_trains, engine: Optional[str] = None
    ) -> RuntimeResult:
        """Dispatch one clean inference to the selected engine."""
        engine = engine or self.engine
        if engine == "fast":
            return self._infer_fast(network, spike_trains)
        return self._infer_behavioral(network, spike_trains)

    def _software_reference(self, network, spike_trains) -> np.ndarray:
        """Clean software raster (the corruption-detection oracle)."""
        steps, batch, _ = spike_trains.shape
        current = spike_trains.reshape(steps * batch, -1)
        for layer in network.layers:
            current = layer.forward(current)
        return current.reshape(steps, batch, network.out_features)

    def _infer_self_healing(self, network, spike_trains) -> RuntimeResult:
        """The retry/fallback state machine (see ``docs/FAULTS.md``).

        Each attempt corrupts the inputs per the fault model under a
        fresh derived seed (a new transient-fault realisation of the same
        physical hypothesis), runs the engine, and compares the output
        raster against the clean software reference.  A clean attempt is
        returned as-is; after ``max_retries`` corrupted attempts the
        policy either degrades gracefully to fault-free semantics
        (``degraded=True``, optionally on ``fallback_engine``) or raises
        :class:`~repro.errors.FaultInjectionError`.
        """
        policy = self.retry_policy
        reference = self._software_reference(network, spike_trains)
        recovery: List[str] = []
        total_injected = 0
        attempts = 0
        for attempt in range(1 + policy.max_retries):
            trains, injected = perturb_spike_trains(
                spike_trains, self.faults, attempt
            )
            result = self._infer_engine(network, trains)
            attempts += 1
            total_injected += injected
            mismatches = int((result.output_raster != reference).sum())
            if mismatches == 0:
                result.attempts = attempts
                result.fault_injections = total_injected
                result.recovery = tuple(recovery)
                return result
            recovery.append(
                f"attempt {attempts}: {injected} injected faults "
                f"corrupted {mismatches} output bits; "
                + ("retrying with a fresh fault seed"
                   if attempt < policy.max_retries
                   else "retry budget exhausted")
            )
        if not policy.fallback:
            raise FaultInjectionError(
                f"inference stayed corrupted after {attempts} attempts "
                f"({total_injected} faults injected) and the retry policy "
                "forbids fallback"
            )
        fallback_engine = policy.fallback_engine or self.engine
        result = self._infer_engine(
            network, spike_trains, engine=fallback_engine
        )
        attempts += 1
        recovery.append(
            f"fallback: degraded to fault-free '{fallback_engine}' "
            "semantics"
        )
        result.attempts = attempts
        result.degraded = True
        result.fault_injections = total_injected
        result.recovery = tuple(recovery)
        return result

    def infer_per_sample(
        self, network: BinarizedNetwork, spike_trains: np.ndarray
    ) -> RuntimeResult:
        """Reference path: run each sample through :meth:`infer` on its
        own and stitch the results back together.

        Slow by construction (no batching); exists as the oracle the
        batched dispatch is differentially tested against, and as the
        baseline of the batching benchmark.
        """
        spike_trains = self._validated(network, spike_trains)
        steps, batch, _ = spike_trains.shape
        raster = np.zeros((steps, batch, network.out_features))
        spurious = 0
        synops = 0
        reloads = 0
        for b in range(batch):
            single = self.infer(network, spike_trains[:, b:b + 1, :])
            raster[:, b, :] = single.output_raster[:, 0, :]
            spurious += single.spurious_decisions
            synops += single.synaptic_ops
            reloads += single.reload_events
        rates = raster.mean(axis=0) if steps else raster.sum(axis=0)
        return RuntimeResult(
            rates=rates,
            predictions=rates.argmax(axis=1),
            output_raster=raster,
            spurious_decisions=spurious,
            synaptic_ops=synops,
            reload_events=reloads,
        )

    # -- helpers ------------------------------------------------------------

    def _validated(self, network, spike_trains) -> np.ndarray:
        spike_trains = np.asarray(spike_trains, dtype=np.float64)
        if spike_trains.ndim != 3:
            raise ConfigurationError(
                "spike_trains must be (T, batch, in_features)"
            )
        if spike_trains.shape[2] != network.in_features:
            raise ConfigurationError(
                f"spike width {spike_trains.shape[2]} != network input "
                f"{network.in_features}"
            )
        return spike_trains

    def _plan_for(self, network: BinarizedNetwork) -> BitSlicePlan:
        """Memoised bit-slice plan per network object (id + liveness
        checked through a weak reference, so recycled ids cannot alias)."""
        key = id(network)
        cached = self._plan_cache.get(key)
        if cached is not None and cached[0]() is network:
            return cached[1]
        plan = plan_network(network, self.chip_n, self.sc_per_npe)
        # Prune entries whose networks have been collected.
        dead = [k for k, (ref, _) in self._plan_cache.items() if ref() is None]
        for k in dead:
            del self._plan_cache[k]
        self._plan_cache[key] = (weakref.ref(network), plan)
        return plan

    def _compiled_for(self, network: BinarizedNetwork) -> CompiledNetwork:
        """Memoised compiled artifact per network object; on a memo miss
        the content-addressed on-disk :class:`PlanCache` (when enabled)
        is consulted before compiling from scratch, so fresh runtimes --
        and fresh *processes* -- skip planning for known networks."""
        key = id(network)
        cached = self._compiled_memo.get(key)
        if cached is not None and cached[0]() is network:
            return cached[1]
        if self.plan_cache is not None:
            compiled = self.plan_cache.get_or_compile(
                network, self.chip_n, self.sc_per_npe, self.reorder
            )
        else:
            compiled = compile_network(
                network, self.chip_n, self.sc_per_npe, self.reorder
            )
        dead = [k for k, (ref, _) in self._compiled_memo.items()
                if ref() is None]
        for k in dead:
            del self._compiled_memo[k]
        self._compiled_memo[key] = (weakref.ref(network), compiled)
        return compiled

    # -- fast engine ----------------------------------------------------------

    def _infer_fast(self, network, spike_trains) -> RuntimeResult:
        capacity = 1 << self.sc_per_npe
        steps, batch, _ = spike_trains.shape
        rows = spike_trains.reshape(steps * batch, network.in_features)
        if self.use_compiled:
            compiled = self._compiled_for(network)
            decisions, spurious, synops = self._dispatch_rows_compiled(
                compiled, rows
            )
            reloads = compiled.reload_events * steps * batch
        else:
            decisions, spurious, synops = self._dispatch_rows(
                network.layers, rows, capacity
            )
            reloads = self._plan_for(network).reload_events() * steps * batch
        raster = decisions.reshape(steps, batch, network.out_features)
        rates = raster.mean(axis=0) if steps else raster.sum(axis=0)
        return RuntimeResult(
            rates=rates,
            predictions=rates.argmax(axis=1),
            output_raster=raster,
            spurious_decisions=spurious,
            synaptic_ops=synops,
            reload_events=reloads,
        )

    # Degrade-to-serial exception set: a missing/forbidden multiprocessing
    # stack (ImportError/OSError/PermissionError) and mid-run pool
    # failures -- concurrent.futures' BrokenProcessPool and the
    # RuntimeErrors raised by bad spawn contexts both derive from
    # RuntimeError, as does InferencePoolError.  Sharding is by rows, so
    # the serial fallback is bit-identical, only slower.
    _POOL_FALLBACK_ERRORS = (
        ImportError, OSError, PermissionError, RuntimeError,
    )

    def _want_parallel(self, n_rows: int) -> int:
        """Worker count to use for an ``n_rows`` block (0 = serial)."""
        workers = self.max_workers or 0
        if workers > 1 and n_rows >= 2 * workers:
            return workers
        return 0

    def _dispatch_rows_compiled(self, compiled, rows):
        """Serial, persistent-pool or one-shot-executor execution of the
        row block through the compiled artifact."""
        from repro.ssnn.pool import PoisonBatchError

        workers = self._want_parallel(rows.shape[0])
        if workers:
            try:
                if self.persistent_workers:
                    return self._pool_for(compiled).infer_rows(rows)
                return self._dispatch_rows_executor(
                    _init_compiled_worker, (compiled,),
                    _run_compiled_chunk, rows, workers,
                )
            except PoisonBatchError:
                # The pool quarantined this row block after it killed
                # workers twice; the pool itself already healed, so
                # keep it and run only this block serially.
                pass
            except self._POOL_FALLBACK_ERRORS:
                self.close()  # drop a broken pool; respawn on next call
        return compiled.forward_rows(rows)

    def _pool_for(self, compiled):
        """The lazily-spawned persistent pool, rebuilt when the compiled
        plan (or worker count) it serves has changed."""
        from repro.ssnn.pool import InferencePool

        pool = self._pool
        if (
            pool is None
            or pool.closed
            or pool.compiled.fingerprint != compiled.fingerprint
            or pool.workers != self.max_workers
        ):
            self.close()
            pool = InferencePool(compiled, workers=self.max_workers)
            self._pool = pool
        return pool

    def _dispatch_rows(self, layers, rows, capacity):
        """Legacy-path execution of the row block (serial or one-shot
        executor).  Sharding is by rows, which are independent, so worker
        count never changes the results -- only the wall-clock time."""
        workers = self._want_parallel(rows.shape[0])
        if workers:
            try:
                return self._dispatch_rows_executor(
                    _init_fast_worker,
                    (list(layers), capacity, self.reorder),
                    _run_fast_chunk, rows, workers,
                )
            except self._POOL_FALLBACK_ERRORS:
                pass  # no usable process pool here; fall through to serial
        return _fast_forward_rows(layers, rows, capacity, self.reorder)

    @staticmethod
    def _dispatch_rows_executor(initializer, initargs, fn, rows, workers):
        """One-shot ``ProcessPoolExecutor`` dispatch.  The weights cross
        the process boundary exactly once per worker (initializer), not
        once per chunk as the interim implementation pickled them."""
        from concurrent.futures import ProcessPoolExecutor

        chunks = np.array_split(rows, workers)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            parts = list(pool.map(fn, chunks))
        decisions = np.concatenate([p[0] for p in parts], axis=0)
        spurious = sum(p[1] for p in parts)
        synops = sum(p[2] for p in parts)
        return decisions, spurious, synops

    # -- behavioural engine ------------------------------------------------------

    def _infer_behavioral(self, network, spike_trains) -> RuntimeResult:
        if not self.reorder:
            raise ConfigurationError(
                "the behavioural engine executes bit-slice plans, which are "
                "always reordered; use engine='fast' for the naive-order "
                "ablation"
            )
        plan = self._plan_for(network)
        from repro.ssnn.verification import verify_plan

        verify_plan(plan, self.sc_per_npe).raise_if_failed()
        config = ChipConfig(
            n=self.chip_n,
            sc_per_npe=self.sc_per_npe,
            max_strength=max(plan.max_strength, 1),
        )
        steps, batch, _ = spike_trains.shape
        raster = np.zeros((steps, batch, network.out_features))
        capacity = config.state_capacity
        # One vectorised forward sweep provides every layer's input block
        # (and the final-sum reference) for the whole batch.
        activity = batch_layer_activity(plan, spike_trains)
        reference = activity[-1]  # (T, batch, out)
        # One elaborated chip, power-on reset between samples: identical
        # semantics to rebuilding, without re-allocating 2n NPEs and n^2
        # crosspoints per sample.
        chip = BehavioralChip(config)
        for b in range(batch):
            chip.reset()
            sample_activity = [block[:, b, :] for block in activity]
            for t in range(steps):
                raster[t, b] = self._run_sample_step(
                    chip, plan, sample_activity, t, capacity
                )
        rates = raster.mean(axis=0) if steps else raster.sum(axis=0)
        return RuntimeResult(
            rates=rates,
            predictions=rates.argmax(axis=1),
            output_raster=raster,
            spurious_decisions=int((raster != reference).sum()),
            synaptic_ops=chip.synaptic_ops,
            reload_events=chip.reload_events,
        )

    def _run_sample_step(self, chip, plan, activity, t, capacity):
        """Execute one time step of the full plan on the behavioural chip,
        returning the final layer's output vector."""
        n = self.chip_n
        outputs_per_layer = [
            np.zeros(shape[1]) for shape in plan.layer_shapes
        ]
        for task in plan.tasks:
            width = task.out_slice[1] - task.out_slice[0]
            if task.first_pass_of_out_slice:
                thresholds = list(
                    plan.network.layers[task.layer_index]
                    .thresholds[task.out_slice[0]:task.out_slice[1]]
                ) + [capacity] * (n - width)
                chip.begin_timestep(thresholds)
            chip.configure_weights(task.strengths.tolist())
            rows = activity[task.layer_index][t][
                task.in_slice[0]:task.in_slice[1]
            ]
            spikes = list(rows > 0) + [False] * (n - len(rows))
            chip.run_pass(task.polarity, spikes)
            # Slice complete when the next task starts a new one; read here
            # on every pass and keep the latest value (cheap, idempotent).
            outputs = chip.read_out()[:width]
            outputs_per_layer[task.layer_index][
                task.out_slice[0]:task.out_slice[1]
            ] = np.asarray(outputs, dtype=np.float64)
        return outputs_per_layer[-1]
