"""End-to-end SSNN inference on SUSHI (paper Fig. 12 workflow).

Two execution engines share one semantics:

* ``engine="fast"`` -- vectorised ripple-counter simulation
  (:func:`repro.ssnn.bucketing.hardware_layer_outputs`): runs whole test
  sets, used by the Table 3 benchmark.
* ``engine="behavioral"`` -- drives a
  :class:`repro.neuro.chip.BehavioralChip` through the full bit-slice
  protocol pass by pass: slow but protocol-exact, used to validate the fast
  engine and (in miniature) the gate-level chip.

Both honour the ``reorder`` flag so the bucketing ablation
(section 4.2.2 / 5.1) can quantify the accuracy cost of naive synapse
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.neuro.chip import BehavioralChip, ChipConfig
from repro.snn.binarize import BinarizedNetwork
from repro.ssnn.bitslice import BitSlicePlan, plan_network
from repro.ssnn.bucketing import hardware_layer_outputs


def layer_activity(plan: BitSlicePlan, spike_trains: np.ndarray) -> List[np.ndarray]:
    """Input spike activity per layer: ``activity[l][t]`` is the (features,)
    input vector of layer ``l`` at time step ``t`` (single sample)."""
    if plan.network is None:
        raise ConfigurationError("plan carries no network reference")
    spike_trains = np.asarray(spike_trains, dtype=np.float64)
    activity = [spike_trains]
    current = spike_trains
    for layer in plan.network.layers:
        current = layer.forward(current)
        activity.append(current)
    return activity


@dataclass
class RuntimeResult:
    """Outcome of a chip inference over a batch.

    Attributes:
        rates: (batch, classes) mean output spike rates.
        predictions: argmax labels.
        output_raster: (T, batch, classes) per-step output spikes.
        spurious_decisions: (sample, neuron, step) triples where the
            hardware decision differed from the final-sum reference
            (premature fires / underflows); empty under reordering with
            adequate capacity.
        synaptic_ops: Total synaptic operations executed.
        reload_events: Crosspoint reloads (behavioural engine) or the
            plan's static estimate (fast engine).
    """

    rates: np.ndarray
    predictions: np.ndarray
    output_raster: np.ndarray
    spurious_decisions: int
    synaptic_ops: int
    reload_events: int


class SushiRuntime:
    """Runs binarized networks on a SUSHI chip model."""

    def __init__(
        self,
        chip_n: int = 16,
        sc_per_npe: int = 10,
        engine: str = "fast",
        reorder: bool = True,
    ):
        if engine not in ("fast", "behavioral"):
            raise ConfigurationError(
                f"unknown engine '{engine}'; use 'fast' or 'behavioral'"
            )
        self.chip_n = chip_n
        self.sc_per_npe = sc_per_npe
        self.engine = engine
        self.reorder = reorder

    # -- public API ---------------------------------------------------------

    def infer(
        self, network: BinarizedNetwork, spike_trains: np.ndarray
    ) -> RuntimeResult:
        """Run inference on a (T, batch, in_features) binary spike train."""
        spike_trains = np.asarray(spike_trains, dtype=np.float64)
        if spike_trains.ndim != 3:
            raise ConfigurationError(
                "spike_trains must be (T, batch, in_features)"
            )
        if spike_trains.shape[2] != network.in_features:
            raise ConfigurationError(
                f"spike width {spike_trains.shape[2]} != network input "
                f"{network.in_features}"
            )
        if self.engine == "fast":
            return self._infer_fast(network, spike_trains)
        return self._infer_behavioral(network, spike_trains)

    # -- fast engine ----------------------------------------------------------

    def _infer_fast(self, network, spike_trains) -> RuntimeResult:
        capacity = 1 << self.sc_per_npe
        steps, batch, _ = spike_trains.shape
        raster = np.zeros((steps, batch, network.out_features))
        spurious = 0
        synops = 0
        for t in range(steps):
            current = spike_trains[t]
            for layer in network.layers:
                decisions, _ = hardware_layer_outputs(
                    layer, current, capacity, reorder=self.reorder
                )
                reference = layer.forward(current)
                spurious += int((decisions != reference).sum())
                synops += int(
                    (current @ (layer.signed_weights != 0)).sum()
                )
                current = decisions
            raster[t] = current
        rates = raster.mean(axis=0)
        plan = plan_network(network, self.chip_n, self.sc_per_npe)
        return RuntimeResult(
            rates=rates,
            predictions=rates.argmax(axis=1),
            output_raster=raster,
            spurious_decisions=spurious,
            synaptic_ops=synops,
            reload_events=plan.reload_events() * steps * batch,
        )

    # -- behavioural engine ------------------------------------------------------

    def _infer_behavioral(self, network, spike_trains) -> RuntimeResult:
        if not self.reorder:
            raise ConfigurationError(
                "the behavioural engine executes bit-slice plans, which are "
                "always reordered; use engine='fast' for the naive-order "
                "ablation"
            )
        plan = plan_network(network, self.chip_n, self.sc_per_npe)
        from repro.ssnn.verification import verify_plan

        verify_plan(plan, self.sc_per_npe).raise_if_failed()
        config = ChipConfig(
            n=self.chip_n,
            sc_per_npe=self.sc_per_npe,
            max_strength=max(plan.max_strength, 1),
        )
        steps, batch, _ = spike_trains.shape
        raster = np.zeros((steps, batch, network.out_features))
        spurious = 0
        synops = 0
        reloads = 0
        capacity = config.state_capacity
        for b in range(batch):
            chip = BehavioralChip(config)
            activity = layer_activity(plan, spike_trains[:, b, :])
            for t in range(steps):
                outputs = self._run_sample_step(
                    chip, plan, activity, t, capacity
                )
                raster[t, b] = outputs
                reference = network.forward_step(
                    spike_trains[t, b:b + 1]
                )[0]
                spurious += int((outputs != reference).sum())
            synops += chip.synaptic_ops
            reloads += chip.reload_events
        rates = raster.mean(axis=0)
        return RuntimeResult(
            rates=rates,
            predictions=rates.argmax(axis=1),
            output_raster=raster,
            spurious_decisions=spurious,
            synaptic_ops=synops,
            reload_events=reloads,
        )

    def _run_sample_step(self, chip, plan, activity, t, capacity):
        """Execute one time step of the full plan on the behavioural chip,
        returning the final layer's output vector."""
        n = self.chip_n
        outputs_per_layer = [
            np.zeros(shape[1]) for shape in plan.layer_shapes
        ]
        current_slice = None
        for task in plan.tasks:
            key = (task.layer_index, task.out_slice)
            width = task.out_slice[1] - task.out_slice[0]
            if task.first_pass_of_out_slice:
                thresholds = list(
                    plan.network.layers[task.layer_index]
                    .thresholds[task.out_slice[0]:task.out_slice[1]]
                ) + [capacity] * (n - width)
                chip.begin_timestep(thresholds)
                current_slice = key
            chip.configure_weights(task.strengths.tolist())
            rows = activity[task.layer_index][t][
                task.in_slice[0]:task.in_slice[1]
            ]
            spikes = list(rows > 0) + [False] * (n - len(rows))
            chip.run_pass(task.polarity, spikes)
            # Slice complete when the next task starts a new one; read here
            # on every pass and keep the latest value (cheap, idempotent).
            outputs = chip.read_out()[:width]
            outputs_per_layer[task.layer_index][
                task.out_slice[0]:task.out_slice[1]
            ] = np.asarray(outputs, dtype=np.float64)
        return outputs_per_layer[-1]
