"""Per-layer profiling of chip inference.

Splits a workload's synaptic operations, spike activity, stream time and
energy across the network's layers -- the analysis a deployment would use
to find its bottleneck (e.g. the 784x800 layer dominates the paper's MNIST
network by 98%).  Timing comes from the same encoded-stream model as
:func:`repro.ssnn.encoder.encode_inference`; energy from the static power
model (dominant in RSFQ) over the layer's share of the stream time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.resources.power import PowerModel
from repro.snn.binarize import BinarizedNetwork
from repro.ssnn.bitslice import plan_network
from repro.ssnn.encoder import InferenceTiming, encode_inference


@dataclass(frozen=True)
class LayerProfile:
    """Profile of one layer over a spike train.

    Attributes:
        index: Layer position in the network.
        shape: (in_features, out_features).
        synaptic_ops: Synapse events this layer executed.
        input_spike_rate: Mean input activity per step (fraction firing).
        output_spike_rate: Mean output activity per step.
        passes: Bit-slice passes attributable to this layer.
        time_ps: Stream time attributable to this layer.
        energy_nj: Static energy over this layer's stream time.
    """

    index: int
    shape: tuple
    synaptic_ops: int
    input_spike_rate: float
    output_spike_rate: float
    passes: int
    time_ps: float
    energy_nj: float

    @property
    def time_share(self) -> float:
        return self._time_share

    _time_share: float = 0.0


def profile_network(
    network: BinarizedNetwork,
    spike_trains: np.ndarray,
    chip_n: int = 16,
    sc_per_npe: int = 10,
    timing: InferenceTiming = None,
) -> List[LayerProfile]:
    """Profile one sample's inference layer by layer.

    Args:
        network: The deployed integer network.
        spike_trains: (T, in_features) binary train of one sample.
        chip_n / sc_per_npe: Target chip configuration.
        timing: Stream-timing constants.

    Returns one :class:`LayerProfile` per layer.  The layer split is exact
    for synops/passes/activity; stream time is apportioned by running the
    encoder on single-layer sub-networks (protocol overheads included).
    """
    spike_trains = np.asarray(spike_trains, dtype=np.float64)
    if spike_trains.ndim != 2:
        raise ConfigurationError("spike_trains must be (T, in_features)")
    timing = timing or InferenceTiming(sc_per_npe=sc_per_npe)
    from repro.resources.estimator import estimate_resources

    power_mw = PowerModel(
        estimate_resources(chip_n, with_weights=False)
    ).static_mw

    profiles: List[LayerProfile] = []
    current = spike_trains
    total_time = 0.0
    raw = []
    for index, layer in enumerate(network.layers):
        sub = BinarizedNetwork([layer])
        plan = plan_network(sub, chip_n, sc_per_npe)
        enc = encode_inference(plan, current, timing)
        outputs = np.stack([layer.forward(step[None, :])[0]
                            for step in current])
        raw.append((index, layer, enc, current, outputs))
        total_time += enc.total_ps
        current = outputs
    for index, layer, enc, inputs, outputs in raw:
        energy_nj = power_mw * 1e-3 * enc.total_ps * 1e-12 * 1e9
        profile = LayerProfile(
            index=index,
            shape=(layer.in_features, layer.out_features),
            synaptic_ops=enc.synaptic_ops,
            input_spike_rate=float(inputs.mean()),
            output_spike_rate=float(outputs.mean()),
            passes=enc.total_passes,
            time_ps=enc.total_ps,
            energy_nj=energy_nj,
        )
        object.__setattr__(profile, "_time_share",
                           enc.total_ps / total_time if total_time else 0.0)
        profiles.append(profile)
    return profiles


def profile_report(profiles: List[LayerProfile]) -> str:
    """Render layer profiles as an aligned table."""
    from repro.harness.reporting import format_table

    rows = []
    for p in profiles:
        rows.append({
            "layer": p.index,
            "shape": f"{p.shape[0]}x{p.shape[1]}",
            "synops": p.synaptic_ops,
            "in_rate": round(p.input_spike_rate, 3),
            "out_rate": round(p.output_spike_rate, 3),
            "passes": p.passes,
            "time_us": round(p.time_ps / 1e6, 3),
            "time_share_pct": round(100 * p.time_share, 1),
            "energy_nj": round(p.energy_nj, 2),
        })
    return format_table(rows, title="Per-layer inference profile")
