"""Static verification of bit-slice plans.

Before a plan is streamed to hardware, these checks prove it faithful to
the network it was compiled from -- the software analogue of the paper's
"first phase executes once off-chip" encoding validation:

* every layer's signed weights are exactly reconstructible from the plan's
  polarity passes (no synapse lost, duplicated or mis-signed);
* pass ordering per output slice is inhibitory-first (the reordering
  guarantee);
* every output slice is opened by a threshold-preload pass;
* the state range of every neuron fits the target SC chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.ssnn.bitslice import BitSlicePlan
from repro.ssnn.bucketing import required_capacity


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_plan`."""

    ok: bool
    errors: List[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ConfigurationError(
                "plan verification failed:\n  " + "\n  ".join(self.errors)
            )


def reconstruct_weights(plan: BitSlicePlan, layer_index: int) -> np.ndarray:
    """Rebuild a layer's signed weight matrix from the plan's passes."""
    if plan.network is None:
        raise ConfigurationError("plan carries no network reference")
    shape = plan.layer_shapes[layer_index]
    rebuilt = np.zeros(shape, dtype=np.int64)
    for task in plan.tasks:
        if task.layer_index != layer_index:
            continue
        i0, i1 = task.in_slice
        o0, o1 = task.out_slice
        block = task.strengths[: i1 - i0, : o1 - o0]
        sign = -1 if task.polarity is Polarity.SET0 else 1
        rebuilt[i0:i1, o0:o1] += sign * block
    return rebuilt


def verify_plan(plan: BitSlicePlan, sc_per_npe: int = 10) -> VerificationReport:
    """Run every static check; returns a :class:`VerificationReport`."""
    errors: List[str] = []
    if plan.network is None:
        return VerificationReport(False, ["plan carries no network"])

    # 1. Weight reconstruction.
    for index, layer in enumerate(plan.network.layers):
        rebuilt = reconstruct_weights(plan, index)
        if not np.array_equal(rebuilt, layer.signed_weights):
            diff = int((rebuilt != layer.signed_weights).sum())
            errors.append(
                f"layer {index}: {diff} synapses differ after "
                "reconstruction from passes"
            )

    # 2. Ordering: per output slice, all SET0 before any SET1.
    for key in {(t.layer_index, t.out_slice) for t in plan.tasks}:
        polarities = [t.polarity for t in plan.tasks
                      if (t.layer_index, t.out_slice) == key]
        seen_exc = False
        for polarity in polarities:
            if polarity is Polarity.SET1:
                seen_exc = True
            elif seen_exc:
                errors.append(
                    f"slice {key}: inhibitory pass after an excitatory one"
                )
                break

    # 3. Every output slice opens with a preload pass.
    opened = set()
    for task in plan.tasks:
        key = (task.layer_index, task.out_slice)
        if key not in opened:
            if not task.first_pass_of_out_slice:
                errors.append(f"slice {key}: first pass lacks the preload")
            opened.add(key)

    # 4. Capacity per layer.
    capacity = 1 << sc_per_npe
    for index, layer in enumerate(plan.network.layers):
        need = required_capacity(layer)
        if need > capacity:
            errors.append(
                f"layer {index}: needs {need} states, chain holds {capacity}"
            )

    # 5. Gains within the chip's strength budget.
    for task in plan.tasks:
        if task.strengths.max(initial=0) > plan.max_strength:
            errors.append(
                f"task (layer {task.layer_index}, out {task.out_slice}, "
                f"in {task.in_slice}): gain exceeds {plan.max_strength}"
            )
            break

    return VerificationReport(ok=not errors, errors=errors)
