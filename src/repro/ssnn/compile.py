"""Compile-once / run-many lowering of binarized networks (serving tier 1).

The paper's whole pitch is throughput (2.61e5 FPS on the MNIST net,
section 6.3), yet planning work -- bit-slice scheduling, bucketing,
reorder permutations, reload accounting -- was historically re-derived
per :class:`~repro.ssnn.runtime.SushiRuntime` instance.  This module
lowers a :class:`~repro.snn.binarize.BinarizedNetwork` plus chip
configuration into an immutable :class:`CompiledNetwork` once:

* **Packed integer weight matrices per polarity bucket** -- the
  inhibitory (`set0`) and excitatory (`set1`) column sums of every layer
  are pre-split and stored in the tightest dtype whose integer range
  provably covers the counter trajectory, so the fast engine runs two
  BLAS matmuls per layer (float32 where exactness allows) instead of
  four float64 ones.
* **Precomputed reorder permutations** -- the axon stream order and
  polarity sequence of :func:`repro.ssnn.bucketing.build_schedule`.
* **Preload vectors and slice schedule** -- ``capacity - threshold``
  per neuron, the (input-slice, output-slice) counts, pass count and
  static reload-event statistics of :func:`repro.ssnn.bitslice.
  plan_network` -- evaluated once at compile time instead of per run.
* **A content-addressed on-disk cache** (:class:`PlanCache`) keyed by
  the SHA-256 of the network's integer weights, thresholds and the chip
  configuration, so harness and benchmark re-runs (and fresh serving
  processes) skip planning entirely.

Everything in the artifact is a pure function of the network and the
chip config; :meth:`CompiledNetwork.forward_rows` is bit-identical to
the historical ``hardware_layer_outputs``-based row loop (the
differential harness asserts exactly that, see
:func:`repro.harness.differential.run_compiled_differential`).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn.bitslice import BitSlicePlan, plan_network
from repro.ssnn.bucketing import build_schedule, hardware_layer_outputs

#: Bump to invalidate every cached artifact (schema / semantics changes).
SCHEMA_VERSION = 1

#: Largest integer magnitude exactly representable in IEEE float32.
_FLOAT32_EXACT = 1 << 24


# ---------------------------------------------------------------------------
# Fingerprinting (the cache key scheme; see docs/SERVING.md)
# ---------------------------------------------------------------------------

def network_fingerprint(
    network: BinarizedNetwork,
    chip_n: int,
    sc_per_npe: int,
    reorder: bool = True,
) -> str:
    """Content-addressed cache key: SHA-256 over the schema version, the
    chip configuration and every layer's integer weights + thresholds.

    Two *equal-valued* networks share a fingerprint regardless of object
    identity; any change to a weight, threshold, layer shape, mesh size,
    SC count or the reorder flag produces a new key (and therefore a
    cache miss) -- the invalidation rule, in full.
    """
    digest = hashlib.sha256()
    digest.update(
        f"repro.ssnn.compile/v{SCHEMA_VERSION}|n={int(chip_n)}"
        f"|sc={int(sc_per_npe)}|reorder={int(bool(reorder))}"
        f"|layers={len(network.layers)}".encode()
    )
    for layer in network.layers:
        digest.update(repr(layer.signed_weights.shape).encode())
        digest.update(
            np.ascontiguousarray(layer.signed_weights, dtype=np.int64)
            .tobytes()
        )
        digest.update(
            np.ascontiguousarray(layer.thresholds, dtype=np.int64).tobytes()
        )
    return digest.hexdigest()


def _smallest_signed_dtype(max_abs: int) -> np.dtype:
    """Tightest signed integer dtype holding ``[-max_abs, max_abs]``."""
    for dtype in (np.int8, np.int16, np.int32):
        if max_abs <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


# ---------------------------------------------------------------------------
# Compiled layers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledLayer:
    """One layer lowered to its packed streaming form.

    Serialized state (content-addressed, survives the disk round trip):
    ``signed_weights`` (tightest signed dtype), ``thresholds`` (int32),
    ``stream_order``/``stream_polarity`` (the reorder permutation).  The
    remaining arrays are materialised deterministically from those at
    load time (see :func:`_materialize_layer`).

    Attributes:
        signed_weights: (in, out) packed signed weights.
        thresholds: (out,) int32 NPE thresholds.
        stream_order: (2 * in,) axon stream order over both polarity
            passes -- under reordering all axons stream in the SET0 pass
            then again in the SET1 pass; naively they interleave.
        stream_polarity: (2 * in,) int8; 0 = SET0 pass, 1 = SET1 pass.
        neg: (in, out) inhibitory bucket matrix ``min(w, 0)`` in the
            compute dtype.
        pos: (in, out) excitatory bucket matrix ``max(w, 0)``.
        preload: (out,) ``capacity - threshold`` counter preloads.
        thresholds_c: (out,) thresholds in the compute dtype.
        nnz_per_input: (in,) float64 fan-out counts (synops matvec).
        compute_dtype: float32 when the whole counter trajectory is
            exactly representable there, float64 otherwise (decisions
            are bit-identical either way; this is pure speed).
        reference_layer: int64 :class:`BinarizedLayer` view used by the
            naive-order (``reorder=False``) exact pulse-by-pulse path.
    """

    signed_weights: np.ndarray
    thresholds: np.ndarray
    stream_order: np.ndarray
    stream_polarity: np.ndarray
    neg: np.ndarray
    pos: np.ndarray
    preload: np.ndarray
    thresholds_c: np.ndarray
    nnz_per_input: np.ndarray
    compute_dtype: np.dtype
    reference_layer: BinarizedLayer

    @property
    def in_features(self) -> int:
        return self.signed_weights.shape[0]

    @property
    def out_features(self) -> int:
        return self.signed_weights.shape[1]


def _materialize_layer(
    signed_weights: np.ndarray,
    thresholds: np.ndarray,
    stream_order: np.ndarray,
    stream_polarity: np.ndarray,
    capacity: int,
) -> CompiledLayer:
    """Derive the runtime arrays (bucket matrices, preloads, compute
    dtype) from the serialized state.  Deterministic, so a cache load
    reproduces exactly what :func:`compile_network` built."""
    weights64 = np.asarray(signed_weights, dtype=np.int64)
    thresholds64 = np.asarray(thresholds, dtype=np.int64)
    # Exactness bound: the counter trajectory stays within
    # [preload - total_inhibition, preload + total_excitation]; float32
    # is exact for |value| <= 2**24 and division by the power-of-two
    # capacity is always exact in binary floating point.
    total_neg = int(-np.minimum(weights64, 0).sum(axis=0).min(initial=0))
    total_pos = int(np.maximum(weights64, 0).sum(axis=0).max(initial=0))
    bound = max(int(capacity), int(thresholds64.max(initial=1))) \
        + total_neg + total_pos
    compute = np.dtype(
        np.float32 if bound < _FLOAT32_EXACT else np.float64
    )
    packed = weights64.astype(
        _smallest_signed_dtype(int(np.abs(weights64).max(initial=0)))
    )
    return CompiledLayer(
        signed_weights=packed,
        thresholds=thresholds64.astype(np.int32),
        stream_order=np.asarray(stream_order, dtype=np.int32),
        stream_polarity=np.asarray(stream_polarity, dtype=np.int8),
        neg=np.ascontiguousarray(np.minimum(weights64, 0), dtype=compute),
        pos=np.ascontiguousarray(np.maximum(weights64, 0), dtype=compute),
        preload=(capacity - thresholds64).astype(compute),
        thresholds_c=thresholds64.astype(compute),
        nnz_per_input=(weights64 != 0).sum(axis=1).astype(np.float64),
        compute_dtype=compute,
        reference_layer=BinarizedLayer(weights64, thresholds64),
    )


def _schedule_arrays(
    layer: BinarizedLayer, reorder: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten :func:`build_schedule` into (stream_order, polarity)."""
    from repro.neuro.state_controller import Polarity

    schedule = build_schedule(layer, reorder=reorder)
    order: List[int] = []
    polarity: List[int] = []
    for bucket in schedule.buckets:
        order.extend(bucket.axons)
        flag = int(bucket.polarity is Polarity.SET1)
        polarity.extend([flag] * len(bucket.axons))
    return (np.asarray(order, dtype=np.int32),
            np.asarray(polarity, dtype=np.int8))


# ---------------------------------------------------------------------------
# The compiled artifact
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledNetwork:
    """An immutable, executable lowering of one network onto one chip.

    Attributes:
        fingerprint: Content-addressed identity (cache key).
        chip_n / sc_per_npe / reorder: The chip configuration compiled
            against.
        capacity: ``2 ** sc_per_npe`` membrane states.
        max_strength: Largest crosspoint gain the plan configures.
        pass_count: Polarity passes in the full bit-slice program.
        reload_events: Static crosspoint reloads of one program
            execution (one time step of one sample) -- the fast engine
            multiplies by ``steps * batch``.
        reload_passes: Passes requiring at least one reload.
        slice_counts: Per-layer (input slices, output slices).
        layers: The packed :class:`CompiledLayer` stack.
    """

    fingerprint: str
    chip_n: int
    sc_per_npe: int
    reorder: bool
    capacity: int
    max_strength: int
    pass_count: int
    reload_events: int
    reload_passes: int
    slice_counts: Tuple[Tuple[int, int], ...]
    layers: Tuple[CompiledLayer, ...]

    # -- shape helpers -------------------------------------------------------

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    @property
    def layer_shapes(self) -> List[Tuple[int, int]]:
        return [(l.in_features, l.out_features) for l in self.layers]

    # -- execution -----------------------------------------------------------

    def forward_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Push independent spike rows through the compiled layer stack.

        Returns ``(decisions, spurious, synops)`` with semantics (and
        bits) identical to the historical per-layer
        ``hardware_layer_outputs`` + ``layer.forward`` loop, but fused:
        the final-sum reference, spurious count and synops all fall out
        of the two bucket matmuls -- no extra matmul per layer, and
        float32 arithmetic wherever the integer trajectory is exactly
        representable there.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.in_features:
            raise ConfigurationError(
                f"expected (batch, {self.in_features}) rows, got "
                f"{rows.shape}"
            )
        if not self.reorder:
            return self._forward_rows_naive(rows)
        spurious = 0
        synops = 0.0
        current = rows
        for layer in self.layers:
            if current.dtype != layer.compute_dtype:
                current = np.ascontiguousarray(
                    current, dtype=layer.compute_dtype
                )
            # Fan-out matvec replaces the historical full (batch, in) @
            # (in, out) boolean matmul for the synops statistic.
            synops += float((current @ layer.nnz_per_input).sum())
            neg = current @ layer.neg  # (batch, out), <= 0
            pos = current @ layer.pos  # (batch, out), >= 0
            # Counter trajectory: preload -> +neg (monotone down) ->
            # +pos (monotone up); crossing counts telescope per bucket.
            acc = neg
            acc += layer.preload
            floor_q = np.floor_divide(acc, self.capacity)
            acc += pos
            final_q = np.floor_divide(acc, self.capacity)
            np.subtract(final_q, floor_q, out=final_q)
            np.abs(floor_q, out=floor_q)
            np.abs(final_q, out=final_q)
            floor_q += final_q
            decisions = floor_q > 0  # bool (batch, out)
            # Final-sum reference is free: sums = preload + neg + pos
            # minus preload, already held in `acc`.
            acc -= layer.preload
            reference = acc >= layer.thresholds_c
            spurious += int((decisions != reference).sum())
            current = decisions
        return (
            np.ascontiguousarray(current, dtype=np.float64),
            spurious,
            int(round(synops)),
        )

    def _forward_rows_naive(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, int, int]:
        """The interleaved-order ablation path: exact pulse-by-pulse
        semantics via :func:`hardware_layer_outputs` (genuinely
        non-monotone, cannot be fused), with the fan-out matvec for
        synops."""
        current = np.ascontiguousarray(rows, dtype=np.float64)
        spurious = 0
        synops = 0.0
        for layer in self.layers:
            synops += float((current @ layer.nnz_per_input).sum())
            decisions, _ = hardware_layer_outputs(
                layer.reference_layer, current, self.capacity, reorder=False
            )
            reference = layer.reference_layer.forward(current)
            spurious += int((decisions != reference).sum())
            current = decisions
        return current, spurious, int(round(synops))

    # -- interop -------------------------------------------------------------

    def to_network(self) -> BinarizedNetwork:
        """Reconstruct an equal-valued :class:`BinarizedNetwork` (same
        fingerprint as the network this artifact was compiled from)."""
        return BinarizedNetwork([
            BinarizedLayer(
                np.asarray(l.signed_weights, dtype=np.int64),
                np.asarray(l.thresholds, dtype=np.int64),
            )
            for l in self.layers
        ])

    def to_plan(
        self, network: Optional[BinarizedNetwork] = None
    ) -> BitSlicePlan:
        """Materialise the full :class:`BitSlicePlan` (pass program) for
        protocol-exact consumers (behavioural engine, verification).

        ``network`` optionally supplies the original network object so
        the plan's back-reference points at it; otherwise an equal-valued
        reconstruction is used.
        """
        return plan_network(
            network if network is not None else self.to_network(),
            self.chip_n,
            self.sc_per_npe,
        )

    # -- serialization -------------------------------------------------------

    def _meta(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "chip_n": self.chip_n,
            "sc_per_npe": self.sc_per_npe,
            "reorder": bool(self.reorder),
            "capacity": self.capacity,
            "max_strength": self.max_strength,
            "pass_count": self.pass_count,
            "reload_events": self.reload_events,
            "reload_passes": self.reload_passes,
            "slice_counts": [list(sc) for sc in self.slice_counts],
            "n_layers": len(self.layers),
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write the artifact atomically (tmp file + rename) so a
        concurrent reader never observes a torn cache entry."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {"meta": np.array(json.dumps(self._meta()))}
        for i, layer in enumerate(self.layers):
            arrays[f"w{i}"] = layer.signed_weights
            arrays[f"t{i}"] = layer.thresholds
            arrays[f"so{i}"] = layer.stream_order
            arrays[f"sp{i}"] = layer.stream_polarity
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_bytes(buffer.getvalue())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompiledNetwork":
        """Load an artifact written by :meth:`save`.

        Raises :class:`ConfigurationError` on schema mismatch or a
        malformed file (the cache treats both as a miss)."""
        try:
            with np.load(Path(path), allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                if meta.get("schema") != SCHEMA_VERSION:
                    raise ConfigurationError(
                        f"compiled-plan schema {meta.get('schema')} != "
                        f"{SCHEMA_VERSION}"
                    )
                capacity = int(meta["capacity"])
                layers = tuple(
                    _materialize_layer(
                        data[f"w{i}"], data[f"t{i}"],
                        data[f"so{i}"], data[f"sp{i}"], capacity,
                    )
                    for i in range(int(meta["n_layers"]))
                )
        except ConfigurationError:
            raise
        except Exception as exc:  # corrupt zip / missing keys / bad JSON
            raise ConfigurationError(
                f"unreadable compiled-plan artifact {path}: {exc}"
            ) from exc
        return cls(
            fingerprint=str(meta["fingerprint"]),
            chip_n=int(meta["chip_n"]),
            sc_per_npe=int(meta["sc_per_npe"]),
            reorder=bool(meta["reorder"]),
            capacity=capacity,
            max_strength=int(meta["max_strength"]),
            pass_count=int(meta["pass_count"]),
            reload_events=int(meta["reload_events"]),
            reload_passes=int(meta["reload_passes"]),
            slice_counts=tuple(
                (int(a), int(b)) for a, b in meta["slice_counts"]
            ),
            layers=layers,
        )


def compile_network(
    network: BinarizedNetwork,
    chip_n: int,
    sc_per_npe: int = 10,
    reorder: bool = True,
) -> CompiledNetwork:
    """Lower ``network`` for an ``chip_n x chip_n`` mesh with
    ``sc_per_npe``-SC NPEs.

    Runs the full planner once (validating capacity and crosspoint
    strength exactly like the legacy per-run path -- the same
    :class:`~repro.errors.CapacityError` surfaces at compile time) and
    folds its static statistics into the artifact.
    """
    plan = plan_network(network, chip_n, sc_per_npe)
    capacity = 1 << sc_per_npe
    layers = []
    for layer in network.layers:
        order, polarity = _schedule_arrays(layer, reorder)
        layers.append(_materialize_layer(
            layer.signed_weights, layer.thresholds, order, polarity,
            capacity,
        ))
    return CompiledNetwork(
        fingerprint=network_fingerprint(
            network, chip_n, sc_per_npe, reorder
        ),
        chip_n=chip_n,
        sc_per_npe=sc_per_npe,
        reorder=bool(reorder),
        capacity=capacity,
        max_strength=plan.max_strength,
        pass_count=plan.pass_count,
        reload_events=plan.reload_events(),
        reload_passes=plan.reload_passes(),
        slice_counts=tuple(tuple(sc) for sc in plan.slice_counts()),
        layers=tuple(layers),
    )


# ---------------------------------------------------------------------------
# The on-disk plan cache
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters plus on-disk footprint of a :class:`PlanCache`."""

    hits: int
    misses: int
    entries: int
    bytes: int


def default_cache_dir() -> Path:
    """``$REPRO_PLAN_CACHE_DIR`` when set, else ``<artifact cache>/plans``
    (shared with the trained-model cache tree)."""
    env = os.environ.get("REPRO_PLAN_CACHE_DIR")
    if env:
        return Path(env)
    from repro.harness.artifacts import CACHE_DIR

    return Path(CACHE_DIR) / "plans"


#: Artifact-kind namespace of SSNN inference plans within a
#: :class:`PlanCache` root (RSFQ traces use
#: ``repro.rsfq.trace.TRACE_KIND``); each kind gets its own
#: subdirectory, so fingerprints of different artifact types can never
#: collide.
PLAN_KIND = "ssnn-plan"


class PlanCache:
    """Content-addressed on-disk cache of compiled artifacts.

    One cache root is shared by multiple *artifact kinds* -- SSNN
    inference plans (:data:`PLAN_KIND`, the default) and RSFQ compiled
    traces (``repro.rsfq.trace.TRACE_KIND``) -- each namespaced into its
    own subdirectory so equal fingerprints of different kinds cannot
    collide.  Keys are content hexdigests (plans:
    :func:`network_fingerprint`); entries are atomic-write ``.npz``
    artifacts.  Lookups verify the stored fingerprint and silently
    recompile over corrupt or stale-schema entries, so the cache can
    never poison an inference.  Failures to persist (read-only cache
    dir, full disk) degrade to in-memory compilation.

    Roots populated before kind-namespacing hold plan files directly
    under the root; :meth:`lookup` still reads those legacy entries (and
    rewrites happen under the new layout), so restored pre-existing
    caches keep serving hits.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def path_for(self, fingerprint: str, kind: str = PLAN_KIND) -> Path:
        """Where an artifact of ``kind`` is (or would be) stored."""
        return self.root / kind / f"{fingerprint}.npz"

    def lookup(self, fingerprint: str,
               kind: str = PLAN_KIND) -> Optional[Path]:
        """The existing entry path for ``fingerprint``, else None.

        Prefers the kind-namespaced layout; for plans, falls back to the
        legacy un-namespaced location (caches populated before artifact
        kinds existed).
        """
        path = self.path_for(fingerprint, kind)
        if path.exists():
            return path
        if kind == PLAN_KIND:
            legacy = self.root / f"{fingerprint}.npz"
            if legacy.exists():
                return legacy
        return None

    def get_or_compile(
        self,
        network: BinarizedNetwork,
        chip_n: int,
        sc_per_npe: int = 10,
        reorder: bool = True,
    ) -> CompiledNetwork:
        """Return the compiled artifact, loading from disk on a hit."""
        fingerprint = network_fingerprint(
            network, chip_n, sc_per_npe, reorder
        )
        path = self.lookup(fingerprint)
        if path is not None:
            try:
                compiled = CompiledNetwork.load(path)
                if compiled.fingerprint == fingerprint:
                    with self._lock:
                        self.hits += 1
                    return compiled
            except ConfigurationError:
                pass  # corrupt or stale entry: fall through and recompile
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self.misses += 1
        compiled = compile_network(network, chip_n, sc_per_npe, reorder)
        try:
            compiled.save(self.path_for(fingerprint))
        except OSError:
            pass  # unwritable cache: the in-memory artifact still serves
        return compiled

    def _entries(self):
        """Every cached artifact across all kinds (legacy files too)."""
        if self.root.exists():
            yield from self.root.rglob("*.npz")

    def clear(self) -> int:
        """Remove every cached artifact (all kinds); returns the number
        removed."""
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> CacheStats:
        entries = 0
        size = 0
        for entry in self._entries():
            try:
                size += entry.stat().st_size
                entries += 1
            except OSError:
                pass
        return CacheStats(
            hits=self.hits, misses=self.misses, entries=entries, bytes=size
        )


_DEFAULT_CACHE: Optional[PlanCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> PlanCache:
    """The process-wide shared :class:`PlanCache` (lazily built)."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None \
                or _DEFAULT_CACHE.root != default_cache_dir():
            _DEFAULT_CACHE = PlanCache()
        return _DEFAULT_CACHE


def resolve_plan_cache(
    plan_cache: Union[str, PlanCache, None]
) -> Optional[PlanCache]:
    """Normalise the ``plan_cache`` argument accepted across the serving
    stack: ``"default"`` -> the shared process cache, ``None`` -> no disk
    cache (in-memory compilation only), a :class:`PlanCache` -> itself."""
    if plan_cache is None:
        return None
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    if plan_cache == "default":
        return default_cache()
    raise ConfigurationError(
        f"plan_cache must be None, 'default' or a PlanCache instance, "
        f"got {type(plan_cache).__name__}: {plan_cache!r}"
    )
