"""The bit-slice SSNN method (paper section 5.3, Fig. 15).

A layer with ``m`` inputs and ``k`` neurons does not fit an ``n x n`` mesh
when ``m > n`` or ``k > n``.  The bit-slice method treats neurons as bits
and slices the layer:

* the ``k`` neurons split into ``ceil(k / n)`` **output slices**, processed
  one after another (the input spike train is re-streamed per output
  slice);
* the ``m`` axons split into ``ceil(m / n)`` **input slices**; the column
  NPEs' counters persist across input slices (the state-preserving property
  of superconducting cells), so no buffering is needed between them;
* within each input slice, two polarity passes stream the inhibitory then
  excitatory synapses (see :mod:`repro.ssnn.bucketing`).

The planner emits the exact pass sequence (with per-pass n x n strength
matrices) that a chip driver executes, plus static reload statistics: a
crosspoint reload is counted whenever a pass changes that crosspoint's
configured strength relative to the previous pass (unchanged crosspoints
are free, section 4.2.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.snn.binarize import BinarizedNetwork
from repro.ssnn.bucketing import check_capacity


@dataclass(frozen=True)
class SliceTask:
    """One polarity pass of one (output slice, input slice) block.

    Attributes:
        layer_index: Which network layer this pass belongs to.
        out_slice: (start, end) neuron range mapped onto the columns.
        in_slice: (start, end) axon range mapped onto the rows.
        polarity: SET0 (inhibitory) or SET1 (excitatory).
        strengths: (n, n) crosspoint gains for this pass (rows = axons,
            columns = neurons; zero-padded at the slice edges).
        first_pass_of_out_slice: True when this task begins a new output
            slice (column NPEs are reset+preloaded before it).
    """

    layer_index: int
    out_slice: Tuple[int, int]
    in_slice: Tuple[int, int]
    polarity: Polarity
    strengths: np.ndarray
    first_pass_of_out_slice: bool

    @property
    def thresholds_needed(self) -> bool:
        return self.first_pass_of_out_slice


@dataclass
class BitSlicePlan:
    """The full pass program for one network on one mesh size."""

    chip_n: int
    tasks: List[SliceTask]
    layer_shapes: List[Tuple[int, int]]
    max_strength: int
    network: BinarizedNetwork = None

    # -- statistics ----------------------------------------------------------

    @property
    def pass_count(self) -> int:
        return len(self.tasks)

    def slice_counts(self) -> List[Tuple[int, int]]:
        """(input slices, output slices) per layer."""
        counts = []
        for m, k in self.layer_shapes:
            counts.append((ceil_div(m, self.chip_n),
                           ceil_div(k, self.chip_n)))
        return counts

    def reload_events(self) -> int:
        """Crosspoint reloads over the whole program: configuration changes
        between consecutive passes (the chip driver's accounting)."""
        current = np.zeros((self.chip_n, self.chip_n), dtype=np.int64)
        reloads = 0
        for task in self.tasks:
            reloads += int((task.strengths != current).sum())
            current = task.strengths
        return reloads

    def reload_passes(self) -> int:
        """Passes that require at least one crosspoint reload."""
        current = np.zeros((self.chip_n, self.chip_n), dtype=np.int64)
        count = 0
        for task in self.tasks:
            if (task.strengths != current).any():
                count += 1
            current = task.strengths
        return count

    def synapse_slots(self) -> int:
        """Total configured (non-zero) crosspoint slots across passes."""
        return int(sum((task.strengths > 0).sum() for task in self.tasks))


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def plan_network(
    network: BinarizedNetwork,
    chip_n: int,
    sc_per_npe: int = 10,
    max_strength: int = None,
) -> BitSlicePlan:
    """Slice a binarized network onto an ``chip_n x chip_n`` mesh.

    Validates that every layer's membrane range fits the SC chains
    (:func:`repro.ssnn.bucketing.check_capacity`) and that the largest
    weight magnitude is realisable by the crosspoint gain.
    """
    if chip_n < 1:
        raise ConfigurationError("chip_n must be >= 1")
    needed_strength = max(layer.max_strength for layer in network.layers)
    if max_strength is None:
        max_strength = max(needed_strength, 1)
    elif needed_strength > max_strength:
        raise CapacityError(
            f"network needs crosspoint gain {needed_strength} but the chip "
            f"provides {max_strength}"
        )
    tasks: List[SliceTask] = []
    for layer_index, layer in enumerate(network.layers):
        check_capacity(layer, sc_per_npe)
        weights = layer.signed_weights
        m, k = weights.shape
        for out_start in range(0, k, chip_n):
            out_end = min(out_start + chip_n, k)
            first = True
            # Reordering across slices: every inhibitory pass (all input
            # slices) streams before any excitatory pass, so the membrane
            # reaches its floor before excitation can cross the threshold.
            for polarity in (Polarity.SET0, Polarity.SET1):
                for in_start in range(0, m, chip_n):
                    in_end = min(in_start + chip_n, m)
                    block = weights[in_start:in_end, out_start:out_end]
                    if polarity is Polarity.SET0:
                        gains = np.maximum(-block, 0)
                    else:
                        gains = np.maximum(block, 0)
                    padded = np.zeros((chip_n, chip_n), dtype=np.int64)
                    padded[: block.shape[0], : block.shape[1]] = gains
                    tasks.append(
                        SliceTask(
                            layer_index=layer_index,
                            out_slice=(out_start, out_end),
                            in_slice=(in_start, in_end),
                            polarity=polarity,
                            strengths=padded,
                            first_pass_of_out_slice=first,
                        )
                    )
                    first = False
    return BitSlicePlan(
        chip_n=chip_n,
        tasks=tasks,
        layer_shapes=[(l.in_features, l.out_features)
                      for l in network.layers],
        max_strength=max_strength,
        network=network,
    )
