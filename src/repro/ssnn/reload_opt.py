"""Reload-minimising pass reordering (paper section 4.2.2).

Weight reloading "only occurs between buckets with different attributes";
the paper reorders synapses so that "inputs from adjacent batches that pass
through the same cross structure share the same weight strength", cutting
the reload frequency.  In bit-slice terms: within one (output slice,
polarity) phase, the *order of the input slices is free* -- any order
streams the same synapses and preserves the inhibitory-first guarantee --
so we can sequence the pass matrices to maximise crosspoint overlap
between neighbours.

:func:`optimize_plan` applies a greedy nearest-neighbour chain on the
Hamming distance between strength matrices (the number of crosspoints that
would reload).  The result is verified to be semantics-preserving by
:mod:`repro.ssnn.verification`'s reconstruction check (and by tests).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ssnn.bitslice import BitSlicePlan, SliceTask


def _reload_cost(a: np.ndarray, b: np.ndarray) -> int:
    """Crosspoints that change configuration between two passes."""
    return int((a != b).sum())


def optimize_plan(plan: BitSlicePlan) -> BitSlicePlan:
    """Reorder input slices within each (layer, out-slice, polarity) phase
    to minimise crosspoint reloads (greedy nearest-neighbour).

    Returns a new plan; the input plan is unchanged.  Phase boundaries,
    polarity ordering and the set of passes are preserved exactly, so the
    optimised plan computes the same network (checked by
    :func:`repro.ssnn.verification.verify_plan`).
    """
    if not plan.tasks:
        raise ConfigurationError("cannot optimise an empty plan")
    # Group tasks by phase, preserving phase order of first appearance.
    phase_order: List[Tuple] = []
    phases: Dict[Tuple, List[SliceTask]] = {}
    for task in plan.tasks:
        key = (task.layer_index, task.out_slice, task.polarity)
        if key not in phases:
            phases[key] = []
            phase_order.append(key)
        phases[key].append(task)

    new_tasks: List[SliceTask] = []
    current = np.zeros((plan.chip_n, plan.chip_n), dtype=np.int64)
    for key in phase_order:
        remaining = list(phases[key])
        while remaining:
            best_index = min(
                range(len(remaining)),
                key=lambda i: _reload_cost(current,
                                           remaining[i].strengths),
            )
            task = remaining.pop(best_index)
            new_tasks.append(task)
            current = task.strengths

    # The first pass of each output slice may have moved: recompute the
    # preload markers so thresholds are still written exactly once per
    # output slice, at its first pass.
    rebuilt: List[SliceTask] = []
    seen = set()
    for task in new_tasks:
        key = (task.layer_index, task.out_slice)
        first = key not in seen
        seen.add(key)
        rebuilt.append(SliceTask(
            layer_index=task.layer_index,
            out_slice=task.out_slice,
            in_slice=task.in_slice,
            polarity=task.polarity,
            strengths=task.strengths,
            first_pass_of_out_slice=first,
        ))
    return BitSlicePlan(
        chip_n=plan.chip_n,
        tasks=rebuilt,
        layer_shapes=list(plan.layer_shapes),
        max_strength=plan.max_strength,
        network=plan.network,
    )


def reload_reduction(plan: BitSlicePlan) -> Dict[str, float]:
    """Reload statistics before/after optimisation.

    Returns a dict with ``before``, ``after`` (crosspoint reload events)
    and ``reduction`` (fraction saved).
    """
    before = plan.reload_events()
    after = optimize_plan(plan).reload_events()
    return {
        "before": before,
        "after": after,
        "reduction": (before - after) / before if before else 0.0,
    }
