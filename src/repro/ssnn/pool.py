"""Supervised persistent shared-memory inference pool (serving tier 2).

The interim multi-core path spawned a ``ProcessPoolExecutor`` *per
``infer()`` call* and pickled the full layer list once per row chunk --
for a serving workload that is pure overhead on the hot path.
:class:`InferencePool` inverts the lifecycle:

* **Workers spawn once.**  Each worker receives the pickled
  :class:`~repro.ssnn.compile.CompiledNetwork` exactly once, at start-up
  (the compile-once artifact is the only thing that ever crosses the
  process boundary by value).
* **Row blocks travel by shared memory.**  Every call writes the input
  rows into a reusable ``multiprocessing.shared_memory`` segment and the
  workers write their decision shards into a shared output segment;
  the per-call queue traffic is a handful of tuples of ints -- zero
  pickling of weights or row data.
* **Scratch buffers persist.**  The input/output segments are
  preallocated and grown geometrically, so steady-state serving does no
  segment creation at all.

Row shards are independent, so worker count never changes results --
:meth:`InferencePool.infer_rows` is bit-identical to
:meth:`CompiledNetwork.forward_rows` (asserted by
``tests/ssnn/test_pool.py``).

Supervision (see ``docs/SERVING.md`` -- "Failure semantics")
------------------------------------------------------------

SUSHI's own evaluation leans on surviving physical failure modes (JJ
yield, flux trapping); the serving layer extends that discipline to
*process-level* chaos.  Each worker owns a private task queue, so the
parent always knows which shards a worker holds:

* **Resurrection.**  A dead worker (crash, OOM-kill, SIGKILL) is
  detected by liveness polling during the result wait; the parent
  respawns it into the same slot (fresh queue, same pickled plan) and
  re-dispatches *only the missing shards* to the surviving/respawned
  workers.  Shard accounting is exactly-once per row block per epoch
  (a ``completed`` map keyed by shard index), so recovered results --
  and their spurious/synops counters -- are provably bit-identical to
  a serial :meth:`CompiledNetwork.forward_rows` run.
* **Frozen workers.**  ``result_timeout_s`` is a *progress* deadline:
  if no shard lands within it, the workers still holding shards are
  force-killed (``SIGKILL`` -- a frozen/SIGSTOPped process ignores
  SIGTERM), respawned and their shards re-dispatched.
* **Poison quarantine.**  A row block whose execution kills workers in
  two separate recovery rounds is quarantined: the pool (already
  restored to full worker count) raises :class:`PoisonBatchError` and
  the caller routes that block to serial execution, keeping the pool
  for subsequent blocks.
* **Segment epoch guard.**  The input segment carries a 16-byte
  ``(job, epoch)`` header; workers validate it before computing and
  re-validate immediately before the only externally visible write.  A
  task surviving from an aborted job (a *zombie*) therefore cannot
  scribble into a successor's buffers.  Vanished/corrupted segments
  surface as retryable shard failures: the parent retires both
  segments, republishes the rows under a bumped epoch, and re-runs the
  whole block.
* **Stale-task drain.**  When a call aborts mid-flight, its
  unaccounted tasks are drained from the worker queues (and the result
  queue) before the next call reuses the segments; anything still
  unaccounted after a short grace forces fresh segment names, so a
  recycled name can never be written by a zombie.

Zero-failure overhead of all of the above is a 16-byte header write per
call plus per-shard dict bookkeeping -- gated below 5% against the
pre-supervision pool replica by ``benchmarks/test_supervision_overhead.py``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue as queue_module
import struct
import threading
import time
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ssnn.compile import CompiledNetwork

#: Bytes reserved at the head of the input segment for the packed
#: ``(job, epoch)`` guard workers validate before computing/writing.
_HEADER = 16

#: Worker-death recovery rounds tolerated per row block before the block
#: is quarantined as poison ("kills workers twice" -> quarantine).
_MAX_KILL_ROUNDS = 2

#: Segment republish rounds tolerated per row block (vanished/corrupted
#: shared memory) before the call fails.
_MAX_SEGMENT_ROUNDS = 3


class InferencePoolError(RuntimeError):
    """The pool cannot serve (worker died, closed pool, bad shard).

    Derives from :class:`RuntimeError` so existing degrade-to-serial
    ``except`` clauses catch it alongside ``BrokenProcessPool``.
    """


class PoisonBatchError(InferencePoolError):
    """A row block killed pool workers in two recovery rounds.

    The pool has already been restored to its full worker count when
    this is raised; the *block* is the suspect, not the pool.  Callers
    (the runtime and the serving layer) run the quarantined block
    serially -- bit-identical, only slower -- and keep using the pool
    for subsequent blocks.
    """


def _attach_shm(name: str):
    """Attach to an existing shared-memory segment without letting the
    resource tracker adopt it (the creator owns the unlink; a tracked
    attachment in a worker would trigger spurious leak warnings and
    double unlinks at interpreter shutdown)."""
    from multiprocessing import shared_memory

    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Older interpreters: suppress the tracker registration during
        # attach.  (Unregistering *after* the fact would clobber the
        # creator's registration too -- fork-context workers share the
        # tracker daemon with the parent.)
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        try:
            resource_tracker.register = lambda *a, **k: None
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _pack_guard(job: int, epoch: int) -> bytes:
    return struct.pack("<QQ", job & 0xFFFFFFFFFFFFFFFF, epoch)


def _worker_main(slot, payload, tasks, results, chaos_hook=None) -> None:
    """Worker loop: deserialize the compiled plan once, then serve row
    shards from this slot's private queue until the ``None`` sentinel.

    Results are ``(job, epoch, shard, spurious, synops, status, msg)``
    with ``status`` one of ``"ok"`` (shard done), ``"shm"`` (segment
    vanished -- retryable), ``"stale"`` (epoch guard mismatch -- the
    task outlived its job) or ``"error"`` (execution failed).
    """
    compiled: CompiledNetwork = pickle.loads(payload)
    while True:
        task = tasks.get()
        if task is None:
            return
        (job, epoch, shard, in_name, shape, out_name, start, end) = task
        guard = _pack_guard(job, epoch)
        try:
            if chaos_hook is not None:
                chaos_hook(slot, job, epoch, shard, in_name, out_name)
            try:
                shm_in = _attach_shm(in_name)
            except FileNotFoundError:
                results.put((job, epoch, shard, 0, 0, "shm",
                             f"input segment {in_name} vanished"))
                continue
            try:
                if bytes(shm_in.buf[:_HEADER]) != guard:
                    results.put((job, epoch, shard, 0, 0, "stale",
                                 "input epoch guard mismatch"))
                    continue
                rows = np.ndarray(
                    tuple(shape), dtype=np.float64,
                    buffer=shm_in.buf, offset=_HEADER,
                )
                decisions, spurious, synops = compiled.forward_rows(
                    rows[start:end]
                )
                del rows
                try:
                    shm_out = _attach_shm(out_name)
                except FileNotFoundError:
                    results.put((job, epoch, shard, 0, 0, "shm",
                                 f"output segment {out_name} vanished"))
                    continue
                try:
                    # Re-validate immediately before the only externally
                    # visible write: a zombie task of an aborted job must
                    # never scribble into a successor's buffers.
                    if bytes(shm_in.buf[:_HEADER]) != guard:
                        results.put((job, epoch, shard, 0, 0, "stale",
                                     "input epoch guard changed mid-task"))
                        continue
                    out = np.ndarray(
                        (shape[0], compiled.out_features),
                        dtype=np.float64,
                        buffer=shm_out.buf,
                    )
                    out[start:end] = decisions
                    del out
                finally:
                    shm_out.close()
            finally:
                shm_in.close()
            results.put((job, epoch, shard, spurious, synops, "ok", None))
        except Exception as exc:  # surface the traceback to the parent
            import traceback

            results.put((job, epoch, shard, 0, 0, "error",
                         f"{exc}\n{traceback.format_exc()}"))


def _shutdown(procs, task_queues, segments) -> None:
    """Finalizer-safe teardown: sentinel the workers, reap them, unlink
    any surviving shared-memory segments.  ``procs`` / ``task_queues``
    are mutated in place by respawns, so the finalizer always sees the
    current generation."""
    for tasks in list(task_queues):
        try:
            tasks.put_nowait(None)
        except Exception:
            pass
    deadline = time.monotonic() + 2.0
    for proc in list(procs):
        try:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()  # SIGKILL: reaps frozen (SIGSTOPped) workers too
                proc.join(timeout=1.0)
        except Exception:
            pass
    for tasks in list(task_queues):
        try:
            tasks.close()
            tasks.cancel_join_thread()
        except Exception:
            pass
    for shm in list(segments):
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
    segments.clear()


class InferencePool:
    """A supervised, persistent worker pool executing one compiled plan.

    Args:
        compiled: The :class:`~repro.ssnn.compile.CompiledNetwork` every
            worker executes (shipped once, at spawn).
        workers: Worker process count (>= 1).
        start_method: ``multiprocessing`` start method (``None`` = the
            platform default; ``fork`` on Linux).
        result_timeout_s: Progress deadline: maximum wait without any
            shard landing before the workers still holding shards are
            presumed frozen, force-killed and respawned.
        chaos_hook: Optional picklable callable
            ``(slot, job, epoch, shard, in_name, out_name)`` executed in
            the worker before each task -- fault-injection
            instrumentation for the chaos harness
            (:mod:`repro.harness.chaos`); leave ``None`` in production.

    Thread safety: one in-flight :meth:`infer_rows` at a time (guarded
    by an internal lock) -- the serving layer funnels batches through a
    single dispatcher thread anyway.

    Supervision surface: :meth:`alive_workers`, :attr:`restarts`,
    :meth:`ensure_workers` (respawn any dead workers between calls) and
    :class:`PoisonBatchError` for quarantined row blocks.
    """

    def __init__(
        self,
        compiled: CompiledNetwork,
        workers: int = 2,
        start_method: Optional[str] = None,
        result_timeout_s: float = 60.0,
        chaos_hook: Optional[Callable] = None,
    ):
        import multiprocessing as mp

        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if result_timeout_s <= 0:
            raise ConfigurationError("result_timeout_s must be > 0")
        self.compiled = compiled
        self.workers = workers
        self.result_timeout_s = result_timeout_s
        self._ctx = mp.get_context(start_method)
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._jobs = itertools.count()
        self._segments: List = []  # [input shm, output shm] when allocated
        self._segment_gen = itertools.count()
        self._closed = False
        self._restarts = 0
        self._stale_tasks = 0
        self._rr = 0  # round-robin dispatch cursor
        self._chaos_hook = chaos_hook
        self._payload = pickle.dumps(
            compiled, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._procs: List = []
        self._task_queues: List = []
        for slot in range(workers):
            proc, tasks = self._spawn(slot)
            self._procs.append(proc)
            self._task_queues.append(tasks)
        # GC / interpreter-exit safety net; explicit close() is preferred.
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._task_queues, self._segments
        )

    # -- workers -------------------------------------------------------------

    def _spawn(self, slot: int):
        """Start one worker into ``slot`` with a fresh private queue."""
        tasks = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(slot, self._payload, tasks, self._results,
                  self._chaos_hook),
            daemon=True,
            name=f"sushi-infer-{slot}",
        )
        proc.start()
        return proc, tasks

    def _respawn_locked(self, slot: int, force_kill: bool = False) -> List:
        """Replace the worker in ``slot`` (dead or presumed frozen) with
        a fresh process + queue.  Returns the tasks drained out of the
        old queue so the caller can account/re-dispatch them."""
        old_proc = self._procs[slot]
        try:
            if force_kill and old_proc.is_alive():
                old_proc.kill()  # SIGKILL beats SIGSTOP; terminate() doesn't
            old_proc.join(timeout=1.0)
        except Exception:
            pass
        old_queue = self._task_queues[slot]
        drained = []
        while True:
            try:
                task = old_queue.get_nowait()
            except Exception:
                break
            if task is not None:
                drained.append(task)
        try:
            old_queue.close()
            old_queue.cancel_join_thread()
        except Exception:
            pass
        proc, tasks = self._spawn(slot)
        self._procs[slot] = proc
        self._task_queues[slot] = tasks
        self._restarts += 1
        return drained

    def _supervise_locked(self) -> None:
        """Between calls: resurrect any worker that died while idle."""
        for slot, proc in enumerate(self._procs):
            if not proc.is_alive():
                for _task in self._respawn_locked(slot):
                    self._stale_tasks = max(0, self._stale_tasks - 1)

    def ensure_workers(self) -> int:
        """Respawn any dead workers and return the alive count (the
        serving layer's health probe)."""
        with self._lock:
            if self._closed:
                return 0
            self._supervise_locked()
            return self.alive_workers()

    # -- buffers -------------------------------------------------------------

    def _segment(self, index: int, nbytes: int):
        """Reusable shared segment ``index`` (0 = input, 1 = output),
        grown geometrically when too small.  Names embed a generation
        counter, so a retired name is never reissued."""
        from multiprocessing import shared_memory

        while len(self._segments) <= index:
            self._segments.append(None)
        current = self._segments[index]
        if current is not None and current.size >= nbytes:
            return current
        if current is not None:
            current.close()
            current.unlink()
        size = max(nbytes, 1)
        if current is not None:
            size = max(size, 2 * current.size)
        name = (f"sushi-pool-{os.getpid()}-{id(self) & 0xFFFFFF:x}-"
                f"{index}-{next(self._segment_gen)}")
        self._segments[index] = shared_memory.SharedMemory(
            name=name, create=True, size=size
        )
        return self._segments[index]

    def _retire_segments_locked(self) -> None:
        """Unlink both segments so the next call publishes under fresh
        names.  The input header is zeroed first, so any zombie task
        still attached fails its pre-write guard re-validation instead
        of scribbling."""
        for index, shm in enumerate(self._segments):
            if shm is None:
                continue
            try:
                if index == 0 and shm.size >= _HEADER:
                    shm.buf[:_HEADER] = b"\x00" * _HEADER
            except Exception:
                pass
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
            self._segments[index] = None

    def _drain_stale_locked(self) -> None:
        """Resolve tasks left over from an aborted call before the
        segments are reused (see module docstring)."""
        if self._stale_tasks <= 0:
            return
        # 1. Pull never-started tasks straight back out of the queues.
        for tasks in self._task_queues:
            while self._stale_tasks > 0:
                try:
                    task = tasks.get_nowait()
                except Exception:
                    break
                if task is not None:
                    self._stale_tasks -= 1
        # 2. Give in-flight zombies a short grace to report.
        deadline = time.monotonic() + 0.25
        while self._stale_tasks > 0 and time.monotonic() < deadline:
            try:
                self._results.get(timeout=0.05)
                self._stale_tasks -= 1
            except queue_module.Empty:
                continue
        # 3. Anything still unaccounted for may be executing against the
        # current segments: retire them, so a zombie write can only land
        # in memory nothing will ever read again.
        if self._stale_tasks > 0:
            self._retire_segments_locked()
            self._stale_tasks = 0

    @staticmethod
    def _shards(n_rows: int, parts: int) -> List[Tuple[int, int]]:
        """Balanced contiguous row ranges (like ``np.array_split``)."""
        parts = max(1, min(parts, n_rows))
        base, extra = divmod(n_rows, parts)
        ranges = []
        start = 0
        for i in range(parts):
            end = start + base + (1 if i < extra else 0)
            ranges.append((start, end))
            start = end
        return ranges

    def _next_slot(self) -> int:
        slot = self._rr
        self._rr = (self._rr + 1) % self.workers
        return slot

    # -- execution -----------------------------------------------------------

    def infer_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Run a row block through the pool.

        Returns ``(decisions, spurious, synops)`` bit-identical to
        ``self.compiled.forward_rows(rows)`` -- including across worker
        deaths, freezes and segment loss, which are recovered
        transparently.  Raises :class:`PoisonBatchError` when the block
        itself keeps killing workers (run it serially) and
        :class:`InferencePoolError` for unrecoverable failures.
        """
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.compiled.in_features:
            raise ConfigurationError(
                f"expected (batch, {self.compiled.in_features}) rows, "
                f"got {rows.shape}"
            )
        if rows.shape[0] == 0:
            return (
                np.zeros((0, self.compiled.out_features)), 0, 0,
            )
        with self._lock:
            if self._closed:
                raise InferencePoolError("inference pool is closed")
            self._supervise_locked()
            self._drain_stale_locked()
            return self._run_block_locked(rows)

    def _run_block_locked(self, rows: np.ndarray):
        n_rows = rows.shape[0]
        out_shape = (n_rows, self.compiled.out_features)
        job = next(self._jobs)
        epoch = 0
        shards = self._shards(n_rows, self.workers)
        state: Dict[str, object] = {"in": None, "out": None}
        assignment: Dict[int, int] = {}  # shard -> worker slot
        completed: Dict[int, Tuple[int, int]] = {}  # exactly-once ledger
        kill_rounds = 0
        segment_rounds = 0

        def publish() -> None:
            """(Re)write rows + ``(job, epoch)`` guard into the current
            segments (allocating/regrowing as needed)."""
            shm_in = self._segment(0, _HEADER + rows.nbytes)
            shm_out = self._segment(1, int(np.prod(out_shape)) * 8)
            np.ndarray(
                rows.shape, np.float64, buffer=shm_in.buf, offset=_HEADER
            )[...] = rows
            shm_in.buf[:_HEADER] = _pack_guard(job, epoch)
            state["in"], state["out"] = shm_in, shm_out

        def dispatch(indices: Sequence[int]) -> None:
            for shard in indices:
                slot = self._next_slot()
                assignment[shard] = slot
                start, end = shards[shard]
                self._task_queues[slot].put((
                    job, epoch, shard, state["in"].name, tuple(rows.shape),
                    state["out"].name, start, end,
                ))

        def recover_workers(slots: Sequence[int], force_kill: bool) -> None:
            """Respawn the given slots, re-dispatching only the missing
            shards they held.  Second recovery round -> poison."""
            nonlocal kill_rounds
            kill_rounds += 1
            suspects = set(slots)
            for slot in sorted(suspects):
                for task in self._respawn_locked(slot, force_kill=force_kill):
                    if task[0] != job:
                        self._stale_tasks = max(0, self._stale_tasks - 1)
            if kill_rounds >= _MAX_KILL_ROUNDS:
                # The pool is whole again; the block is the suspect.
                raise PoisonBatchError(
                    f"row block ({n_rows} rows) killed pool workers in "
                    f"{kill_rounds} recovery rounds; quarantined -- run "
                    "this block serially"
                )
            missing = [
                shard for shard in range(len(shards))
                if shard not in completed and assignment[shard] in suspects
            ]
            dispatch(missing)

        def republish(reason: str) -> None:
            """Segment vanished/corrupted: fresh names, bumped epoch,
            rerun the whole block (the ledger restarts with it)."""
            nonlocal epoch, segment_rounds
            segment_rounds += 1
            if segment_rounds >= _MAX_SEGMENT_ROUNDS:
                raise InferencePoolError(
                    f"shared-memory segments failed {segment_rounds} "
                    f"times for one row block:\n{reason}"
                )
            epoch += 1
            completed.clear()
            assignment.clear()
            self._retire_segments_locked()
            publish()
            dispatch(range(len(shards)))

        publish()
        dispatch(range(len(shards)))
        progress_deadline = time.monotonic() + self.result_timeout_s
        try:
            while len(completed) < len(shards):
                try:
                    (rjob, repoch, shard, spurious, synops, status,
                     message) = self._results.get(timeout=0.05)
                except queue_module.Empty:
                    dead = [slot for slot, proc in enumerate(self._procs)
                            if not proc.is_alive()]
                    if dead:
                        recover_workers(dead, force_kill=False)
                    elif time.monotonic() > progress_deadline:
                        frozen = {
                            assignment[shard]
                            for shard in range(len(shards))
                            if shard not in completed
                        }
                        recover_workers(sorted(frozen), force_kill=True)
                    else:
                        continue
                    progress_deadline = (
                        time.monotonic() + self.result_timeout_s
                    )
                    continue
                if rjob != job:
                    # Leftover of an aborted earlier call.
                    self._stale_tasks = max(0, self._stale_tasks - 1)
                    continue
                if repoch != epoch or shard in completed:
                    continue  # superseded epoch / duplicate delivery
                if status == "ok":
                    completed[shard] = (spurious, synops)
                    progress_deadline = (
                        time.monotonic() + self.result_timeout_s
                    )
                elif status in ("shm", "stale"):
                    republish(str(message))
                    progress_deadline = (
                        time.monotonic() + self.result_timeout_s
                    )
                else:
                    raise InferencePoolError(
                        f"inference pool worker failed:\n{message}"
                    )
        except BaseException:
            # Whatever was dispatched in the current epoch and never
            # resolved is now stale; the next call drains it before the
            # segments are reused.
            self._stale_tasks += len(shards) - len(completed)
            raise
        decisions = np.array(
            np.ndarray(out_shape, np.float64, buffer=state["out"].buf),
            copy=True,
        )
        total_spurious = sum(entry[0] for entry in completed.values())
        total_synops = sum(entry[1] for entry in completed.values())
        return decisions, total_spurious, total_synops

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def restarts(self) -> int:
        """Workers respawned over the pool's lifetime (0 = no failures)."""
        return self._restarts

    def alive_workers(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    def close(self) -> None:
        """Shut the workers down and release the shared segments.
        Idempotent, safe to call from ``finally`` blocks, and safe to
        race an in-flight :meth:`infer_rows` (it finishes first)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._finalizer()

    def __enter__(self) -> "InferencePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.alive_workers()} alive"
        return (f"<InferencePool workers={self.workers} ({state}) "
                f"restarts={self._restarts} "
                f"plan={self.compiled.fingerprint[:12]}>")
