"""The encoding phase: pulse-stream timing (paper Fig. 12, sections 5.2/6.3).

SUSHI's first inference phase runs off-chip, once per trained network: the
weight-configuration and input pulse streams are encoded against the RSFQ
cell constraints (Table 1) and the asynchronous neuron timing rules.  This
module computes the *time structure* of those streams -- pass protocol
overheads, constraint-spaced spike pulses, and weight-reload latencies --
producing the per-inference durations behind the paper's FPS figure and the
"weight reloading accounts for ~20% of inference time" analysis.

Reload latency is dominated by the flight time of the control pulse to the
crosspoint NDRO (reloads happen in parallel per synapse, off the inference
critical path), so it scales with the mesh span rather than with how many
crosspoints change (section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.neuro.timing import TimingPolicy
from repro.neuro.weights import DEFAULT_STAGGER
from repro.ssnn.bitslice import BitSlicePlan


@dataclass(frozen=True)
class InferenceTiming:
    """Timing constants of the encoded streams.

    Attributes:
        policy: Pulse-spacing policy (Table 1 intervals with margins).
        sc_per_npe: SC chain length (sets ripple settle times).
        reload_base_ps: Fixed part of a weight-reload latency (driver and
            converter delays).
        reload_per_span_ps: Added reload latency per mesh-pitch unit the
            control pulse travels (the "delays encountered by weight
            control pulses in reaching NDRO per synapse at various
            scales").
        line_delay_per_span_ps: Transmission delay per mesh-pitch unit on
            the row/column lines (drives the section 6.3A delay-fraction
            analysis).
    """

    policy: TimingPolicy = field(default_factory=TimingPolicy)
    sc_per_npe: int = 10
    reload_base_ps: float = 1000.0
    reload_per_span_ps: float = 20.0
    line_delay_per_span_ps: float = 14.0

    def row_spacing(self, max_strength: int) -> float:
        """Spacing between consecutive spiking rows within one pass."""
        return (
            self.policy.input_interval
            + DEFAULT_STAGGER * (max_strength - 1)
            + 15.0
        )

    def pass_protocol_ps(self) -> float:
        """Protocol pulses bracketing one pass: row-relay reset, preload,
        polarity set (three settle windows)."""
        return 3.0 * self.policy.settle_time(self.sc_per_npe)

    def timestep_protocol_ps(self) -> float:
        """Column reset + threshold preload at a time-step boundary."""
        return 2.0 * self.policy.settle_time(self.sc_per_npe)

    def reload_latency_ps(self, chip_n: int) -> float:
        """Weight-reload latency on an n x n mesh (parallel per synapse)."""
        return self.reload_base_ps + self.reload_per_span_ps * chip_n

    def transmission_ps(self, chip_n: int) -> float:
        """Per-pulse transmission delay across the mesh span (row plus
        column traversal)."""
        return self.line_delay_per_span_ps * 2.0 * chip_n


@dataclass
class EncodedInference:
    """Aggregate timing of a full inference (all time steps, all slices).

    All times are picoseconds *per input sample*.
    """

    chip_n: int
    time_steps: int
    input_time_ps: float
    reload_time_ps: float
    protocol_time_ps: float
    transmission_time_ps: float
    synaptic_ops: int
    spikes_streamed: int
    reload_passes: int
    total_passes: int

    @property
    def total_ps(self) -> float:
        return (
            self.input_time_ps
            + self.reload_time_ps
            + self.protocol_time_ps
            + self.transmission_time_ps
        )

    @property
    def reload_fraction(self) -> float:
        """Fraction of inference time spent on weight reloading (the paper
        reports ~20% on average after optimisation)."""
        total = self.total_ps
        return self.reload_time_ps / total if total > 0 else 0.0

    @property
    def transmission_fraction(self) -> float:
        """Fraction of time attributable to line transmission (6% at 1x1 to
        ~53% at 16x16 in the paper's section 6.3A)."""
        total = self.total_ps
        return self.transmission_time_ps / total if total > 0 else 0.0

    @property
    def fps(self) -> float:
        """Inferences per second at this duration."""
        total = self.total_ps
        return 1e12 / total if total > 0 else float("inf")

    def sops(self) -> float:
        """Synaptic operations per second achieved by this inference."""
        total = self.total_ps
        return self.synaptic_ops / (total * 1e-12) if total > 0 else 0.0


def encode_inference(
    plan: BitSlicePlan,
    spike_trains: np.ndarray,
    timing: InferenceTiming = None,
) -> EncodedInference:
    """Compute the encoded stream timing of one sample's inference.

    Args:
        plan: Bit-slice program for the network/mesh.
        spike_trains: (T, in_features) binary input train of one sample.
        timing: Timing constants; defaults to :class:`InferenceTiming`.

    The network's hidden-layer activity is computed with the reference
    integer semantics so that inner layers' pass timings use their real
    spike counts.
    """
    timing = timing or InferenceTiming()
    spike_trains = np.asarray(spike_trains)
    if spike_trains.ndim != 2:
        raise ConfigurationError("spike_trains must be (T, in_features)")
    if spike_trains.shape[1] != plan.layer_shapes[0][0]:
        raise ConfigurationError(
            f"spike train width {spike_trains.shape[1]} != network input "
            f"{plan.layer_shapes[0][0]}"
        )
    n = plan.chip_n
    spacing = timing.row_spacing(plan.max_strength)
    per_pulse_transmission = timing.transmission_ps(n)

    input_time = 0.0
    reload_time = 0.0
    protocol_time = 0.0
    transmission_time = 0.0
    synaptic_ops = 0
    spikes_streamed = 0
    reload_passes = 0

    time_steps = spike_trains.shape[0]
    # Layer activity per time step (stateless forward).
    from repro.ssnn.runtime import layer_activity  # local import: no cycle

    activity = layer_activity(plan, spike_trains)

    current = np.zeros((n, n), dtype=np.int64)
    out_slices_per_layer = [
        shapes[1] for shapes in plan.slice_counts()
    ]
    for t in range(time_steps):
        # Column reset/preload per output slice per time step.
        total_out_slices = sum(out_slices_per_layer)
        protocol_time += total_out_slices * timing.timestep_protocol_ps()
        for task in plan.tasks:
            layer_spikes = activity[task.layer_index][t]
            rows = layer_spikes[task.in_slice[0]:task.in_slice[1]]
            n_spiking = int(rows.sum())
            changed = int((task.strengths != current).sum())
            if changed:
                reload_time += timing.reload_latency_ps(n)
                reload_passes += 1
            current = task.strengths
            protocol_time += timing.pass_protocol_ps()
            if n_spiking:
                input_time += n_spiking * spacing
                transmission_time += n_spiking * per_pulse_transmission
                spikes_streamed += n_spiking
                active = task.strengths[:rows.shape[0], :] > 0
                synaptic_ops += int(
                    (rows[:, None] * active).sum()
                )
    return EncodedInference(
        chip_n=n,
        time_steps=time_steps,
        input_time_ps=input_time,
        reload_time_ps=reload_time,
        protocol_time_ps=protocol_time,
        transmission_time_ps=transmission_time,
        synaptic_ops=synaptic_ops,
        spikes_streamed=spikes_streamed,
        reload_passes=reload_passes,
        total_passes=len(plan.tasks) * time_steps,
    )
