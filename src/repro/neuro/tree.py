"""The tree on-chip network at gate level (paper Fig. 11(a)).

The tree network maximises SPL/CB usage: one input line fans out through a
splitter tree to every NPE (so all NPEs see the same, *normalised-weight*
stimulus -- optionally pre-scaled by a single shared pulse-gain weight
structure at the root), and the NPE outputs merge back through a CB tree
onto one line.  It has almost no line crossings and the smallest wiring
footprint, but cannot express per-pair weights -- the trade-off the paper
discusses against the mesh (section 4.2.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.npe import DEFAULT_SC_COUNT, GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.structure import fanout_tree, merge_tree
from repro.neuro.timing import TimingPolicy
from repro.neuro.weights import GateLevelWeightStructure
from repro.rsfq import library
from repro.rsfq.netlist import Netlist
from repro.rsfq.simulator import Simulator


class GateLevelTreeNetwork:
    """``n`` NPEs behind one shared input line (gate-level Fig. 11(a)).

    Args:
        n: Number of neuron NPEs on the tree.
        sc_per_npe: SC chain length per NPE.
        root_strength: Maximum gain of the shared root weight structure
            (1 = a plain line).
    """

    def __init__(self, n: int, sc_per_npe: int = DEFAULT_SC_COUNT,
                 root_strength: int = 1, wire_delay: float = 1.0):
        if n < 1:
            raise ConfigurationError("tree size must be >= 1")
        self.n = n
        self.net = Netlist(f"tree_{n}")
        self.input = self.net.add(library.DCSFQ("in0"))
        self.root_weight: Optional[GateLevelWeightStructure] = None
        source: Tuple[object, str] = (self.input, "dout")
        if root_strength > 1:
            self.root_weight = GateLevelWeightStructure(
                self.net, "rootw", max_strength=root_strength
            )
            cell, port = self.root_weight.axon_input
            self.net.connect(source[0], source[1], cell, port,
                             delay=wire_delay)
            source = self.root_weight.column_output
        fan_in, leaves = fanout_tree(self.net, "fan", n, wire_delay)
        self.net.connect(source[0], source[1], fan_in[0], fan_in[1],
                         delay=wire_delay)
        self.npes: List[GateLevelNPE] = []
        merge_ins, merge_out = merge_tree(self.net, "merge", n, wire_delay)
        for i in range(n):
            npe = GateLevelNPE(self.net, f"npe{i}", sc_per_npe, wire_delay,
                               attach_driver=False)
            cell, port = npe.data_input()
            self.net.connect(leaves[i][0], leaves[i][1], cell, port,
                             delay=wire_delay + i * 45.0, jtl_count=2)
            dst_cell, dst_port = merge_ins[i]
            npe.connect_out(dst_cell, dst_port, delay=wire_delay)
            self.npes.append(npe)
        self.out_driver = self.net.add(library.SFQDC("out_drv"))
        self.net.connect(merge_out[0], merge_out[1], self.out_driver,
                         "din", delay=wire_delay)
        self.out_probe = self.net.add(library.Probe("out"))
        self.net.connect(self.out_driver, "dout", self.out_probe, "din",
                         delay=wire_delay)


class TreeDriver:
    """Constraint-clean protocol driver for the tree network."""

    def __init__(self, tree: GateLevelTreeNetwork,
                 sim: Optional[Simulator] = None,
                 policy: Optional[TimingPolicy] = None):
        self.tree = tree
        self.sim = sim or Simulator(tree.net)
        self.policy = policy or TimingPolicy()
        self.cursor = 0.0

    def _advance(self, last: float) -> None:
        self.cursor = last + self.policy.settle_time(
            self.tree.npes[0].n_sc
        ) + 60.0 * self.tree.n

    def configure(self, thresholds: Sequence[int],
                  polarity: Polarity = Polarity.SET1) -> None:
        """Reset every NPE, preload per-NPE thresholds, arm the polarity."""
        if len(thresholds) != self.tree.n:
            raise ConfigurationError("one threshold per NPE required")
        t = self.cursor
        for npe in self.tree.npes:
            cell, port = npe.bus_input("rst")
            self.sim.schedule_input(cell, port, t)
        self._advance(t)
        t = self.cursor
        capacity = 1 << self.tree.npes[0].n_sc
        for npe, threshold in zip(self.tree.npes, thresholds):
            if not 1 <= threshold <= capacity:
                raise CapacityError(f"threshold {threshold} unrepresentable")
            preload = capacity - threshold
            for i in range(npe.n_sc):
                if preload & (1 << i):
                    cell, port = npe.write_input(i)
                    self.sim.schedule_input(cell, port, t)
        self._advance(t)
        t = self.cursor
        channel = "set1" if polarity is Polarity.SET1 else "set0"
        for npe in self.tree.npes:
            cell, port = npe.bus_input(channel)
            self.sim.schedule_input(cell, port, t)
        self._advance(t)
        self.sim.run()
        self.cursor = max(self.cursor, self.sim.now)

    def broadcast(self, pulses: int = 1) -> None:
        """Send ``pulses`` input pulses down the shared tree."""
        if pulses < 0:
            raise ConfigurationError("pulse count must be >= 0")
        spacing = self.policy.input_interval + 45.0 * self.tree.n
        last = self.cursor
        for k in range(pulses):
            last = self.cursor + k * spacing
            self.sim.schedule_input(self.tree.input, "din", last)
        self._advance(last)
        self.sim.run()
        self.cursor = max(self.cursor, self.sim.now)

    def output_pulses(self) -> int:
        """Merged output pulses observed so far."""
        return len(self.tree.out_probe.times)
