"""Asynchronous neuron timing (paper section 5.2).

SUSHI has no clock: correctness only requires a handful of *ordering*
constraints between control and data pulses --

1. ``write`` must follow ``rst``;
2. ``input`` must follow ``set``;
3. ``read`` output is triggered by (and aligned with) ``rst``;

-- plus the per-cell minimum intervals of Table 1.  :class:`TimingPolicy`
centralises the pulse spacings used when encoding streams for the gate-level
chip; :class:`NPEDriver` schedules a full rst -> write -> set -> input
sequence onto a simulated NPE while respecting them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.neuro.npe import GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.rsfq.constraints import TFF_MIN_INTERVAL
from repro.rsfq.simulator import Simulator


@dataclass(frozen=True)
class TimingPolicy:
    """Pulse spacings used when driving gate-level hardware.

    Attributes:
        input_interval: Spacing (ps) between consecutive data pulses on one
            line.  Must exceed the TFF toggle interval (39.9 ps), the
            tightest constraint on the NPE input path.
        control_interval: Spacing between control pulses (rst/set/write) on
            one channel.
        phase_gap: Quiet time between protocol phases (rst -> write -> set
            -> input -> rst), allowing carry ripples and reset feedback to
            settle.  Scaled by chain length via :meth:`settle_time`.
        per_stage_ripple: Worst-case per-SC carry latency (ps) used by
            :meth:`settle_time`.
    """

    input_interval: float = 45.0
    control_interval: float = 50.0
    phase_gap: float = 100.0
    per_stage_ripple: float = 60.0

    def __post_init__(self):
        if self.input_interval <= TFF_MIN_INTERVAL:
            raise ConfigurationError(
                f"input_interval {self.input_interval} ps must exceed the "
                f"TFF toggle interval ({TFF_MIN_INTERVAL} ps)"
            )
        if self.control_interval <= 0 or self.phase_gap <= 0:
            raise ConfigurationError("intervals must be positive")

    def settle_time(self, n_sc: int) -> float:
        """Quiet time needed after a phase for an ``n_sc``-SC chain."""
        return self.phase_gap + self.per_stage_ripple * n_sc


class NPEDriver:
    """Schedules protocol-ordered pulse sequences onto a gate-level NPE.

    Maintains a time cursor; each call appends its pulses after the cursor
    and advances it past the settle time, so arbitrary call sequences remain
    constraint-clean.  The behavioural/gate-level cross-validation tests and
    the Fig. 16 waveform reproduction both drive hardware through this
    class.
    """

    def __init__(self, sim: Simulator, npe: GateLevelNPE,
                 policy: TimingPolicy = None):
        self.sim = sim
        self.npe = npe
        self.policy = policy or TimingPolicy()
        self.cursor = 0.0

    def _advance(self, last_pulse_time: float) -> None:
        self.cursor = last_pulse_time + self.policy.settle_time(self.npe.n_sc)

    # -- protocol phases -----------------------------------------------------

    def reset(self) -> float:
        """Pulse the shared rst bus; returns the pulse time."""
        cell, port = self.npe.bus_input("rst")
        t = self.cursor
        self.sim.schedule_input(cell, port, t)
        self._advance(t)
        return t

    def write_preload(self, value: int) -> None:
        """Pulse the write channel of every SC whose preload bit is 1."""
        if not 0 <= value < (1 << self.npe.n_sc):
            raise ConfigurationError(
                f"preload {value} outside {self.npe.n_sc}-bit range"
            )
        t = self.cursor
        for i in range(self.npe.n_sc):
            if value & (1 << i):
                cell, port = self.npe.write_input(i)
                self.sim.schedule_input(cell, port, t)
        self._advance(t)

    def configure_threshold(self, threshold: int) -> None:
        """Preload ``2**n_sc - threshold`` (fire on the threshold-th pulse)."""
        capacity = 1 << self.npe.n_sc
        if not 1 <= threshold <= capacity:
            raise ConfigurationError(
                f"threshold {threshold} not representable ({self.npe.n_sc} SCs)"
            )
        self.write_preload(capacity - threshold)

    def set_polarity(self, polarity: Polarity) -> None:
        """Pulse the shared set0 or set1 bus."""
        channel = "set1" if polarity is Polarity.SET1 else "set0"
        cell, port = self.npe.bus_input(channel)
        t = self.cursor
        self.sim.schedule_input(cell, port, t)
        self._advance(t)

    def pulses(self, count: int) -> None:
        """Stream ``count`` data pulses into the NPE input."""
        if count < 0:
            raise ConfigurationError("pulse count must be >= 0")
        if count == 0:
            return
        cell, port = self.npe.data_input()
        t = self.cursor
        for k in range(count):
            t = self.cursor + k * self.policy.input_interval
            self.sim.schedule_input(cell, port, t)
        self._advance(t)

    def run(self) -> None:
        """Flush all scheduled events through the simulator."""
        self.sim.run()
        self.cursor = max(self.cursor, self.sim.now)
