"""Chip bring-up: the paper's section 6.2 verification sequence.

Before running the network, the authors "evaluate the functionality of the
NPE implemented on the chip, such as the flip, fire, and reset mechanisms"
by comparing sampled output waveforms against simulation.  This module is
that bring-up harness: a structured battery of mechanism checks executed
on a gate-level chip (optionally with wire-delay jitter standing in for
the physical device), each returning an observed-vs-expected record.

Checks:

* **flip** -- a single input pulse toggles SC0 (and only SC0);
* **carry** -- a second pulse ripples a carry into SC1;
* **fire** -- a threshold preload fires on exactly the threshold-th pulse;
* **reset/read** -- rst returns the written state on the read channels and
  clears the counter;
* **polarity** -- set0 down-counts where set1 up-counts;
* **relay** -- the row NPE regenerates the input spike onto the row line;
* **constraint-clean** -- the whole sequence runs without Table 1
  violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.state_controller import Polarity
from repro.rsfq.waveform import PulseTrace


@dataclass(frozen=True)
class BringupCheck:
    """One mechanism check: observed vs expected."""

    name: str
    expected: str
    observed: str
    passed: bool


@dataclass
class BringupReport:
    """Outcome of a full bring-up run."""

    checks: List[BringupCheck]
    violations: int

    @property
    def passed(self) -> bool:
        return self.violations == 0 and all(c.passed for c in self.checks)

    def to_rows(self) -> List[dict]:
        return [
            {"mechanism": c.name, "expected": c.expected,
             "observed": c.observed, "pass": c.passed}
            for c in self.checks
        ]


def two_npe_bringup_trace(
    sc_per_npe: int = 4,
    jitter_ps: float = 0.0,
    seed: Optional[int] = None,
    engine: str = "sequential",
    parts: int = 2,
    jitter_mode: Optional[str] = None,
) -> PulseTrace:
    """Pulse trace of a canonical 2-NPE bring-up script (Fig. 16 path).

    Drives the fabricated chip's configuration -- one row NPE relaying
    into one column NPE over a 1x1 mesh -- through a fixed little
    inference: threshold preload, weight configuration, an inhibitory
    pass and three excitatory passes (the third crosses the threshold
    and fires).  At ``jitter_ps=0`` the returned
    :class:`~repro.rsfq.waveform.PulseTrace` is bit-reproducible, which
    makes it the reference artefact for the golden-trace snapshot tests;
    with jitter it is deterministic per seed.

    ``engine="parallel"`` runs the identical script on the partitioned
    :class:`~repro.rsfq.parallel.ParallelSimulator` (cut along the chip's
    mesh wires into ``parts`` partitions) -- the golden-equivalence tests
    compare the two engines' traces on this very artefact.  For jittered
    sequential runs, ``jitter_mode`` selects the stream discipline
    (default ``"global"``, the legacy golden-jitter behaviour; use
    ``"wire"`` to match the parallel engine draw-for-draw).
    """
    from repro.errors import ConfigurationError

    chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=sc_per_npe))
    trace = PulseTrace()
    if engine == "parallel":
        sim = chip.parallel_simulator(
            parts=parts, jitter_ps=jitter_ps, seed=seed, trace=trace,
        )
    elif engine == "sequential":
        kwargs = {} if jitter_mode is None else {"jitter_mode": jitter_mode}
        sim = chip.simulator(
            jitter_ps=jitter_ps, seed=seed, trace=trace, **kwargs
        )
    else:
        raise ConfigurationError(
            f"unknown engine '{engine}'; use 'sequential' or 'parallel'"
        )
    driver = ChipDriver(chip, sim)
    driver.begin_timestep([2])
    driver.configure_weights([[1]])
    driver.run_pass(Polarity.SET1, [True])   # membrane 1: below threshold
    driver.run_pass(Polarity.SET0, [True])   # membrane back to 0
    driver.run_pass(Polarity.SET1, [True])   # membrane 1
    driver.run_pass(Polarity.SET1, [True])   # membrane 2: fires
    return trace


def run_bringup(
    sc_per_npe: int = 4,
    jitter_ps: float = 0.0,
    seed: Optional[int] = None,
) -> BringupReport:
    """Execute the section 6.2 mechanism battery on a fresh 1x1 chip."""
    chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=sc_per_npe))
    trace = PulseTrace()
    sim = chip.simulator(jitter_ps=jitter_ps, seed=seed, trace=trace)
    driver = ChipDriver(chip, sim)
    neuron = chip.col_npes[0]
    capacity = chip.config.state_capacity
    checks: List[BringupCheck] = []

    def record(name, expected, observed):
        checks.append(BringupCheck(
            name=name, expected=str(expected), observed=str(observed),
            passed=str(expected) == str(observed),
        ))

    # flip: one pulse -> counter 1 (only SC0 set).
    driver.begin_timestep([capacity])  # threshold = capacity: never fires
    driver.configure_weights([[1]])
    driver.run_pass(Polarity.SET1, [True])
    record("flip (single pulse sets SC0)", 1, neuron.counter_value)

    # carry: second pulse ripples into SC1.
    driver.run_pass(Polarity.SET1, [True])
    record("carry (second pulse ripples)", 2, neuron.counter_value)

    # reset/read: write a pattern, reset, observe the read channels.
    pattern = 0b11
    driver.begin_timestep([capacity - pattern])  # preload = pattern
    reads_before = sum(len(neuron.read_times(i))
                       for i in range(sc_per_npe))
    driver.begin_timestep([capacity])            # reset reads it back
    reads = sum(len(neuron.read_times(i)) for i in range(sc_per_npe))
    record("reset/read (written bits read back)",
           bin(pattern).count("1"), reads - reads_before)
    record("reset clears the counter", 0, neuron.counter_value)

    # fire: threshold T fires on the T-th pulse, not before.
    threshold = 3
    driver.begin_timestep([threshold])
    fires_before = len(chip.fire_times(0))
    for _ in range(threshold - 1):
        driver.run_pass(Polarity.SET1, [True])
    early = len(chip.fire_times(0)) - fires_before
    driver.run_pass(Polarity.SET1, [True])
    fired = len(chip.fire_times(0)) - fires_before
    record("no premature fire", 0, early)
    record("fire on the threshold-th pulse", 1, fired)

    # polarity: set0 down-counts.
    driver.begin_timestep([capacity])
    driver.run_pass(Polarity.SET1, [True])
    driver.run_pass(Polarity.SET1, [True])
    driver.run_pass(Polarity.SET0, [True])
    record("polarity (set0 down-counts)", 1, neuron.counter_value)

    # relay: the row NPE regenerated every streamed spike (2 flip/carry +
    # 3 fire + 3 polarity = 8 passes with a spiking axon).
    relay_pulses = len(trace.times("rowline0.thru", "din"))
    record("relay (row NPE regenerates spikes)", 8, relay_pulses)

    return BringupReport(checks=checks, violations=len(sim.violations))
