"""The SUSHI chip: NPEs plus the mesh network -- paper section 4.2, Fig. 12.

An ``n x n`` SUSHI chip comprises ``2n`` NPEs:

* ``n`` **row NPEs** regenerate incoming spikes onto the row (axon) lines --
  they are configured as threshold-1 relays and fire once per pass (the
  fabricated chip's NPE0 plays this role in Fig. 16);
* ``n`` **column NPEs** are the integrate-and-fire neurons, accumulating
  weighted pulses from the crosspoints in their SC-chain counters.

Every row/column intersection holds a configurable pulse-gain weight
structure (:mod:`repro.neuro.weights`).  A synapse's *sign* is realised by
polarity passes: during an inhibitory pass the column NPEs count down
(set0) and only negative synapses are enabled; during the excitatory pass
they count up (set1) with the positive synapses enabled (see
:mod:`repro.ssnn.bitslice` for the scheduling and DESIGN.md for why this
makes hardware firing equal to the software final-sum decision).

:class:`BehavioralChip` executes this protocol on behavioural components
(fast; used for whole-network inference).  :class:`GateLevelChip` builds the
same machine from RSFQ cells and is cross-validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.neuro.npe import DEFAULT_SC_COUNT, BehavioralNPE, GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.structure import fanout_tree, merge_tree
from repro.neuro.timing import TimingPolicy
from repro.neuro.weights import BehavioralWeightStructure, GateLevelWeightStructure
from repro.rsfq import library
from repro.rsfq.netlist import Netlist
from repro.rsfq.simulator import Simulator


@dataclass(frozen=True)
class ChipConfig:
    """Parameters of a SUSHI chip instance.

    Attributes:
        n: Mesh size (n x n crosspoints, 2n NPEs).
        sc_per_npe: SC-chain length of every NPE (membrane states = 2**sc).
        max_strength: Largest configurable weight gain at a crosspoint.
        with_weights: Whether crosspoint weight structures are placed.  The
            fabricated chip omits them ("we only place the necessary number
            of NPEs without weight structure", section 6) -- all synapses
            then have fixed strength 1.
    """

    n: int = 1
    sc_per_npe: int = DEFAULT_SC_COUNT
    max_strength: int = 1
    with_weights: bool = True

    def __post_init__(self):
        if self.n < 1:
            raise ConfigurationError("mesh size n must be >= 1")
        if self.sc_per_npe < 1:
            raise ConfigurationError("sc_per_npe must be >= 1")
        if self.max_strength < 1:
            raise ConfigurationError("max_strength must be >= 1")

    @property
    def npe_count(self) -> int:
        return 2 * self.n

    @property
    def synapse_count(self) -> int:
        return self.n * self.n

    @property
    def state_capacity(self) -> int:
        return 1 << self.sc_per_npe


class BehavioralChip:
    """Protocol-accurate behavioural model of the SUSHI chip."""

    def __init__(self, config: ChipConfig = None):
        self.config = config or ChipConfig()
        n = self.config.n
        self.row_npes = [
            BehavioralNPE(f"row{i}", self.config.sc_per_npe) for i in range(n)
        ]
        self.col_npes = [
            BehavioralNPE(f"col{j}", self.config.sc_per_npe) for j in range(n)
        ]
        self.crosspoints = [
            [
                BehavioralWeightStructure(
                    f"xp{i}_{j}", max_strength=self.config.max_strength
                )
                for j in range(n)
            ]
            for i in range(n)
        ]
        # Statistics.
        self.synaptic_ops = 0
        self.reload_events = 0
        self.pulses_streamed = 0
        self._out_pulses = [0] * n
        self._underflows = [0] * n
        self._in_timestep = False

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Return the chip to its power-on state, keeping the statistics.

        Equivalent to constructing a fresh :class:`BehavioralChip` except
        that the accumulated counters (:attr:`synaptic_ops`,
        :attr:`reload_events`, :attr:`pulses_streamed`) survive -- this is
        what lets one elaborated chip instance be reused across the samples
        of a batch (see :class:`repro.ssnn.runtime.SushiRuntime`) while
        producing bit-identical results to the rebuild-per-sample path.
        """
        for npe in self.row_npes:
            npe.rst()
        for npe in self.col_npes:
            npe.rst()
        for row in self.crosspoints:
            for xp in row:
                xp.reset_state()
        self._out_pulses = [0] * self.config.n
        self._underflows = [0] * self.config.n
        self._in_timestep = False

    # -- per-timestep protocol ------------------------------------------------

    def begin_timestep(self, thresholds: Sequence[int]) -> List[int]:
        """Reset column NPEs and preload their thresholds.

        Returns the counter values read out by the aligned reset-read (the
        membranes left over from the previous time step).
        """
        if len(thresholds) != self.config.n:
            raise ConfigurationError(
                f"need {self.config.n} thresholds, got {len(thresholds)}"
            )
        reads = []
        for npe, threshold in zip(self.col_npes, thresholds):
            reads.append(npe.rst())
            npe.configure_threshold(threshold)
        self._out_pulses = [0] * self.config.n
        self._underflows = [0] * self.config.n
        self._in_timestep = True
        return reads

    def configure_weights(self, strengths: Sequence[Sequence[int]]) -> int:
        """Reload the crosspoint gains; returns the number of actual
        reloads (unchanged crosspoints cost nothing, section 4.2.2)."""
        if len(strengths) != self.config.n:
            raise ConfigurationError("strength matrix must be n x n")
        if not self.config.with_weights:
            for row in strengths:
                if any(s not in (0, 1) for s in row):
                    raise CapacityError(
                        "chip built without weight structures only supports "
                        "strengths 0 and 1"
                    )
        reloads = 0
        for i, row in enumerate(strengths):
            if len(row) != self.config.n:
                raise ConfigurationError("strength matrix must be n x n")
            for j, strength in enumerate(row):
                if self.crosspoints[i][j].configure(strength):
                    reloads += 1
        self.reload_events += reloads
        return reloads

    def run_pass(
        self, polarity: Polarity, spikes: Sequence[bool]
    ) -> List[int]:
        """Stream one polarity pass: relay each spiking axon onto its row
        and deliver the weighted pulses into the column NPEs.

        Returns output pulses emitted per column during this pass (fires
        for SET1 passes; spurious underflow pulses for SET0 passes).
        """
        if not self._in_timestep:
            raise ProtocolError("run_pass before begin_timestep")
        if len(spikes) != self.config.n:
            raise ConfigurationError(
                f"need {self.config.n} spike flags, got {len(spikes)}"
            )
        n = self.config.n
        # Row relays are reset per pass: each axon spikes at most once.
        for npe in self.row_npes:
            npe.rst()
            npe.configure_threshold(1)
            npe.set_polarity(Polarity.SET1)
        for npe in self.col_npes:
            npe.set_polarity(polarity)
        emitted = [0] * n
        for i, spike in enumerate(spikes):
            if not spike:
                continue
            relayed = self.row_npes[i].excite(1)
            self.pulses_streamed += 1
            if not relayed:
                continue  # relay misconfigured; nothing reaches the row
            for j in range(n):
                xp = self.crosspoints[i][j]
                if not xp.enabled:
                    continue
                pulses = xp.pulses_out(1)
                self.synaptic_ops += 1
                npe = self.col_npes[j]
                for _ in range(pulses):
                    if npe.pulse():
                        emitted[j] += 1
                        self._out_pulses[j] += 1
                        if polarity is Polarity.SET0:
                            self._underflows[j] += 1
        return emitted

    def read_out(self) -> List[bool]:
        """Spike decision per column neuron for the current time step:
        True when at least one output pulse escaped the chain."""
        if not self._in_timestep:
            raise ProtocolError("read_out before begin_timestep")
        return [count > 0 for count in self._out_pulses]

    def out_pulse_counts(self) -> List[int]:
        """Raw output pulses per column in the current time step."""
        return list(self._out_pulses)

    def underflow_counts(self) -> List[int]:
        """Spurious (down-count) output pulses in the current time step."""
        return list(self._underflows)

    def membranes(self) -> List[int]:
        """Membrane potentials of the column neurons (no-wrap reading)."""
        return [npe.membrane for npe in self.col_npes]


class GateLevelChip:
    """The SUSHI chip assembled from RSFQ cells.

    Structure per the overview figure (Fig. 12(g)): input channels pass
    through DC/SFQ converters into the row NPEs; each row NPE output fans
    out along its row line; crosspoint weight structures (optional) gate
    and amplify the pulses onto column merge trees feeding the column NPEs,
    whose outputs drive SFQ/DC amplifiers observed by probes.

    Use :class:`ChipDriver` to operate it with a constraint-clean schedule.
    """

    def __init__(self, config: ChipConfig = None, wire_delay: float = 1.0):
        self.config = config or ChipConfig()
        n = self.config.n
        self.net = Netlist(f"sushi_{n}x{n}")
        self.wire_delay = wire_delay
        #: Cell name -> partition-group key (``"row{i}"`` / ``"col{j}"``);
        #: see :meth:`partition_hints`.
        self._partition_hints: dict = {}
        add, con = self.net.add, self.net.connect

        # Input converters feeding row NPEs.  Each row group claims the
        # cells added while it is built (converter + the NPE's internals).
        self.inputs = []
        self.row_npes = []
        mark = len(self.net.cells)
        for i in range(n):
            conv = add(library.DCSFQ(f"in{i}"))
            npe = GateLevelNPE(self.net, f"row{i}", self.config.sc_per_npe,
                               wire_delay, attach_driver=False)
            cell, port = npe.data_input()
            con(conv, "dout", cell, port, delay=wire_delay)
            self.inputs.append(conv)
            self.row_npes.append(npe)
            mark = self._claim(f"row{i}", mark)

        # Column NPEs with output drivers.
        self.col_npes = []
        for j in range(n):
            self.col_npes.append(
                GateLevelNPE(self.net, f"col{j}", self.config.sc_per_npe,
                             wire_delay, attach_driver=True)
            )
            mark = self._claim(f"col{j}", mark)

        # Mesh fabric: row fan-out -> (weight structures) -> column merge.
        # The row/column lines span the mesh, so they carry JTL repeaters
        # whose transit time is part of the wire delay (the section 6.3A
        # transmission-delay effect, measurable via repro.rsfq.analysis).
        line_jtls = 2 * n
        line_delay = wire_delay + line_jtls * library.JTL.DELAY_PS
        self.crosspoints: List[List[Optional[GateLevelWeightStructure]]] = []
        col_merge_inputs = []
        for j in range(n):
            merge_ins, merge_out = merge_tree(
                self.net, f"colmerge{j}", n, wire_delay,
                hints=self._partition_hints, group=f"col{j}",
            )
            cell, port = self.col_npes[j].data_input()
            con(merge_out[0], merge_out[1], cell, port, delay=line_delay,
                jtl_count=line_jtls)
            col_merge_inputs.append(merge_ins)
        for i in range(n):
            fan_in, fan_leaves = fanout_tree(
                self.net, f"rowline{i}", n, wire_delay,
                hints=self._partition_hints, group=f"row{i}",
            )
            self.row_npes[i].connect_out(fan_in[0], fan_in[1],
                                         delay=line_delay,
                                         jtl_count=line_jtls)
            mark = len(self.net.cells)
            row_xps: List[Optional[GateLevelWeightStructure]] = []
            for j in range(n):
                dst_cell, dst_port = col_merge_inputs[j][i]
                if self.config.with_weights:
                    xp = GateLevelWeightStructure(
                        self.net, f"xp{i}_{j}",
                        max_strength=self.config.max_strength,
                    )
                    src = fan_leaves[j]
                    a_cell, a_port = xp.axon_input
                    con(src[0], src[1], a_cell, a_port, delay=wire_delay)
                    o_cell, o_port = xp.column_output
                    con(o_cell, o_port, dst_cell, dst_port, delay=wire_delay)
                    row_xps.append(xp)
                    # Crosspoints ride with their column: the only wire
                    # into them from the row side is the positive-delay
                    # axon leaf, which is exactly where the cut belongs.
                    mark = self._claim(f"col{j}", mark)
                else:
                    src = fan_leaves[j]
                    con(src[0], src[1], dst_cell, dst_port, delay=wire_delay)
                    row_xps.append(None)
            self.crosspoints.append(row_xps)

    def _claim(self, group: str, mark: int) -> int:
        """Assign every cell added since ``mark`` to partition ``group``.

        Returns the new high-water mark.  Netlist cell order is insertion
        order, so the slice is exactly the cells the enclosing construction
        block created.
        """
        names = list(self.net.cells)
        for name in names[mark:]:
            self._partition_hints[name] = group
        return len(names)

    def partition_hints(self) -> dict:
        """Cell name -> partition-group key for parallel simulation.

        Groups follow the chip's natural concurrency: ``row{i}`` holds the
        input converter, row NPE and row line of row ``i``; ``col{j}``
        holds the crosspoints, merge tree and column NPE of column ``j``.
        All intra-group wiring (including any zero-delay wiring inside
        NPEs and weight structures) stays uncut; every inter-group wire is
        a positive-delay mesh wire, which becomes the conservative
        lookahead of :class:`repro.rsfq.parallel.ParallelSimulator`.
        """
        return dict(self._partition_hints)

    def simulator(self, **kwargs) -> Simulator:
        """Build a simulator over the chip's netlist."""
        return Simulator(self.net, **kwargs)

    def parallel_simulator(self, parts: int = 2, **kwargs):
        """Build a partitioned parallel simulator over the chip's netlist,
        cutting along the mesh wires via :meth:`partition_hints`."""
        from repro.rsfq.parallel import ParallelSimulator

        return ParallelSimulator(
            self.net, parts=parts, hints=self.partition_hints(), **kwargs
        )

    def fire_times(self, j: int) -> List[float]:
        """Output pulse times observed at column neuron ``j``."""
        return self.col_npes[j].fire_times


class ChipDriver:
    """Constraint-clean scheduling of the full chip protocol (gate level).

    Mirrors :class:`BehavioralChip`'s API so the two implementations can be
    driven by identical scripts and cross-validated.
    """

    def __init__(self, chip: GateLevelChip, sim: Simulator = None,
                 policy: TimingPolicy = None):
        self.chip = chip
        self.sim = sim or chip.simulator()
        self.policy = policy or TimingPolicy()
        self.cursor = 0.0
        self._fires_seen = [0] * chip.config.n

    def _advance(self, last: float) -> None:
        self.cursor = last + self.policy.settle_time(self.chip.config.sc_per_npe)

    def _bus_pulse(self, npes, channel: str) -> None:
        t = self.cursor
        for npe in npes:
            cell, port = npe.bus_input(channel)
            self.sim.schedule_input(cell, port, t)
        self._advance(t)

    # -- protocol --------------------------------------------------------------

    def begin_timestep(self, thresholds: Sequence[int]) -> None:
        """Reset column NPEs and preload per-neuron thresholds."""
        if len(thresholds) != self.chip.config.n:
            raise ConfigurationError("one threshold per column required")
        self._bus_pulse(self.chip.col_npes, "rst")
        t = self.cursor
        capacity = self.chip.config.state_capacity
        for npe, threshold in zip(self.chip.col_npes, thresholds):
            if not 1 <= threshold <= capacity:
                raise CapacityError(f"threshold {threshold} unrepresentable")
            preload = capacity - threshold
            for i in range(npe.n_sc):
                if preload & (1 << i):
                    cell, port = npe.write_input(i)
                    self.sim.schedule_input(cell, port, t)
        self._advance(t)
        self.sim.run()
        self.cursor = max(self.cursor, self.sim.now)
        self._fires_seen = [len(self.chip.fire_times(j))
                            for j in range(self.chip.config.n)]

    def configure_weights(self, strengths: Sequence[Sequence[int]]) -> None:
        """Arm/disarm crosspoint branch NDROs to realise the gain matrix."""
        if not self.chip.config.with_weights:
            for row in strengths:
                if any(s not in (0, 1) for s in row):
                    raise CapacityError(
                        "weightless chip supports only strengths 0 and 1"
                    )
            self._fixed_enables = [
                [bool(s) for s in row] for row in strengths
            ]
            return
        t = self.cursor
        n = self.chip.config.n
        for i in range(n):
            for j in range(n):
                xp = self.chip.crosspoints[i][j]
                strength = strengths[i][j]
                for k in range(xp.max_strength):
                    armed = xp.switches[k].stored
                    want = k < strength
                    if armed == want:
                        continue
                    channel = "din" if want else "rst"
                    cell, port = xp.switch_input(k, channel)
                    self.sim.schedule_input(cell, port, t)
        self._advance(t)
        self.sim.run()
        self.cursor = max(self.cursor, self.sim.now)

    def run_pass(self, polarity: Polarity, spikes: Sequence[bool]) -> None:
        """Reset+arm the row relays, set the column polarity, and stream
        the spiking axons (one pulse each, staggered across rows)."""
        n = self.chip.config.n
        if len(spikes) != n:
            raise ConfigurationError("one spike flag per row required")
        # Row relays: rst -> preload threshold 1 -> arm up-counting.
        self._bus_pulse(self.chip.row_npes, "rst")
        t = self.cursor
        capacity = self.chip.config.state_capacity
        preload = capacity - 1
        for npe in self.chip.row_npes:
            for i in range(npe.n_sc):
                if preload & (1 << i):
                    cell, port = npe.write_input(i)
                    self.sim.schedule_input(cell, port, t)
        self._advance(t)
        self._bus_pulse(self.chip.row_npes, "set1")
        channel = "set1" if polarity is Polarity.SET1 else "set0"
        self._bus_pulse(self.chip.col_npes, channel)
        # Stream spikes, staggering rows so that each crosspoint's expanded
        # pulse train (spread over (K-1)*stagger ps) fully drains, plus a
        # margin for fan/merge tree depth asymmetry, before the next row's
        # pulses reach the same column NPE.
        from repro.neuro.weights import DEFAULT_STAGGER

        spacing = (
            self.policy.input_interval
            + DEFAULT_STAGGER * (self.chip.config.max_strength - 1)
            + 15.0
        )
        t = self.cursor
        last = t
        for i, spike in enumerate(spikes):
            if not spike:
                continue
            last = t
            self.sim.schedule_input(self.chip.inputs[i], "din", t)
            t += spacing
        self._advance(last)
        self.sim.run()
        self.cursor = max(self.cursor, self.sim.now)

    def read_out(self) -> List[bool]:
        """Per-column spike decision since the last begin_timestep."""
        return [
            len(self.chip.fire_times(j)) > self._fires_seen[j]
            for j in range(self.chip.config.n)
        ]

    def out_pulse_counts(self) -> List[int]:
        return [
            len(self.chip.fire_times(j)) - self._fires_seen[j]
            for j in range(self.chip.config.n)
        ]
