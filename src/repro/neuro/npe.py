"""The neuromorphic processing element (NPE) -- paper section 4.1, Fig. 9.

An NPE is a serial chain of state controllers.  With every SC's NDRO1 armed
(:attr:`~repro.neuro.state_controller.Polarity.SET1`) the chain is a ripple
up-counter: each input pulse increments the state, a carry escaping the last
SC is the neuron's output spike.  With NDRO0 armed it is a ripple
down-counter, used for inhibitory passes.  An integrate-and-fire threshold
``T`` is realised by preloading the counter to ``2**n_sc - T`` through the
per-SC write channels, so the membrane reaching ``T`` overflows the chain.

The membrane potential is therefore *held in the flux states of the SCs* --
no memory cells, no clock -- which is the paper's central architectural
claim.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.neuro.state_controller import (
    BehavioralStateController,
    GateLevelStateController,
    Polarity,
)
from repro.neuro.structure import fanout_tree
from repro.rsfq import library
from repro.rsfq.netlist import Netlist

#: Number of SCs per NPE used throughout the paper (Fig. 9).
DEFAULT_SC_COUNT = 10


class BehavioralNPE:
    """Fast, protocol-checked NPE built from behavioural SCs.

    The ripple-carry arithmetic is executed SC by SC (not as a shortcut
    integer update) so that this model stays bit-equivalent to the
    gate-level NPE; the integration tests cross-validate the two.
    """

    def __init__(self, name: str = "npe", n_sc: int = DEFAULT_SC_COUNT):
        if n_sc < 1:
            raise ConfigurationError("an NPE needs at least one SC")
        self.name = name
        self.n_sc = n_sc
        self.scs: List[BehavioralStateController] = [
            BehavioralStateController(f"{name}.sc{i}") for i in range(n_sc)
        ]
        self.polarity: Optional[Polarity] = None
        #: Output pulses emitted while counting up (legitimate fires).
        self.fire_count = 0
        #: Output pulses emitted while counting down (underflow errors).
        self.underflow_count = 0
        self._preload = 0

    # -- capacity ----------------------------------------------------------

    @property
    def state_capacity(self) -> int:
        """Number of representable membrane states (2**n_sc)."""
        return 1 << self.n_sc

    # -- protocol (section 5.2 order: rst -> write -> set -> input) ---------

    def rst(self) -> int:
        """Reset all SCs; returns the counter value read out (aligned read)."""
        value = 0
        for i, sc in enumerate(self.scs):
            if sc.rst():
                value |= 1 << i
        self.polarity = None
        return value

    def write_preload(self, value: int) -> None:
        """Preload the counter (write channels); requires a fresh reset."""
        if not 0 <= value < self.state_capacity:
            raise CapacityError(
                f"preload {value} outside the {self.n_sc}-SC range "
                f"[0, {self.state_capacity})"
            )
        for i, sc in enumerate(self.scs):
            if value & (1 << i):
                sc.write()
        self._preload = value

    def configure_threshold(self, threshold: int) -> None:
        """Preload ``2**n_sc - threshold`` so the threshold-th net
        excitatory pulse overflows the chain (fires)."""
        if not 1 <= threshold <= self.state_capacity:
            raise CapacityError(
                f"threshold {threshold} not representable with "
                f"{self.n_sc} SCs (max {self.state_capacity})"
            )
        self.write_preload(self.state_capacity - threshold)

    def set_polarity(self, polarity: Polarity) -> None:
        """Arm every SC for up (SET1) or down (SET0) counting."""
        for sc in self.scs:
            sc.set_gate(polarity)
        self.polarity = polarity

    # -- operation ---------------------------------------------------------

    def pulse(self) -> bool:
        """Apply one input pulse; returns True if an output pulse escapes.

        The pulse ripples through the chain: each SC toggles and the pulse
        continues only while SCs emit (carry/borrow propagation).
        """
        if self.polarity is None:
            raise ProtocolError(
                f"NPE '{self.name}': input before set (no polarity armed)"
            )
        for sc in self.scs:
            if not sc.pulse():
                return False
        if self.polarity is Polarity.SET1:
            self.fire_count += 1
        else:
            self.underflow_count += 1
        return True

    def excite(self, pulses: int = 1) -> int:
        """Deliver ``pulses`` up-counting pulses; returns fires emitted."""
        if self.polarity is not Polarity.SET1:
            self.set_polarity(Polarity.SET1)
        return sum(1 for _ in range(pulses) if self.pulse())

    def inhibit(self, pulses: int = 1) -> int:
        """Deliver ``pulses`` down-counting pulses; returns spurious
        underflow pulses emitted (0 in a correctly-bucketed schedule)."""
        if self.polarity is not Polarity.SET0:
            self.set_polarity(Polarity.SET0)
        return sum(1 for _ in range(pulses) if self.pulse())

    # -- observation -------------------------------------------------------

    @property
    def counter_value(self) -> int:
        """Current counter value encoded in the SC states."""
        return sum(1 << i for i, sc in enumerate(self.scs) if sc.state)

    @property
    def membrane(self) -> int:
        """Membrane potential relative to the preload (no-wrap reading)."""
        return self.counter_value - self._preload

    def reset_counters(self) -> None:
        """Clear the fire/underflow statistics (not the SC states)."""
        self.fire_count = 0
        self.underflow_count = 0


class GateLevelNPE:
    """NPE assembled from gate-level SCs inside a shared netlist.

    Control buses: ``rst``, ``set0`` and ``set1`` fan out to every SC
    through SPL trees (the paper notes these "can be arbitrarily bound
    together for ease of use"); ``write`` and ``read`` stay per-SC.  The
    chain output is amplified by an :class:`~repro.rsfq.library.SFQDC` and
    observed on :attr:`fire_probe`.
    """

    def __init__(
        self,
        net: Netlist,
        name: str,
        n_sc: int = DEFAULT_SC_COUNT,
        wire_delay: float = 1.0,
        carry_jtl_count: int = 2,
        attach_driver: bool = True,
    ):
        if n_sc < 1:
            raise ConfigurationError("an NPE needs at least one SC")
        self.net = net
        self.name = name
        self.n_sc = n_sc
        self.scs = [
            GateLevelStateController(net, f"{name}.sc{i}") for i in range(n_sc)
        ]
        # Carry chain.
        for prev, nxt in zip(self.scs, self.scs[1:]):
            cell, port = nxt.input_cell("in")
            prev.connect_out(cell, port, delay=wire_delay,
                             jtl_count=carry_jtl_count)
        # Shared control buses.
        self._bus_inputs = {}
        for channel in ("rst", "set0", "set1"):
            bus_in, leaves = fanout_tree(net, f"{name}.{channel}_bus", n_sc,
                                         wire_delay)
            for leaf, sc in zip(leaves, self.scs):
                cell, port = sc.input_cell(channel)
                net.connect(leaf[0], leaf[1], cell, port, delay=wire_delay)
            self._bus_inputs[channel] = bus_in
        # Output: either an SFQDC amplifier feeding an observation probe
        # (chip boundary) or a raw chain output for on-chip routing.
        self.out_driver = None
        self.fire_probe = None
        self._wire_delay = wire_delay
        self._carry_jtl_count = carry_jtl_count
        if attach_driver:
            self.out_driver = net.add(library.SFQDC(f"{name}.out_drv"))
            self.scs[-1].connect_out(self.out_driver, "din", delay=wire_delay,
                                     jtl_count=carry_jtl_count)
            self.fire_probe = net.add(library.Probe(f"{name}.fire"))
            net.connect(self.out_driver, "dout", self.fire_probe, "din",
                        delay=wire_delay)

    # -- endpoints for drivers ----------------------------------------------

    def bus_input(self, channel: str) -> Tuple[object, str]:
        """(cell, port) receiving the shared rst/set0/set1 bus pulse."""
        if channel not in self._bus_inputs:
            raise ProtocolError(
                f"NPE has no shared bus '{channel}'; buses are "
                f"{sorted(self._bus_inputs)}"
            )
        return self._bus_inputs[channel]

    def write_input(self, sc_index: int) -> Tuple[object, str]:
        """(cell, port) of the write channel of SC ``sc_index``."""
        return self.scs[sc_index].input_cell("write")

    def data_input(self) -> Tuple[object, str]:
        """(cell, port) of the NPE's pulse input (SC0's ``in``)."""
        return self.scs[0].input_cell("in")

    def connect_out(self, dst_cell, dst_port: str, delay: float = None,
                    jtl_count: int = None) -> None:
        """Route the raw chain output on-chip (requires
        ``attach_driver=False``)."""
        if self.out_driver is not None:
            raise ConfigurationError(
                f"NPE '{self.name}' output already drives its SFQDC; build "
                "with attach_driver=False for on-chip routing"
            )
        self.scs[-1].connect_out(
            dst_cell, dst_port,
            delay=self._wire_delay if delay is None else delay,
            jtl_count=self._carry_jtl_count if jtl_count is None else jtl_count,
        )

    # -- observation ---------------------------------------------------------

    @property
    def counter_value(self) -> int:
        return sum(1 << i for i, sc in enumerate(self.scs) if sc.state)

    @property
    def fire_times(self) -> List[float]:
        if self.fire_probe is None:
            raise ConfigurationError(
                f"NPE '{self.name}' has no output probe (attach_driver=False)"
            )
        return list(self.fire_probe.times)

    def read_times(self, sc_index: int) -> List[float]:
        """Pulses observed on the read channel of SC ``sc_index``."""
        return list(self.scs[sc_index].read_probe.times)
