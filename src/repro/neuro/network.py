"""On-chip networks of NPEs -- paper section 4.2.2, Fig. 11.

Two structures connect NPEs on chip:

* **Mesh** (crossbar): ``n`` row (axon) lines crossing ``n`` column
  (dendrite) lines with a configurable weight structure at every crosspoint.
  Distinguishes the weight of any NPE pair and supports arbitrary
  connections, at the price of ``n**2`` cross structures whose transmission
  lines cost double width at each crossing.  This is the structure SUSHI's
  evaluation uses.
* **Tree**: SPL fan-out trees feeding CB merge trees.  Cheapest in wiring
  and crossings, but only supports normalised weights (no per-pair
  configurability).

These classes are *structural descriptions*: they enumerate the components,
crossings and line segments of each topology.  The resource model
(:mod:`repro.resources`) prices them; :mod:`repro.neuro.chip` instantiates
the mesh behaviourally and at gate level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkStats:
    """Structural summary of an on-chip network.

    Attributes:
        npe_count: NPEs attached (2n for an n x n mesh: n row drivers plus
            n column neurons -- the paper's "4x4 network with 8 neurons").
        synapse_count: Configurable connections.
        crosspoint_count: Cross structures (line crossings with weight
            hardware).
        line_crossings: Plain transmission-line crossings (each costs twice
            the line width in area).
        spl_count / cb_count / ndro_count: Cell usage of the fabric itself.
        total_line_span_units: Total transmission-line length in units of
            the NPE pitch (priced by the floorplan model).
    """

    npe_count: int
    synapse_count: int
    crosspoint_count: int
    line_crossings: int
    spl_count: int
    cb_count: int
    ndro_count: int
    total_line_span_units: float


class MeshNetwork:
    """Structural model of the n x n crossbar mesh."""

    def __init__(self, n: int, max_strength: int = 1):
        if n < 1:
            raise ConfigurationError("mesh size must be >= 1")
        if max_strength < 1:
            raise ConfigurationError("max_strength must be >= 1")
        self.n = n
        self.max_strength = max_strength

    @property
    def npe_count(self) -> int:
        """Row-driver NPEs plus column-neuron NPEs."""
        return 2 * self.n

    @property
    def synapse_count(self) -> int:
        return self.n * self.n

    def stats(self) -> NetworkStats:
        n, k = self.n, self.max_strength
        # Per crosspoint: the weight structure's fan/merge trees + switches,
        # plus one row-tap SPL (except at the row end).
        per_xp_spl = (k - 1) if k > 1 else 0
        per_xp_cb = (k - 1) if k > 1 else 0
        row_taps = max(n - 1, 0) * n  # SPL taps along each row line
        col_merges = max(n - 1, 0) * n  # CB merges along each column line
        return NetworkStats(
            npe_count=self.npe_count,
            synapse_count=n * n,
            crosspoint_count=n * n,
            # Every row line crosses every column line once.
            line_crossings=n * n,
            spl_count=n * n * per_xp_spl + row_taps,
            cb_count=n * n * per_xp_cb + col_merges,
            ndro_count=n * n * k,
            # Each row and each column spans n NPE pitches.
            total_line_span_units=float(2 * n * n),
        )


class TreeNetwork:
    """Structural model of the SPL/CB tree network (Fig. 11(a)).

    One root fans out to ``n`` leaves through SPLs; leaf outputs merge back
    through CBs.  Connections are fixed (normalised weights only) so there
    are no NDRO switches and almost no crossings.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError("tree size must be >= 1")
        self.n = n

    @property
    def npe_count(self) -> int:
        return 2 * self.n

    @property
    def synapse_count(self) -> int:
        # Each source reaches each sink through the shared trunk; the
        # distinct configurable synapses collapse to the n leaf links.
        return self.n

    def stats(self) -> NetworkStats:
        n = self.n
        return NetworkStats(
            npe_count=self.npe_count,
            synapse_count=n,
            crosspoint_count=0,
            line_crossings=0,
            spl_count=max(n - 1, 0),
            cb_count=max(n - 1, 0),
            ndro_count=0,
            # A balanced tree's total edge length ~ 2n pitches.
            total_line_span_units=float(2 * n),
        )


def network_for(kind: str, n: int, max_strength: int = 1):
    """Factory: ``"mesh"`` or ``"tree"`` structural model of size ``n``."""
    kinds: Dict[str, object] = {"mesh": MeshNetwork, "tree": TreeNetwork}
    if kind not in kinds:
        raise ConfigurationError(
            f"unknown network kind '{kind}'; choose from {sorted(kinds)}"
        )
    if kind == "mesh":
        return MeshNetwork(n, max_strength=max_strength)
    return TreeNetwork(n)
