"""Executing the multi-state neuron model on an NPE (paper section 4.1.2).

The paper's Figs. 6-7 define a biological neuron as a finite-state
automaton driven by spike and time stimuli; the NPE's SC chain holds the
state as a counter, and SUSHI's *encoding phase* -- which precomputes the
channel and time of every pulse off-chip (Fig. 12) -- performs the
transition bookkeeping, emitting the +1/-1 pulses of Fig. 7's delta
function.  :class:`MultiStatePulseProgram` is that encoder: it compiles
spike/time stimuli into NPE pulse operations and keeps the automaton
reference in lock-step so tests can assert that the on-chip flux state
always equals the model state.

State encoding on the counter::

    b_k               -> k                      (below threshold)
    r_j               -> threshold + 1 + j      (rising)
    f_j               -> threshold + 1 + R + j  (falling/undershoot)
    f_F --time--> b0  -> reset + preload 0

The externally visible spike is emitted on the ``r_{R-1} -> f_0``
transition, exactly as in :class:`repro.neuro.neuron_model.MultiStateNeuron`.
"""

from __future__ import annotations

from typing import List

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.neuron_model import MultiStateNeuron, NeuronPhase
from repro.neuro.npe import BehavioralNPE
from repro.neuro.state_controller import Polarity


class MultiStatePulseProgram:
    """Drives a :class:`BehavioralNPE` through the Fig. 7 state series.

    Args:
        threshold: Spike stimuli needed to reach the rising phase.
        rising_steps / falling_steps: Lengths of the action-potential
            phases (time-stimulus driven).
        n_sc: SC chain length of the backing NPE; the full state series
            (``threshold + rising + falling + 2`` states) must fit.

    The companion :attr:`reference` automaton runs the same stimuli; the
    class raises if the chip state ever diverges from it (it cannot, by
    construction -- the tests prove it property-style).
    """

    def __init__(self, threshold: int, rising_steps: int = 4,
                 falling_steps: int = 4, n_sc: int = 10):
        self.reference = MultiStateNeuron(threshold, rising_steps,
                                          falling_steps)
        states_needed = threshold + 1 + rising_steps + falling_steps + 1
        if states_needed > (1 << n_sc):
            raise CapacityError(
                f"neuron model needs {states_needed} states; {n_sc} SCs "
                f"hold only {1 << n_sc}"
            )
        self.threshold = threshold
        self.rising_steps = rising_steps
        self.falling_steps = falling_steps
        self.npe = BehavioralNPE("multistate", n_sc=n_sc)
        self.npe.rst()
        self.npe.write_preload(0)
        #: Spikes emitted so far (the visible output of the neuron).
        self.spikes_emitted = 0

    # -- state encoding ------------------------------------------------------

    def _expected_counter(self) -> int:
        """Counter value the reference automaton's state maps to."""
        state = self.reference.state
        if state.phase is NeuronPhase.BELOW_THRESHOLD:
            return state.index
        if state.phase is NeuronPhase.RISING:
            return self.threshold + 1 + state.index
        return self.threshold + 1 + self.rising_steps + state.index

    def _check(self) -> None:
        if self.npe.counter_value != self._expected_counter():
            raise ConfigurationError(
                f"NPE state {self.npe.counter_value} diverged from the "
                f"automaton state {self.reference.state.label()} "
                f"({self._expected_counter()})"
            )

    # -- stimuli -----------------------------------------------------------

    def spike_stimulus(self) -> bool:
        """Fig. 7: ``delta(b_k, spike) = b_{k+1}``; ignored elsewhere."""
        before = self.reference.state
        self.reference.spike_stimulus()
        if (before.phase is NeuronPhase.BELOW_THRESHOLD
                and before.index < self.threshold):
            self.npe.excite(1)
        self._check()
        return False

    def time_stimulus(self) -> bool:
        """Fig. 7's time column: leak, advance rise/fall, return to rest.

        Returns True when the visible output spike is emitted (the rise
        completing).
        """
        before = self.reference.state
        fired = self.reference.time_stimulus()
        if before.phase is NeuronPhase.BELOW_THRESHOLD:
            if before.index >= self.threshold:
                self.npe.excite(1)          # b_T -> r0
            elif before.index > 0:
                self.npe.inhibit(1)         # leak: b_k -> b_{k-1}
            # b0 -> b0: no pulse (the encoder simply emits nothing).
        elif before.phase is NeuronPhase.RISING:
            self.npe.excite(1)              # r_j -> r_{j+1} / fire -> f0
        else:  # falling
            if before.index >= self.falling_steps:
                # f_F -> b0: reset-read + re-preload (rest).
                self.npe.rst()
                self.npe.write_preload(0)
            else:
                self.npe.excite(1)
        if fired:
            self.spikes_emitted += 1
        self._check()
        return fired

    # -- convenience -----------------------------------------------------------

    def run(self, stimuli: List[str]) -> int:
        """Apply a sequence of ``"spike"`` / ``"time"`` stimuli; returns
        the number of output spikes emitted."""
        fired = 0
        for stimulus in stimuli:
            if stimulus == "spike":
                self.spike_stimulus()
            elif stimulus == "time":
                if self.time_stimulus():
                    fired += 1
            else:
                raise ConfigurationError(
                    f"unknown stimulus '{stimulus}' (use 'spike'/'time')"
                )
        return fired

    @property
    def counter_value(self) -> int:
        """The on-chip flux state (for inspection and tests)."""
        return self.npe.counter_value
