"""SUSHI architecture: state controllers, NPEs, weight structures, networks.

This package implements the paper's primary architectural contribution
(section 4): the asynchronous, pulse-driven neuromorphic processing element
(NPE) built from state controllers (SC), the pulse-gain weight structures,
the on-chip mesh/tree networks, and the complete chip.  Every component
exists in two semantically-equivalent forms:

* **behavioural** -- fast integer/state-machine models used for whole-network
  inference and the performance studies;
* **gate-level** -- compositions of :mod:`repro.rsfq` cells simulated
  event-by-event, used to validate the behavioural models (the reproduction
  of the paper's chip-vs-simulation comparison, Fig. 16).
"""

from repro.neuro.neuron_model import MultiStateNeuron, NeuronPhase
from repro.neuro.state_controller import (
    BehavioralStateController,
    GateLevelStateController,
    Polarity,
)
from repro.neuro.npe import BehavioralNPE, GateLevelNPE
from repro.neuro.weights import BehavioralWeightStructure, GateLevelWeightStructure
from repro.neuro.network import MeshNetwork, TreeNetwork, network_for
from repro.neuro.chip import BehavioralChip, GateLevelChip, ChipConfig
from repro.neuro.timing import TimingPolicy
from repro.neuro.multistate import MultiStatePulseProgram
from repro.neuro.tree import GateLevelTreeNetwork, TreeDriver
from repro.neuro.bringup import BringupReport, run_bringup

__all__ = [
    "MultiStateNeuron",
    "NeuronPhase",
    "BehavioralStateController",
    "GateLevelStateController",
    "Polarity",
    "BehavioralNPE",
    "GateLevelNPE",
    "BehavioralWeightStructure",
    "GateLevelWeightStructure",
    "MeshNetwork",
    "TreeNetwork",
    "network_for",
    "BehavioralChip",
    "GateLevelChip",
    "ChipConfig",
    "TimingPolicy",
    "MultiStatePulseProgram",
    "GateLevelTreeNetwork",
    "TreeDriver",
    "BringupReport",
    "run_bringup",
]
