"""Multi-state neuron model based on state transitions (paper Figs. 6-7).

The paper models the biological membrane-potential trajectory as an explicit
finite-state automaton driven by two stimuli:

* a **spike stimulus** (an input pulse) advances the neuron through the
  below-threshold states ``b0 .. b_threshold``;
* a **time stimulus** (a timing pulse) leaks the below-threshold state back
  toward resting, or advances the action-potential phases once the threshold
  has been reached: rising ``r0 .. rR`` (the spike is emitted on the
  ``r_{R-1} -> r_R`` transition), then falling/undershoot ``f0 .. fF``,
  returning to the resting state ``b0``.

This automaton is what a fully-provisioned NPE realises; the SSNN method of
section 5 then uses a simplified stateless special case for inference.  The
full model is implemented (and tested) here both for completeness and
because it documents the state budget analysis ("~500 states suffice").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError


class NeuronPhase(enum.Enum):
    """The four phases of the biological trajectory in Fig. 6(a)."""

    BELOW_THRESHOLD = "below_threshold"
    RISING = "rising"
    FALLING = "falling"


@dataclass(frozen=True)
class NeuronState:
    """A single automaton state: a phase plus an index within the phase."""

    phase: NeuronPhase
    index: int

    def label(self) -> str:
        prefix = {"below_threshold": "b", "rising": "r", "falling": "f"}[
            self.phase.value
        ]
        return f"{prefix}{self.index}"


class MultiStateNeuron:
    """The state-transition neuron of paper Figs. 6-7.

    Args:
        threshold: Number of accumulated spike stimuli needed to enter the
            rising phase (states ``b0 .. b_threshold``).
        rising_steps: Length ``R`` of the rising phase; the output spike is
            emitted when the time stimulus completes the rise.
        falling_steps: Length ``F`` of the falling/undershoot phase.

    The total number of states is ``threshold + 1 + rising_steps + 1 +
    falling_steps + 1``; :meth:`state_count` reports it for the paper's
    "~500 states" sizing analysis.
    """

    def __init__(self, threshold: int, rising_steps: int = 4, falling_steps: int = 4):
        if threshold < 1:
            raise ConfigurationError("threshold must be >= 1")
        if rising_steps < 1 or falling_steps < 0:
            raise ConfigurationError(
                "rising_steps must be >= 1 and falling_steps >= 0"
            )
        self.threshold = threshold
        self.rising_steps = rising_steps
        self.falling_steps = falling_steps
        self.state = NeuronState(NeuronPhase.BELOW_THRESHOLD, 0)
        #: History of emitted spikes (automaton step numbers).
        self.spike_log: List[int] = []
        self._step = 0

    # -- stimuli -----------------------------------------------------------

    def spike_stimulus(self) -> bool:
        """Apply an input spike; returns True if an output spike is emitted.

        Spike stimuli only matter below threshold (Fig. 7 defines
        ``delta(b_k, spike) = b_{k+1}``); during the rising/falling phases
        further inputs are refractory-ignored.
        """
        self._step += 1
        if self.state.phase is NeuronPhase.BELOW_THRESHOLD:
            nxt = min(self.state.index + 1, self.threshold)
            self.state = NeuronState(NeuronPhase.BELOW_THRESHOLD, nxt)
        return False

    def time_stimulus(self) -> bool:
        """Apply a time stimulus; returns True if an output spike is emitted.

        Implements the ``delta(_, time)`` column of Fig. 7: leak below
        threshold, advance through rising (emitting the spike when the rise
        completes) and falling, then return to resting.
        """
        self._step += 1
        phase, idx = self.state.phase, self.state.index
        fired = False
        if phase is NeuronPhase.BELOW_THRESHOLD:
            if idx >= self.threshold:
                self.state = NeuronState(NeuronPhase.RISING, 0)
            else:
                # Leak: b0 stays, b_k -> b_{k-1}.
                self.state = NeuronState(NeuronPhase.BELOW_THRESHOLD, max(idx - 1, 0))
        elif phase is NeuronPhase.RISING:
            if idx + 1 >= self.rising_steps:
                fired = True
                self.spike_log.append(self._step)
                self.state = NeuronState(NeuronPhase.FALLING, 0)
            else:
                self.state = NeuronState(NeuronPhase.RISING, idx + 1)
        else:  # FALLING / undershoot
            if idx >= self.falling_steps:
                self.state = NeuronState(NeuronPhase.BELOW_THRESHOLD, 0)
            else:
                self.state = NeuronState(NeuronPhase.FALLING, idx + 1)
        return fired

    # -- queries -----------------------------------------------------------

    def is_resting(self) -> bool:
        return self.state == NeuronState(NeuronPhase.BELOW_THRESHOLD, 0)

    def state_count(self) -> int:
        """Total distinct states of this automaton (paper sizing analysis)."""
        return (self.threshold + 1) + self.rising_steps + (self.falling_steps + 1)

    def reset(self) -> None:
        self.state = NeuronState(NeuronPhase.BELOW_THRESHOLD, 0)
        self.spike_log.clear()
        self._step = 0

    def transition_table(self) -> List[Tuple[str, str, str]]:
        """Enumerate the full delta function as (state, stimulus, next-state)
        triples -- the explicit form of Fig. 7, used in docs and tests."""
        rows: List[Tuple[str, str, str]] = []
        for k in range(self.threshold):
            rows.append((f"b{k}", "spike", f"b{k + 1}"))
        rows.append(("b0", "time", "b0"))
        for k in range(1, self.threshold):
            rows.append((f"b{k}", "time", f"b{k - 1}"))
        rows.append((f"b{self.threshold}", "time", "r0"))
        for k in range(self.rising_steps - 1):
            rows.append((f"r{k}", "time", f"r{k + 1}"))
        rows.append(
            (f"r{self.rising_steps - 1}", "time", "f0 (send a spike)")
        )
        for k in range(self.falling_steps):
            rows.append((f"f{k}", "time", f"f{k + 1}"))
        rows.append((f"f{self.falling_steps}", "time", "b0"))
        return rows
