"""Pulse-gain weight structures -- paper section 4.2.1, Fig. 10.

Weights are encoded in the *number of pulses*, not in stored numbers: a
crosspoint expands each incoming axon pulse into ``strength`` pulses on the
way to the target NPE.  The structure is a fan-out tree feeding parallel
branches, each holding an NDRO switch (Fig. 10(b)) and a distinct delay, all
merged back onto the column line; configuring a weight of ``s`` arms ``s``
of the branches.  Strength 0 leaves every branch disarmed -- the crosspoint
is disconnected, which is how the mesh realises arbitrary topologies and how
polarity passes select the synapses of one sign (see
:mod:`repro.ssnn.bitslice`).

The NDROs are written through din/rst channels that are *independent of the
inference path* -- weight reloading happens in parallel per synapse and off
the critical path (section 4.2.2).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.neuro.structure import fanout_tree, merge_tree
from repro.rsfq import library
from repro.rsfq.netlist import Netlist


#: Default stagger (ps) between the expanded pulses of one crosspoint; must
#: exceed the NPE's TFF toggle interval plus fan/merge tree asymmetry.
DEFAULT_STAGGER = 60.0


class BehavioralWeightStructure:
    """Fast model of a crosspoint: an integer gain with reload accounting."""

    def __init__(self, name: str = "w", max_strength: int = 1):
        if max_strength < 1:
            raise ConfigurationError("max_strength must be >= 1")
        self.name = name
        self.max_strength = max_strength
        self.strength = 0
        #: Number of configuration changes applied (reload statistics).
        self.reload_count = 0

    def configure(self, strength: int) -> bool:
        """Set the gain; returns True if this was an actual reload."""
        if not 0 <= strength <= self.max_strength:
            raise ConfigurationError(
                f"strength {strength} outside [0, {self.max_strength}] on "
                f"crosspoint '{self.name}'"
            )
        if strength == self.strength:
            return False
        self.strength = strength
        self.reload_count += 1
        return True

    def reset_state(self) -> None:
        """Power-on reset: gain back to 0 *without* counting a reload
        (used when one chip instance is reused across batch samples)."""
        self.strength = 0

    @property
    def enabled(self) -> bool:
        return self.strength > 0

    def pulses_out(self, pulses_in: int = 1) -> int:
        """Pulses delivered to the column per ``pulses_in`` axon pulses."""
        if pulses_in < 0:
            raise ConfigurationError("pulse count must be >= 0")
        return pulses_in * self.strength


class GateLevelWeightStructure:
    """Crosspoint weight structure from RSFQ cells (Fig. 10(b)/(c)).

    Structure for ``max_strength = K``::

        axon in --> SPL tree --> K branches (NDRO switch, staggered delay)
                                  --> CB merge tree --> column out

    Branch ``k`` adds ``(k+1) * stagger`` ps so the expanded pulses arrive
    separated by at least ``stagger`` (which must exceed the NPE's TFF
    toggle interval).  Each NDRO's din/rst form the weight-control channels.
    """

    def __init__(
        self,
        net: Netlist,
        name: str,
        max_strength: int = 1,
        stagger: float = DEFAULT_STAGGER,
        wire_delay: float = 1.0,
    ):
        if max_strength < 1:
            raise ConfigurationError("max_strength must be >= 1")
        if stagger <= 0:
            raise ConfigurationError("stagger must be positive")
        self.net = net
        self.name = name
        self.max_strength = max_strength
        fan_in, fan_leaves = fanout_tree(net, f"{name}.fan", max_strength,
                                         wire_delay)
        self._axon_in = fan_in
        self.switches: List[library.NDRO] = []
        merge_ins, merge_out = merge_tree(net, f"{name}.merge", max_strength,
                                          wire_delay)
        for k, (leaf, merge_in) in enumerate(zip(fan_leaves, merge_ins)):
            ndro = net.add(library.NDRO(f"{name}.sw{k}"))
            # The staggered delay realises the Fig. 10(a) JTL delay section.
            net.connect(leaf[0], leaf[1], ndro, "clk",
                        delay=wire_delay + k * stagger,
                        jtl_count=1 + k)
            net.connect(ndro, "dout", merge_in[0], merge_in[1],
                        delay=wire_delay)
            self.switches.append(ndro)
        self._column_out = merge_out

    # -- endpoints -----------------------------------------------------------

    @property
    def axon_input(self) -> Tuple[object, str]:
        """(cell, port) receiving pulses from the row (axon) line."""
        return self._axon_in

    @property
    def column_output(self) -> Tuple[object, str]:
        """(cell, port) driving the column (dendrite) line."""
        return self._column_out

    def switch_input(self, k: int, channel: str) -> Tuple[object, str]:
        """(cell, port) of the weight-control channel of branch ``k``
        (``channel`` is ``"din"`` to arm or ``"rst"`` to disarm)."""
        if channel not in ("din", "rst"):
            raise ConfigurationError("channel must be 'din' or 'rst'")
        return self.switches[k], channel

    # -- observation -----------------------------------------------------------

    @property
    def strength(self) -> int:
        """Currently-armed branch count (the configured gain)."""
        return sum(1 for sw in self.switches if sw.stored)
