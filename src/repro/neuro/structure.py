"""Fan-out and fan-in trees of SPL/CB cells.

RSFQ outputs drive exactly one wire, so distributing one pulse to ``n``
destinations requires a tree of splitters, and merging ``n`` sources onto
one line requires a tree of confluence buffers (paper Fig. 11 builds entire
tree networks from these).  These helpers build balanced binary trees and
are used for the NPE control buses, the mesh row/column lines, and the tree
network.
"""

from __future__ import annotations

from typing import List, MutableMapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rsfq import library
from repro.rsfq.netlist import Netlist

#: (cell, port) endpoint.
Endpoint = Tuple[object, str]

#: Cell-name -> partition-group mapping accumulated by the builders (the
#: hint format consumed by :func:`repro.rsfq.partition.partition_netlist`).
HintMap = MutableMapping[str, object]


def fanout_tree(
    net: Netlist,
    name: str,
    n: int,
    wire_delay: float = 1.0,
    hints: Optional[HintMap] = None,
    group: object = None,
) -> Tuple[Endpoint, List[Endpoint]]:
    """Build an SPL tree duplicating one input pulse onto ``n`` outputs.

    Returns ``(input_endpoint, output_endpoints)`` where each endpoint is a
    ``(cell, port)`` pair.  For ``n == 1`` a JTL passthrough is used.

    When ``hints`` is given, every cell the tree adds is recorded under
    ``group`` (defaulting to ``name``), so structural builders accumulate
    the partition hints consumed by
    :func:`repro.rsfq.partition.partition_netlist` -- a tree is an
    indivisible structure and must never be cut internally.
    """
    if n < 1:
        raise ConfigurationError("fanout_tree needs n >= 1")
    if group is None:
        group = name
    if n == 1:
        jtl = net.add(library.JTL(f"{name}.thru"))
        if hints is not None:
            hints[jtl.name] = group
        return (jtl, "din"), [(jtl, "dout")]
    spl = net.add(library.SPL(f"{name}.spl"))
    if hints is not None:
        hints[spl.name] = group
    left_n = (n + 1) // 2
    right_n = n - left_n
    outputs: List[Endpoint] = []
    for side, port, count in (("l", "doutA", left_n), ("r", "doutB", right_n)):
        if count == 1:
            outputs.append((spl, port))
        else:
            sub_in, sub_outs = fanout_tree(
                net, f"{name}.{side}", count, wire_delay,
                hints=hints, group=group,
            )
            net.connect(spl, port, sub_in[0], sub_in[1], delay=wire_delay)
            outputs.extend(sub_outs)
    return (spl, "din"), outputs


def merge_tree(
    net: Netlist,
    name: str,
    n: int,
    wire_delay: float = 1.0,
    hints: Optional[HintMap] = None,
    group: object = None,
) -> Tuple[List[Endpoint], Endpoint]:
    """Build a CB tree merging ``n`` input lines onto one output.

    Returns ``(input_endpoints, output_endpoint)``.  For ``n == 1`` a JTL
    passthrough is used.  ``hints``/``group`` record partition hints
    exactly as in :func:`fanout_tree`.
    """
    if n < 1:
        raise ConfigurationError("merge_tree needs n >= 1")
    if group is None:
        group = name
    if n == 1:
        jtl = net.add(library.JTL(f"{name}.thru"))
        if hints is not None:
            hints[jtl.name] = group
        return [(jtl, "din")], (jtl, "dout")
    cb = net.add(library.CB(f"{name}.cb"))
    if hints is not None:
        hints[cb.name] = group
    left_n = (n + 1) // 2
    right_n = n - left_n
    inputs: List[Endpoint] = []
    for side, port, count in (("l", "dinA", left_n), ("r", "dinB", right_n)):
        if count == 1:
            inputs.append((cb, port))
        else:
            sub_ins, sub_out = merge_tree(
                net, f"{name}.{side}", count, wire_delay,
                hints=hints, group=group,
            )
            net.connect(sub_out[0], sub_out[1], cb, port, delay=wire_delay)
            inputs.extend(sub_ins)
    return inputs, (cb, "dout")


def fanout_tree_cost(n: int) -> dict:
    """Cell histogram of an ``n``-leaf fan-out tree (resource model)."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if n == 1:
        return {"JTL": 1}
    return {"SPL": n - 1}


def merge_tree_cost(n: int) -> dict:
    """Cell histogram of an ``n``-source merge tree (resource model)."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if n == 1:
        return {"JTL": 1}
    return {"CB": n - 1}
