"""The SUSHI state controller (SC) -- paper section 4.1.1, Figs. 4, 5, 8.

An SC is the minimal asynchronous neuromorphic component: a single state bit
held by a TFFL/TFFR pair, with NDRO gates selecting which flip direction
emits an output pulse:

* ``set0`` arms NDRO0 (gating the TFFL): the SC emits on the **0 -> 1** flip;
* ``set1`` arms NDRO1 (gating the TFFR): the SC emits on the **1 -> 0** flip;
* set0/set1 are mutually exclusive -- arming one disarms the other;
* ``rst`` clears both gates and, through a third monitoring NDRO, reads the
  current state out of the ``read`` channel while forcing the state back to
  0 ("read is aligned with rst");
* ``write`` toggles the state directly and must follow ``rst`` ("write must
  follow rst") so that it deterministically sets the bit to 1 with the gates
  disarmed (no spurious output);
* ``in`` pulses toggle the state and must follow a ``set`` ("input must
  follow set").

A chain of SCs with NDRO1 armed is a ripple **up-counter** (carry on 1->0);
with NDRO0 armed it is a ripple **down-counter** (borrow on 0->1) -- the
mechanism behind the NPE's membrane arithmetic (see
:mod:`repro.neuro.npe`).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ProtocolError
from repro.rsfq import library
from repro.rsfq.netlist import Netlist


class Polarity(enum.Enum):
    """Which flip direction of the SC emits an output pulse."""

    #: NDRO0 armed: emit on the 0 -> 1 flip (down-count / borrow).
    SET0 = "set0"
    #: NDRO1 armed: emit on the 1 -> 0 flip (up-count / carry).
    SET1 = "set1"


class BehavioralStateController:
    """Fast state-machine model of the SC, protocol-checked.

    The protocol rules of paper section 5.2 are enforced with
    :class:`~repro.errors.ProtocolError`: writing without a preceding reset,
    or pulsing the input while no polarity is armed, are rejected exactly
    where the physical circuit would misbehave.
    """

    def __init__(self, name: str = "sc"):
        self.name = name
        self.state = False
        self.gate: Optional[Polarity] = None
        self._reset_done = True  # power-on state counts as reset

    def pulse(self) -> bool:
        """Apply an ``in`` pulse; returns True when the SC emits on ``out``."""
        if self.gate is None:
            raise ProtocolError(
                f"SC '{self.name}': input pulse with no polarity armed "
                "(input must follow set)"
            )
        self.state = not self.state
        if self.gate is Polarity.SET1:
            return not self.state  # emitted on the 1 -> 0 flip
        return self.state  # SET0: emitted on the 0 -> 1 flip

    def rst(self) -> bool:
        """Reset: disarm gates, zero the state; returns the pre-reset state
        (the ``read`` channel output, aligned with rst)."""
        was_set = self.state
        self.state = False
        self.gate = None
        self._reset_done = True
        return was_set

    def write(self) -> None:
        """Toggle the state with gates disarmed (used to preload bits)."""
        if not self._reset_done:
            raise ProtocolError(
                f"SC '{self.name}': write must follow rst"
            )
        if self.gate is not None:
            raise ProtocolError(
                f"SC '{self.name}': write while a polarity is armed would "
                "emit a spurious carry"
            )
        self.state = not self.state

    def set_gate(self, polarity: Polarity) -> None:
        """Arm set0 or set1; arming either disarms the other."""
        self.gate = polarity
        self._reset_done = False

    def __repr__(self) -> str:
        gate = self.gate.value if self.gate else "-"
        return f"<SC '{self.name}' state={int(self.state)} gate={gate}>"


class GateLevelStateController:
    """The SC as a composition of RSFQ cells (paper Fig. 8(b)).

    Builds, inside a caller-supplied :class:`~repro.rsfq.netlist.Netlist`,
    the complete logic design: input confluence (in/write/clear-feedback),
    the TFFL/TFFR pair, the NDRO0/NDRO1 output gates with their mutually
    exclusive set channels, and the NDRO2 state monitor that implements the
    aligned read/reset.

    External channels (as cells within the netlist):

    * inputs -- drive via ``Simulator.schedule_input(sc.cell, port)`` using
      :meth:`input_cell`: ``in``, ``write``, ``set0``, ``set1``, ``rst``;
    * outputs -- ``out`` (carry/borrow) and ``read`` arrive at the cells
      returned by :attr:`out_port` / :attr:`read_probe`.

    The ``out`` channel is left unconnected so callers chain SCs into NPEs;
    call :meth:`connect_out` or attach a probe.
    """

    #: Intra-SC wire delay in ps (short on-cell stubs).
    WIRE_DELAY = 1.0

    def __init__(self, net: Netlist, name: str):
        self.net = net
        self.name = name
        w = self.WIRE_DELAY
        add, con = net.add, net.connect

        # Input confluence: in + write + clear-feedback -> state toggle.
        self.in_cb = add(library.CB3(f"{name}.in_cb"))
        self.in_spl = add(library.SPL(f"{name}.in_spl"))
        con(self.in_cb, "dout", self.in_spl, "din", delay=w)

        # The state bit: TFFL/TFFR pair toggled together.
        self.tffl = add(library.TFFL(f"{name}.tffl"))
        self.tffr = add(library.TFFR(f"{name}.tffr"))
        con(self.in_spl, "doutA", self.tffl, "din", delay=w)
        con(self.in_spl, "doutB", self.tffr, "din", delay=w)

        # Flip pulses fan out to the output gate and the state monitor.
        self.tffl_spl = add(library.SPL(f"{name}.tffl_spl"))
        self.tffr_spl = add(library.SPL(f"{name}.tffr_spl"))
        con(self.tffl, "dout", self.tffl_spl, "din", delay=w)
        con(self.tffr, "dout", self.tffr_spl, "din", delay=w)

        # Output gates.
        self.ndro0 = add(library.NDRO(f"{name}.ndro0"))
        self.ndro1 = add(library.NDRO(f"{name}.ndro1"))
        con(self.tffl_spl, "doutA", self.ndro0, "clk", delay=w)
        con(self.tffr_spl, "doutA", self.ndro1, "clk", delay=w)
        self.out_cb = add(library.CB(f"{name}.out_cb"))
        con(self.ndro0, "dout", self.out_cb, "dinA", delay=w)
        con(self.ndro1, "dout", self.out_cb, "dinB", delay=w)

        # Mutually exclusive polarity channels: set0 arms NDRO0 and disarms
        # NDRO1 (and vice versa); rst disarms both.
        self.set0_spl = add(library.SPL(f"{name}.set0_spl"))
        self.set1_spl = add(library.SPL(f"{name}.set1_spl"))
        self.ndro0_rst_cb = add(library.CB(f"{name}.ndro0_rst_cb"))
        self.ndro1_rst_cb = add(library.CB(f"{name}.ndro1_rst_cb"))
        con(self.set0_spl, "doutA", self.ndro0, "din", delay=w)
        con(self.set0_spl, "doutB", self.ndro1_rst_cb, "dinA", delay=w)
        con(self.set1_spl, "doutA", self.ndro1, "din", delay=w)
        con(self.set1_spl, "doutB", self.ndro0_rst_cb, "dinA", delay=w)
        con(self.ndro0_rst_cb, "dout", self.ndro0, "rst", delay=w)
        con(self.ndro1_rst_cb, "dout", self.ndro1, "rst", delay=w)

        # State monitor: NDRO2 mirrors the TFF state (set on 0->1, cleared
        # on 1->0); rst clocks it out (aligned read) and the read-out pulse
        # feeds back to toggle the state to 0.
        self.ndro2 = add(library.NDRO(f"{name}.ndro2"))
        con(self.tffl_spl, "doutB", self.ndro2, "din", delay=w)
        con(self.tffr_spl, "doutB", self.ndro2, "rst", delay=w)
        self.rst_spl = add(library.SPL3(f"{name}.rst_spl"))
        con(self.rst_spl, "doutA", self.ndro0_rst_cb, "dinB", delay=w)
        con(self.rst_spl, "doutB", self.ndro1_rst_cb, "dinB", delay=w)
        con(self.rst_spl, "doutC", self.ndro2, "clk", delay=w)
        self.read_spl = add(library.SPL(f"{name}.read_spl"))
        con(self.ndro2, "dout", self.read_spl, "din", delay=w)
        # Clear feedback: toggles the state bit back to 0 on reset-read.
        con(self.read_spl, "doutB", self.in_cb, "dinC", delay=w)
        # Read channel observation point.
        self.read_probe = add(library.Probe(f"{name}.read"))
        con(self.read_spl, "doutA", self.read_probe, "din", delay=w)

    # -- wiring helpers ----------------------------------------------------

    #: Map of external input channel -> (cell attribute, port).
    _INPUT_MAP = {
        "in": ("in_cb", "dinA"),
        "write": ("in_cb", "dinB"),
        "set0": ("set0_spl", "din"),
        "set1": ("set1_spl", "din"),
        "rst": ("rst_spl", "din"),
    }

    def input_cell(self, channel: str):
        """Return (cell, port) receiving the named external input channel."""
        if channel not in self._INPUT_MAP:
            raise ProtocolError(
                f"SC has no input channel '{channel}'; "
                f"channels are {sorted(self._INPUT_MAP)}"
            )
        attr, port = self._INPUT_MAP[channel]
        return getattr(self, attr), port

    def connect_out(self, dst_cell, dst_port: str, delay: float = 1.0,
                    jtl_count: int = 0) -> None:
        """Wire the SC's ``out`` channel (carry/borrow) onward."""
        self.net.connect(self.out_cb, "dout", dst_cell, dst_port,
                         delay=delay, jtl_count=jtl_count)

    # -- state inspection (for tests / cross-validation) --------------------

    @property
    def state(self) -> bool:
        """Current value of the state bit (TFFL and TFFR always agree)."""
        return self.tffl.state

    @property
    def armed(self) -> Optional[Polarity]:
        """Which polarity gate is currently armed, if any."""
        if self.ndro0.stored:
            return Polarity.SET0
        if self.ndro1.stored:
            return Polarity.SET1
        return None

    #: Number of RSFQ cells a single SC comprises (resource model).
    CELL_HISTOGRAM = {
        "CB3": 1, "SPL": 6, "SPL3": 1, "CB": 3, "NDRO": 3,
        "TFFL": 1, "TFFR": 1,
    }

    @classmethod
    def jj_count(cls) -> int:
        """Logic JJs of one SC (from its cell histogram)."""
        total = 0
        for cell_name, count in cls.CELL_HISTOGRAM.items():
            total += getattr(library, cell_name).JJ_COUNT * count
        return total
