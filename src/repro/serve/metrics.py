"""Serving metrics: per-request latency plus aggregate FPS/SOPS.

Counters are updated by the server's dispatcher thread under a lock and
snapshotted into an immutable :class:`ServerStats` by
:meth:`MetricsRecorder.snapshot` -- cheap enough to poll from a
monitoring loop.  Latencies are kept in a bounded ring so a long-lived
server's memory stays O(1).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class ServerStats:
    """Aggregate serving statistics at one point in time.

    Attributes:
        requests: Requests accepted so far.
        completed: Requests answered (successfully).
        failed: Requests answered with an error.
        samples: Samples inferred (== completed for 1-sample requests).
        batches: Coalesced hardware batches executed.
        mean_batch: Mean coalesced batch size.
        latency_ms_p50 / latency_ms_p95 / latency_ms_max: Request
            latency percentiles over the retained window (submit ->
            result, queueing included).
        fps: Aggregate samples/second since the server started.
        sops: Aggregate synaptic operations/second since start (the
            paper's SOPS throughput axis).
        synaptic_ops: Total synaptic operations executed.
        uptime_s: Seconds since the server started.
    """

    requests: int
    completed: int
    failed: int
    samples: int
    batches: int
    mean_batch: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_max: float
    fps: float
    sops: float
    synaptic_ops: int
    uptime_s: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "samples": self.samples,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch, 3),
            "latency_ms_p50": round(self.latency_ms_p50, 3),
            "latency_ms_p95": round(self.latency_ms_p95, 3),
            "latency_ms_max": round(self.latency_ms_max, 3),
            "fps": round(self.fps, 1),
            "sops": round(self.sops, 1),
            "synaptic_ops": self.synaptic_ops,
            "uptime_s": round(self.uptime_s, 3),
        }


class MetricsRecorder:
    """Thread-safe accumulator behind :meth:`InferenceServer.stats`."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=latency_window)
        self._started = time.monotonic()
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.samples = 0
        self.batches = 0
        self.synaptic_ops = 0

    def record_submit(self, n: int = 1) -> None:
        with self._lock:
            self.requests += n

    def record_batch(
        self,
        batch_size: int,
        synops: int,
        latencies_ms: Sequence[float],
    ) -> None:
        with self._lock:
            self.batches += 1
            self.samples += batch_size
            self.completed += len(latencies_ms)
            self.synaptic_ops += synops
            self._latencies.extend(latencies_ms)

    def record_failure(self, n: int = 1) -> None:
        with self._lock:
            self.failed += n

    def snapshot(self) -> ServerStats:
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            ordered = sorted(self._latencies)
            return ServerStats(
                requests=self.requests,
                completed=self.completed,
                failed=self.failed,
                samples=self.samples,
                batches=self.batches,
                mean_batch=(self.samples / self.batches
                            if self.batches else 0.0),
                latency_ms_p50=_percentile(ordered, 0.50),
                latency_ms_p95=_percentile(ordered, 0.95),
                latency_ms_max=(ordered[-1] if ordered else 0.0),
                fps=self.samples / uptime,
                sops=self.synaptic_ops / uptime,
                synaptic_ops=self.synaptic_ops,
                uptime_s=uptime,
            )
