"""Serving metrics: per-request latency plus aggregate FPS/SOPS.

Counters are updated by the server's dispatcher thread under a lock and
snapshotted into an immutable :class:`ServerStats` by
:meth:`MetricsRecorder.snapshot` -- cheap enough to poll from a
monitoring loop.  Latencies are kept in a bounded ring so a long-lived
server's memory stays O(1).

Robustness counters (this layer's contribution to the supervision story
in ``docs/SERVING.md``): ``expired`` (requests whose per-request
deadline lapsed while queued), ``cancelled`` (futures cancelled by the
caller before dispatch), ``pool_failures`` (batches that fell back to
serial after a pool error), ``poison_batches`` (batches quarantined by
:class:`~repro.ssnn.pool.PoisonBatchError`), plus the point-in-time
breaker / worker / queue fields the server injects at snapshot time.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class ServerStats:
    """Aggregate serving statistics at one point in time.

    Attributes:
        requests: Requests accepted so far.
        completed: Requests answered (successfully).
        failed: Requests answered with an error.
        samples: Samples inferred (== completed for 1-sample requests).
        batches: Coalesced hardware batches executed.
        mean_batch: Mean coalesced batch size.
        latency_ms_p50 / latency_ms_p95 / latency_ms_max: Request
            latency percentiles over the retained window (submit ->
            result, queueing included).
        fps: Aggregate samples/second since the server started.
        sops: Aggregate synaptic operations/second since start (the
            paper's SOPS throughput axis).
        synaptic_ops: Total synaptic operations executed.
        uptime_s: Seconds since the server started.
        expired: Requests failed at dispatch because their per-request
            ``deadline_ms`` had lapsed while queued.
        cancelled: Requests skipped at dispatch because the caller
            cancelled their future (e.g. :meth:`InferenceServer.infer`
            timing out).
        pool_failures: Batches that fell back to serial execution after
            a pool error (counted toward the circuit breaker).
        poison_batches: Batches quarantined as poison by the pool and
            executed serially.
        pending: Requests accepted but not yet resolved (queue +
            in-flight); 0 when fully drained.
        breaker_state: Circuit-breaker state at snapshot time.
        workers_configured / workers_alive / worker_restarts: Pool
            supervision gauges (0 when serving serially).
        queue_depth: Requests waiting in the coalescing queue.
    """

    requests: int
    completed: int
    failed: int
    samples: int
    batches: int
    mean_batch: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_max: float
    fps: float
    sops: float
    synaptic_ops: int
    uptime_s: float
    expired: int = 0
    cancelled: int = 0
    pool_failures: int = 0
    poison_batches: int = 0
    pending: int = 0
    breaker_state: str = "closed"
    workers_configured: int = 0
    workers_alive: int = 0
    worker_restarts: int = 0
    queue_depth: int = 0

    def to_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "samples": self.samples,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch, 3),
            "latency_ms_p50": round(self.latency_ms_p50, 3),
            "latency_ms_p95": round(self.latency_ms_p95, 3),
            "latency_ms_max": round(self.latency_ms_max, 3),
            "fps": round(self.fps, 1),
            "sops": round(self.sops, 1),
            "synaptic_ops": self.synaptic_ops,
            "uptime_s": round(self.uptime_s, 3),
            "expired": self.expired,
            "cancelled": self.cancelled,
            "pool_failures": self.pool_failures,
            "poison_batches": self.poison_batches,
            "pending": self.pending,
            "breaker_state": self.breaker_state,
            "workers_configured": self.workers_configured,
            "workers_alive": self.workers_alive,
            "worker_restarts": self.worker_restarts,
            "queue_depth": self.queue_depth,
        }


# -- Prometheus text exposition ---------------------------------------------
#
# A metric *family* is ``(name, type, help, samples)`` where ``samples``
# is a list of ``(labels-or-None, value)``.  The renderer emits the
# Prometheus text exposition format (version 0.0.4): one ``# HELP`` and
# ``# TYPE`` comment per family followed by its sample lines.  Only the
# subset the gateway needs is implemented -- counters and gauges, label
# escaping, no timestamps -- but the output parses with any Prometheus
# scraper (and with the little parser in ``tests/gateway``).

MetricFamily = Tuple[str, str, str, Sequence[Tuple[Optional[Dict], float]]]

#: The breaker states exported as a one-hot ``breaker_state`` gauge.
BREAKER_STATES = ("closed", "open", "half-open")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(families: Iterable[MetricFamily]) -> str:
    """Render metric families as Prometheus text exposition."""
    lines: List[str] = []
    for name, mtype, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label_value(str(val))}"'
                    for key, val in sorted(labels.items())
                )
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def server_stats_families(
    stats: "ServerStats", namespace: str = "sushi"
) -> List[MetricFamily]:
    """The backend :class:`ServerStats` as Prometheus metric families.

    Counters keep their cumulative-total semantics (``_total`` suffix);
    point-in-time fields export as gauges; the breaker state is a
    one-hot gauge over :data:`BREAKER_STATES`.
    """
    n = namespace
    counters = (
        ("requests", stats.requests, "Requests accepted by the server"),
        ("completed", stats.completed, "Requests answered successfully"),
        ("failed", stats.failed, "Requests answered with an error"),
        ("samples", stats.samples, "Samples inferred"),
        ("batches", stats.batches, "Coalesced hardware batches executed"),
        ("expired", stats.expired,
         "Requests expired at dispatch (deadline_ms lapsed)"),
        ("cancelled", stats.cancelled,
         "Requests cancelled by the caller before dispatch"),
        ("pool_failures", stats.pool_failures,
         "Batches that fell back to serial after a pool error"),
        ("poison_batches", stats.poison_batches,
         "Batches quarantined as poison and run serially"),
        ("synaptic_ops", stats.synaptic_ops,
         "Synaptic operations executed"),
    )
    gauges = (
        ("pending", stats.pending, "Accepted but unresolved requests"),
        ("queue_depth", stats.queue_depth,
         "Requests waiting in the coalescing queue"),
        ("mean_batch", stats.mean_batch, "Mean coalesced batch size"),
        ("latency_ms_p50", stats.latency_ms_p50,
         "p50 request latency over the retained window (ms)"),
        ("latency_ms_p95", stats.latency_ms_p95,
         "p95 request latency over the retained window (ms)"),
        ("latency_ms_max", stats.latency_ms_max,
         "Max request latency over the retained window (ms)"),
        ("fps", stats.fps, "Aggregate samples per second since start"),
        ("sops", stats.sops,
         "Aggregate synaptic operations per second since start"),
        ("uptime_seconds", stats.uptime_s, "Seconds since server start"),
        ("workers_configured", stats.workers_configured,
         "Pool workers configured (0 when serial)"),
        ("workers_alive", stats.workers_alive, "Pool workers alive"),
        ("worker_restarts", stats.worker_restarts,
         "Pool worker resurrections"),
    )
    families: List[MetricFamily] = [
        (f"{n}_server_{name}_total", "counter", help_text,
         [(None, value)])
        for name, value, help_text in counters
    ]
    families.extend(
        (f"{n}_server_{name}", "gauge", help_text, [(None, value)])
        for name, value, help_text in gauges
    )
    families.append((
        f"{n}_server_breaker_state", "gauge",
        "Circuit breaker state (one-hot over closed/open/half-open)",
        [({"state": state}, 1.0 if stats.breaker_state == state else 0.0)
         for state in BREAKER_STATES],
    ))
    return families


#: Help text for the ``sushi_client_*`` families (the counter names
#: mirror :data:`repro.gateway.client.CLIENT_COUNTER_FIELDS`).
_CLIENT_COUNTER_HELP = {
    "requests": "Client requests issued",
    "attempts": "Wire attempts (first sends + retries + hedges)",
    "retries": "Attempts re-sent after a transport failure",
    "hedges": "Duplicate requests fired after the hedge threshold",
    "hedge_wins": "Hedged duplicates that answered first",
    "timeouts": "Attempts that timed out on the socket",
    "conn_errors": "Attempts that died on reset/refused/EOF",
    "replays": "Responses served from the server idempotency ledger",
    "deadline_exceeded": "Requests abandoned after the client deadline",
    "budget_exhausted": "Retries refused by the lifetime retry budget",
    "connections_opened": "Fresh TCP connections dialled",
    "connections_reused": "Requests served off a pooled connection",
}


def client_counter_families(
    snapshot: Dict[str, int], namespace: str = "sushi"
) -> List[MetricFamily]:
    """``sushi_client_*`` families from a client-counter snapshot.

    Takes a plain dict (rather than importing the gateway client) so
    the serve layer stays import-cycle free; the gateway ``/metrics``
    handler feeds it ``GLOBAL_CLIENT_COUNTERS.snapshot()``.
    """
    n = namespace
    return [
        (f"{n}_client_{name}_total", "counter",
         _CLIENT_COUNTER_HELP.get(name, name),
         [(None, count)])
        for name, count in sorted(snapshot.items())
    ]


def shed_families(
    sheds: Dict[Tuple[str, int], int], namespace: str = "sushi"
) -> List[MetricFamily]:
    """``sushi_shed_*`` families from ``(code, priority) -> count``.

    The edge's load-shedding story by typed reason and tenant
    priority class -- rate limiting and admission control both land
    here, so one scrape shows *who* is being turned away and *why*.
    """
    n = namespace
    return [
        (f"{n}_shed_requests_total", "counter",
         "Requests shed at the edge, by error code and tenant priority",
         [({"code": code, "priority": str(priority)}, count)
          for (code, priority), count in sorted(sheds.items())]
         or [(None, 0)]),
    ]


class MetricsRecorder:
    """Thread-safe accumulator behind :meth:`InferenceServer.stats`."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=latency_window)
        self._started = time.monotonic()
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.samples = 0
        self.batches = 0
        self.synaptic_ops = 0
        self.expired = 0
        self.cancelled = 0
        self.pool_failures = 0
        self.poison_batches = 0

    def record_submit(self, n: int = 1) -> None:
        with self._lock:
            self.requests += n

    def record_batch(
        self,
        batch_size: int,
        synops: int,
        latencies_ms: Sequence[float],
    ) -> None:
        with self._lock:
            self.batches += 1
            self.samples += batch_size
            self.completed += len(latencies_ms)
            self.synaptic_ops += synops
            self._latencies.extend(latencies_ms)

    def record_failure(self, n: int = 1) -> None:
        with self._lock:
            self.failed += n

    def record_expired(self, n: int = 1) -> None:
        with self._lock:
            self.expired += n

    def record_cancelled(self, n: int = 1) -> None:
        with self._lock:
            self.cancelled += n

    def record_pool_failure(self) -> None:
        with self._lock:
            self.pool_failures += 1

    def record_poison(self) -> None:
        with self._lock:
            self.poison_batches += 1

    def snapshot(
        self,
        *,
        breaker_state: str = "closed",
        workers_configured: int = 0,
        workers_alive: int = 0,
        worker_restarts: int = 0,
        queue_depth: int = 0,
    ) -> ServerStats:
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            ordered = sorted(self._latencies)
            resolved = (self.completed + self.failed + self.expired
                        + self.cancelled)
            return ServerStats(
                requests=self.requests,
                completed=self.completed,
                failed=self.failed,
                samples=self.samples,
                batches=self.batches,
                mean_batch=(self.samples / self.batches
                            if self.batches else 0.0),
                latency_ms_p50=_percentile(ordered, 0.50),
                latency_ms_p95=_percentile(ordered, 0.95),
                latency_ms_max=(ordered[-1] if ordered else 0.0),
                fps=self.samples / uptime,
                sops=self.synaptic_ops / uptime,
                synaptic_ops=self.synaptic_ops,
                uptime_s=uptime,
                expired=self.expired,
                cancelled=self.cancelled,
                pool_failures=self.pool_failures,
                poison_batches=self.poison_batches,
                pending=max(0, self.requests - resolved),
                breaker_state=breaker_state,
                workers_configured=workers_configured,
                workers_alive=workers_alive,
                worker_restarts=worker_restarts,
                queue_depth=queue_depth,
            )
