"""The adaptive micro-batching inference server.

One dispatcher thread drains a request queue: the first request of a
batch opens a coalescing window; further requests join until the batch
holds ``batch_max`` samples or ``deadline_ms`` has elapsed since the
window opened, then the whole batch runs as a single row block through
the compiled plan (serially or on the persistent shared-memory pool).
Every request therefore trades at most ``deadline_ms`` of queueing
latency for hardware-sized batches -- the same latency/throughput knob
real serving stacks expose.

Requests whose spike trains disagree in shape are never mixed into one
batch; a shape change simply closes the current window (the mismatched
request opens the next one).

Failure semantics (see ``docs/SERVING.md``): the pool resurrects its
own workers, so transient chaos heals *inside* a call; a pool call that
still fails counts against a :class:`~repro.serve.breaker.CircuitBreaker`
and the batch re-runs serially (identical answers).  The breaker opens
after ``K`` consecutive pool failures, skips the pool while open, and
probes it half-open after a cool-down -- the server never permanently
discards a pool that might heal.  A
:class:`~repro.ssnn.pool.PoisonBatchError` is *not* a pool failure: the
pool already restored itself and fingered the row block, so the batch
runs serially and the breaker records a success.  Per-request
``deadline_ms`` bounds let callers cap queueing delay: requests whose
deadline lapsed while queued fail with
:class:`~repro.errors.DeadlineExceededError` at dispatch time, and
futures cancelled by the caller (e.g. an :meth:`InferenceServer.infer`
timeout) are skipped instead of burning a batch slot.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.snn.binarize import BinarizedNetwork
from repro.serve.breaker import CircuitBreaker
from repro.serve.metrics import MetricsRecorder, ServerStats
from repro.ssnn.compile import (
    CompiledNetwork,
    compile_network,
    resolve_plan_cache,
)
from repro.ssnn.pool import PoisonBatchError


@dataclass(frozen=True)
class ServeResult:
    """Answer to one serving request (one sample).

    Attributes:
        rates: (classes,) mean output spike rates.
        prediction: argmax class label.
        output_raster: (T, classes) per-step output spikes.
        latency_ms: Submit-to-answer wall-clock latency (queueing and
            coalescing included).
        batch_size: Samples in the coalesced batch this request rode in.
        steps: Time steps of the request's spike train.
    """

    rates: np.ndarray
    prediction: int
    output_raster: np.ndarray
    latency_ms: float
    batch_size: int
    steps: int


@dataclass
class _Request:
    train: np.ndarray  # (T, in_features)
    future: Future
    enqueued: float
    deadline: Optional[float] = None  # monotonic instant, None = no bound


class InferenceServer:
    """Micro-batching server over one compiled network.

    Args:
        network: The :class:`~repro.snn.binarize.BinarizedNetwork` to
            serve, compiled on construction (through the plan cache), OR
            pass an already-compiled artifact via ``compiled=``.
        chip_n / sc_per_npe / reorder: Chip configuration (ignored when
            ``compiled`` is given).
        batch_max: Coalescing ceiling in samples.
        deadline_ms: Coalescing window: maximum time a request waits for
            companions before its batch is dispatched.
        workers: ``> 1`` shards batches across a persistent supervised
            :class:`~repro.ssnn.pool.InferencePool`; ``0``/``1`` run
            in the dispatcher thread.  Pool failures fall back to serial
            for that batch (served results are identical) and count
            against the circuit breaker.
        plan_cache: See :func:`repro.ssnn.compile.resolve_plan_cache`.
        queue_max: Backpressure bound; :meth:`submit` raises
            ``queue.Full`` beyond it.
        breaker: Circuit breaker guarding the pool path; a default
            :class:`~repro.serve.breaker.CircuitBreaker` is constructed
            when omitted.  Inject one with custom thresholds (or a fake
            clock) for tests and chaos scenarios.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        network: Optional[BinarizedNetwork] = None,
        *,
        compiled: Optional[CompiledNetwork] = None,
        chip_n: int = 16,
        sc_per_npe: int = 10,
        reorder: bool = True,
        batch_max: int = 512,
        deadline_ms: float = 2.0,
        workers: int = 0,
        plan_cache="default",
        queue_max: int = 65536,
        breaker: Optional[CircuitBreaker] = None,
    ):
        if (network is None) == (compiled is None):
            raise ConfigurationError(
                "pass exactly one of `network` or `compiled`"
            )
        if batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        if deadline_ms < 0:
            raise ConfigurationError("deadline_ms must be >= 0")
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if compiled is None:
            cache = resolve_plan_cache(plan_cache)
            if cache is not None:
                compiled = cache.get_or_compile(
                    network, chip_n, sc_per_npe, reorder
                )
            else:
                compiled = compile_network(
                    network, chip_n, sc_per_npe, reorder
                )
        self.compiled = compiled
        self.batch_max = batch_max
        self.deadline_ms = deadline_ms
        self.workers = workers
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=queue_max)
        self._holdback: Optional[_Request] = None
        # Guards the accepting-check/enqueue handshake against drain():
        # a submit that passed the check is counted in _admissions until
        # its request is actually queued, so drain cannot declare the
        # server settled while an admission is still in flight.
        self._admission_lock = threading.Lock()
        self._admissions = 0
        self._metrics = MetricsRecorder()
        self._pool = None
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._accepting = False
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._running:
            return self
        if self.workers > 1 and self._pool is None:
            from repro.ssnn.pool import InferencePool

            try:
                self._pool = InferencePool(
                    self.compiled, workers=self.workers
                )
            except self._DEGRADE_ERRORS:
                self._pool = None  # serve serially
        self._stopping.clear()
        self._running = True
        self._accepting = True
        self._thread = threading.Thread(
            target=self._serve_loop, name="sushi-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the dispatcher.  With ``drain=True`` (default) queued
        requests are answered first; otherwise they fail fast with a
        :class:`ConfigurationError`."""
        if not self._running:
            self._release_pool()
            return
        self._accepting = False
        if not drain:
            self._fail_pending("server stopped before this request ran")
        self._stopping.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._running = False
        self._thread = None
        self._fail_pending("server stopped before this request ran")
        self._release_pool()

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting new requests and wait until every accepted
        request has been resolved (answered, failed, expired or
        cancelled).  The dispatcher keeps running -- call :meth:`stop`
        afterwards to shut down, or flip :meth:`start` semantics back by
        restarting.  Returns ``True`` once fully drained, ``False`` on
        timeout (remaining work keeps draining in the background).

        Idempotent and safe to call concurrently -- with other
        :meth:`drain` calls (each independently waits for quiescence)
        and with in-flight :meth:`submit` / :meth:`infer`: a request
        that passed the accepting-check before the flip is either
        counted by ``_admissions`` (drain waits for it to land in the
        queue) or already queued (drain waits for its resolution), so
        ``True`` never strands an accepted request."""
        with self._admission_lock:
            self._accepting = False
        deadline = time.monotonic() + timeout
        while not self._settled():
            if time.monotonic() >= deadline:
                return self._settled()
            time.sleep(0.005)
        return True

    def _settled(self) -> bool:
        """No admission mid-handshake, nothing queued or held back, and
        every accepted request resolved."""
        with self._admission_lock:
            if self._admissions > 0:
                return False
        return (self._queue.empty() and self._holdback is None
                and self.stats().pending == 0)

    def _release_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _fail_pending(self, reason: str) -> None:
        pending: List[_Request] = []
        if self._holdback is not None:
            pending.append(self._holdback)
            self._holdback = None
        while True:
            try:
                pending.append(self._queue.get_nowait())
            except queue.Empty:
                break
        failed = 0
        for request in pending:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(ConfigurationError(reason))
                failed += 1
            else:
                self._metrics.record_cancelled()
        if failed:
            self._metrics.record_failure(failed)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path --------------------------------------------------------

    def submit(
        self,
        spike_train: np.ndarray,
        timeout: Optional[float] = None,
        *,
        deadline_ms: Optional[float] = None,
    ) -> Future:
        """Enqueue one sample; returns a future of :class:`ServeResult`.

        ``spike_train`` is ``(T, in_features)`` (or ``(T, 1,
        in_features)``, squeezed).  Raises immediately on shape errors
        and ``queue.Full`` under backpressure.  With ``deadline_ms`` the
        request fails with :class:`DeadlineExceededError` instead of
        executing if it is still queued when the deadline lapses.
        """
        if not self._running or not self._accepting:
            raise ConfigurationError("server is not accepting requests; "
                                     "call start()")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be > 0")
        train = np.asarray(spike_train, dtype=np.float64)
        if train.ndim == 3 and train.shape[1] == 1:
            train = train[:, 0, :]
        if train.ndim != 2:
            raise ConfigurationError(
                "spike_train must be (T, in_features) for one sample"
            )
        if train.shape[1] != self.compiled.in_features:
            raise ConfigurationError(
                f"spike width {train.shape[1]} != compiled input "
                f"{self.compiled.in_features}"
            )
        now = time.monotonic()
        future: Future = Future()
        request = _Request(
            train=train,
            future=future,
            enqueued=now,
            deadline=(now + deadline_ms / 1000.0
                      if deadline_ms is not None else None),
        )
        # Re-check acceptance under the admission lock and hold an
        # admission slot across the (possibly blocking) enqueue, so a
        # concurrent drain() either rejects this request here or waits
        # for it -- it can never return True with the request stranded
        # between the check and the queue.
        with self._admission_lock:
            if not self._running or not self._accepting:
                raise ConfigurationError(
                    "server is not accepting requests; call start()"
                )
            self._admissions += 1
        try:
            self._queue.put(request, timeout=timeout)
            self._metrics.record_submit()
        finally:
            with self._admission_lock:
                self._admissions -= 1
        return future

    def infer(
        self,
        spike_train: np.ndarray,
        timeout: float = 30.0,
        *,
        deadline_ms: Optional[float] = None,
    ) -> ServeResult:
        """Synchronous convenience wrapper around :meth:`submit`.

        On timeout the underlying future is *cancelled* so the orphaned
        request never burns a batch slot (it is skipped at dispatch and
        counted as ``cancelled`` in :meth:`stats`).
        """
        future = self.submit(spike_train, deadline_ms=deadline_ms)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise

    def queue_depth(self) -> int:
        """Requests waiting in the coalescing queue right now.  Cheap
        (no lock, no percentile sort) -- the per-request admission
        probe for gateways, unlike the full :meth:`stats` snapshot."""
        return self._queue.qsize() + (1 if self._holdback is not None else 0)

    def stats(self) -> ServerStats:
        pool = self._pool
        queue_depth = self.queue_depth()
        return self._metrics.snapshot(
            breaker_state=self.breaker.state,
            workers_configured=(self.workers if pool is not None else 0),
            workers_alive=(pool.alive_workers() if pool is not None else 0),
            worker_restarts=(pool.restarts if pool is not None else 0),
            queue_depth=queue_depth,
        )

    def health(self) -> Dict:
        """Point-in-time health snapshot (schema ``repro.serve.health/v1``)."""
        stats = self.stats()
        return {
            "schema": "repro.serve.health/v1",
            "running": self._running,
            "accepting": self._accepting,
            "ready": self.readiness(),
            "mode": "pool" if self._pool is not None else "serial",
            "breaker": self.breaker.snapshot().to_dict(),
            "stats": stats.to_dict(),
        }

    def readiness(self) -> bool:
        """``True`` when the server is running, accepting requests, and
        not shutting down -- the load-balancer admission check."""
        return (self._running and self._accepting
                and not self._stopping.is_set())

    # -- dispatcher ----------------------------------------------------------

    _DEGRADE_ERRORS = (ImportError, OSError, PermissionError, RuntimeError)

    def _admit(self, request: _Request) -> bool:
        """Dispatch-time admission: skip cancelled futures and expire
        requests whose per-request deadline lapsed while queued."""
        if request.deadline is not None \
                and time.monotonic() >= request.deadline:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(DeadlineExceededError(
                    "request deadline_ms lapsed while queued"
                ))
                self._metrics.record_expired()
            else:
                self._metrics.record_cancelled()
            return False
        if not request.future.set_running_or_notify_cancel():
            self._metrics.record_cancelled()
            return False
        return True

    def _next_request(self, timeout: float) -> Optional[_Request]:
        if self._holdback is not None:
            request, self._holdback = self._holdback, None
            return request
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def _serve_loop(self) -> None:
        while True:
            first = self._next_request(timeout=0.05)
            if first is None:
                if self._stopping.is_set() and self._queue.empty() \
                        and self._holdback is None:
                    return
                continue
            if not self._admit(first):
                continue
            batch = [first]
            deadline = time.monotonic() + self.deadline_ms / 1000.0
            while len(batch) < self.batch_max:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt.train.shape != first.train.shape:
                    # Never mix shapes: the straggler opens the next
                    # coalescing window.
                    self._holdback = nxt
                    break
                if self._admit(nxt):
                    batch.append(nxt)
            self._run_batch(batch)

    def _run_batch(self, batch: List[_Request]) -> None:
        try:
            steps, n_in = batch[0].train.shape
            n_out = self.compiled.out_features
            stacked = np.stack([r.train for r in batch], axis=1)
            rows = stacked.reshape(steps * len(batch), n_in)
            decisions, _spurious, synops = self._forward(rows)
            raster = decisions.reshape(steps, len(batch), n_out)
            rates = (raster.mean(axis=0) if steps
                     else raster.sum(axis=0))  # (batch, out)
            now = time.monotonic()
            latencies = []
            for i, request in enumerate(batch):
                latency_ms = (now - request.enqueued) * 1000.0
                latencies.append(latency_ms)
                request.future.set_result(ServeResult(
                    rates=rates[i],
                    prediction=int(rates[i].argmax()),
                    output_raster=raster[:, i, :],
                    latency_ms=latency_ms,
                    batch_size=len(batch),
                    steps=steps,
                ))
            self._metrics.record_batch(len(batch), synops, latencies)
        except Exception as exc:  # pragma: no cover - defensive
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            self._metrics.record_failure(len(batch))

    def _forward(self, rows: np.ndarray):
        pool = self._pool
        if pool is not None and not pool.closed and self.breaker.allow():
            try:
                result = pool.infer_rows(rows)
            except PoisonBatchError:
                # The pool healed itself and quarantined this row block;
                # that is a pool *success* (the block is the suspect).
                # Run this batch serially and keep the pool.
                self.breaker.record_success()
                self._metrics.record_poison()
            except self._DEGRADE_ERRORS:
                # Pool call failed even after supervision: count it
                # toward the breaker and serve this batch serially.
                # The pool is kept -- the breaker decides when (and
                # whether) to try it again.
                self.breaker.record_failure()
                self._metrics.record_pool_failure()
            else:
                self.breaker.record_success()
                return result
        return self.compiled.forward_rows(rows)

    def __repr__(self) -> str:
        mode = (f"pool[{self.workers}]" if self._pool is not None
                else "serial")
        state = "running" if self._running else "stopped"
        return (f"<InferenceServer {state} {mode} "
                f"breaker={self.breaker.state} "
                f"batch_max={self.batch_max} "
                f"deadline_ms={self.deadline_ms} "
                f"plan={self.compiled.fingerprint[:12]}>")
