"""The adaptive micro-batching inference server.

One dispatcher thread drains a request queue: the first request of a
batch opens a coalescing window; further requests join until the batch
holds ``batch_max`` samples or ``deadline_ms`` has elapsed since the
window opened, then the whole batch runs as a single row block through
the compiled plan (serially or on the persistent shared-memory pool).
Every request therefore trades at most ``deadline_ms`` of queueing
latency for hardware-sized batches -- the same latency/throughput knob
real serving stacks expose.

Requests whose spike trains disagree in shape are never mixed into one
batch; a shape change simply closes the current window (the mismatched
request opens the next one).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.snn.binarize import BinarizedNetwork
from repro.serve.metrics import MetricsRecorder, ServerStats
from repro.ssnn.compile import (
    CompiledNetwork,
    compile_network,
    resolve_plan_cache,
)


@dataclass(frozen=True)
class ServeResult:
    """Answer to one serving request (one sample).

    Attributes:
        rates: (classes,) mean output spike rates.
        prediction: argmax class label.
        output_raster: (T, classes) per-step output spikes.
        latency_ms: Submit-to-answer wall-clock latency (queueing and
            coalescing included).
        batch_size: Samples in the coalesced batch this request rode in.
        steps: Time steps of the request's spike train.
    """

    rates: np.ndarray
    prediction: int
    output_raster: np.ndarray
    latency_ms: float
    batch_size: int
    steps: int


@dataclass
class _Request:
    train: np.ndarray  # (T, in_features)
    future: Future
    enqueued: float


class InferenceServer:
    """Micro-batching server over one compiled network.

    Args:
        network: The :class:`~repro.snn.binarize.BinarizedNetwork` to
            serve, compiled on construction (through the plan cache), OR
            pass an already-compiled artifact via ``compiled=``.
        chip_n / sc_per_npe / reorder: Chip configuration (ignored when
            ``compiled`` is given).
        batch_max: Coalescing ceiling in samples.
        deadline_ms: Coalescing window: maximum time a request waits for
            companions before its batch is dispatched.
        workers: ``> 1`` shards batches across a persistent
            :class:`~repro.ssnn.pool.InferencePool`; ``0``/``1`` run
            in the dispatcher thread.  Pool failures degrade the server
            to serial execution (served results are identical).
        plan_cache: See :func:`repro.ssnn.compile.resolve_plan_cache`.
        queue_max: Backpressure bound; :meth:`submit` raises
            ``queue.Full`` beyond it.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        network: Optional[BinarizedNetwork] = None,
        *,
        compiled: Optional[CompiledNetwork] = None,
        chip_n: int = 16,
        sc_per_npe: int = 10,
        reorder: bool = True,
        batch_max: int = 512,
        deadline_ms: float = 2.0,
        workers: int = 0,
        plan_cache="default",
        queue_max: int = 65536,
    ):
        if (network is None) == (compiled is None):
            raise ConfigurationError(
                "pass exactly one of `network` or `compiled`"
            )
        if batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        if deadline_ms < 0:
            raise ConfigurationError("deadline_ms must be >= 0")
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if compiled is None:
            cache = resolve_plan_cache(plan_cache)
            if cache is not None:
                compiled = cache.get_or_compile(
                    network, chip_n, sc_per_npe, reorder
                )
            else:
                compiled = compile_network(
                    network, chip_n, sc_per_npe, reorder
                )
        self.compiled = compiled
        self.batch_max = batch_max
        self.deadline_ms = deadline_ms
        self.workers = workers
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=queue_max)
        self._holdback: Optional[_Request] = None
        self._metrics = MetricsRecorder()
        self._pool = None
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._running:
            return self
        if self.workers > 1 and self._pool is None:
            from repro.ssnn.pool import InferencePool

            try:
                self._pool = InferencePool(
                    self.compiled, workers=self.workers
                )
            except self._DEGRADE_ERRORS:
                self._pool = None  # serve serially
        self._stopping.clear()
        self._running = True
        self._thread = threading.Thread(
            target=self._serve_loop, name="sushi-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the dispatcher.  With ``drain=True`` (default) queued
        requests are answered first; otherwise they fail fast with a
        :class:`ConfigurationError`."""
        if not self._running:
            self._release_pool()
            return
        if not drain:
            self._fail_pending("server stopped before this request ran")
        self._stopping.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._running = False
        self._thread = None
        self._fail_pending("server stopped before this request ran")
        self._release_pool()

    def _release_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _fail_pending(self, reason: str) -> None:
        pending: List[_Request] = []
        if self._holdback is not None:
            pending.append(self._holdback)
            self._holdback = None
        while True:
            try:
                pending.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for request in pending:
            request.future.set_exception(ConfigurationError(reason))
        if pending:
            self._metrics.record_failure(len(pending))

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path --------------------------------------------------------

    def submit(
        self, spike_train: np.ndarray, timeout: Optional[float] = None
    ) -> Future:
        """Enqueue one sample; returns a future of :class:`ServeResult`.

        ``spike_train`` is ``(T, in_features)`` (or ``(T, 1,
        in_features)``, squeezed).  Raises immediately on shape errors
        and ``queue.Full`` under backpressure.
        """
        if not self._running:
            raise ConfigurationError("server is not running; call start()")
        train = np.asarray(spike_train, dtype=np.float64)
        if train.ndim == 3 and train.shape[1] == 1:
            train = train[:, 0, :]
        if train.ndim != 2:
            raise ConfigurationError(
                "spike_train must be (T, in_features) for one sample"
            )
        if train.shape[1] != self.compiled.in_features:
            raise ConfigurationError(
                f"spike width {train.shape[1]} != compiled input "
                f"{self.compiled.in_features}"
            )
        future: Future = Future()
        request = _Request(
            train=train, future=future, enqueued=time.monotonic()
        )
        self._queue.put(request, timeout=timeout)
        self._metrics.record_submit()
        return future

    def infer(
        self, spike_train: np.ndarray, timeout: float = 30.0
    ) -> ServeResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(spike_train).result(timeout=timeout)

    def stats(self) -> ServerStats:
        return self._metrics.snapshot()

    # -- dispatcher ----------------------------------------------------------

    _DEGRADE_ERRORS = (ImportError, OSError, PermissionError, RuntimeError)

    def _next_request(self, timeout: float) -> Optional[_Request]:
        if self._holdback is not None:
            request, self._holdback = self._holdback, None
            return request
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def _serve_loop(self) -> None:
        while True:
            first = self._next_request(timeout=0.05)
            if first is None:
                if self._stopping.is_set() and self._queue.empty() \
                        and self._holdback is None:
                    return
                continue
            batch = [first]
            deadline = time.monotonic() + self.deadline_ms / 1000.0
            while len(batch) < self.batch_max:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt.train.shape != first.train.shape:
                    # Never mix shapes: the straggler opens the next
                    # coalescing window.
                    self._holdback = nxt
                    break
                batch.append(nxt)
            self._run_batch(batch)

    def _run_batch(self, batch: List[_Request]) -> None:
        try:
            steps, n_in = batch[0].train.shape
            n_out = self.compiled.out_features
            stacked = np.stack([r.train for r in batch], axis=1)
            rows = stacked.reshape(steps * len(batch), n_in)
            decisions, _spurious, synops = self._forward(rows)
            raster = decisions.reshape(steps, len(batch), n_out)
            rates = (raster.mean(axis=0) if steps
                     else raster.sum(axis=0))  # (batch, out)
            now = time.monotonic()
            latencies = []
            for i, request in enumerate(batch):
                latency_ms = (now - request.enqueued) * 1000.0
                latencies.append(latency_ms)
                request.future.set_result(ServeResult(
                    rates=rates[i],
                    prediction=int(rates[i].argmax()),
                    output_raster=raster[:, i, :],
                    latency_ms=latency_ms,
                    batch_size=len(batch),
                    steps=steps,
                ))
            self._metrics.record_batch(len(batch), synops, latencies)
        except Exception as exc:  # pragma: no cover - defensive
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            self._metrics.record_failure(len(batch))

    def _forward(self, rows: np.ndarray):
        if self._pool is not None:
            try:
                return self._pool.infer_rows(rows)
            except self._DEGRADE_ERRORS:
                # Pool died: degrade to serial for the rest of the
                # server's life (results are identical).
                self._release_pool()
        return self.compiled.forward_rows(rows)

    def __repr__(self) -> str:
        mode = (f"pool[{self.workers}]" if self._pool is not None
                else "serial")
        state = "running" if self._running else "stopped"
        return (f"<InferenceServer {state} {mode} "
                f"batch_max={self.batch_max} "
                f"deadline_ms={self.deadline_ms} "
                f"plan={self.compiled.fingerprint[:12]}>")
