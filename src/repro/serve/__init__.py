"""Serving layer: adaptive micro-batching on top of compiled plans.

The first serving-layer brick of the production north star
(ROADMAP.md): an in-process :class:`InferenceServer` that accepts
single-sample requests, coalesces them into hardware-sized batches
(up to ``batch_max`` samples or ``deadline_ms`` of queueing, whichever
comes first), executes them through a compile-once
:class:`~repro.ssnn.compile.CompiledNetwork` -- optionally sharded
across a persistent shared-memory
:class:`~repro.ssnn.pool.InferencePool` -- and reports per-request
latency plus aggregate FPS/SOPS counters.

The robustness layer (the supervision story of ``docs/SERVING.md``):
pool calls are guarded by a :class:`CircuitBreaker` (closed -> open ->
half-open), per-request ``deadline_ms`` bounds expire queued requests
at dispatch time, and :meth:`InferenceServer.health` /
:meth:`InferenceServer.readiness` expose the supervision gauges.

See ``docs/SERVING.md`` for the compile -> pool -> server architecture
and ``benchmarks/bench_serve.py`` for the committed throughput gates.
"""

from repro.serve.breaker import BreakerSnapshot, CircuitBreaker
from repro.serve.metrics import (
    MetricsRecorder,
    ServerStats,
    render_prometheus,
    server_stats_families,
)
from repro.serve.server import InferenceServer, ServeResult

__all__ = [
    "BreakerSnapshot",
    "CircuitBreaker",
    "InferenceServer",
    "MetricsRecorder",
    "ServeResult",
    "ServerStats",
    "render_prometheus",
    "server_stats_families",
]
