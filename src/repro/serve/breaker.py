"""Circuit breaker for the serving pipeline's pool path.

The supervised :class:`~repro.ssnn.pool.InferencePool` resurrects its
own workers, so individual failures heal in place -- but a pool that
*keeps* failing (e.g. the host is out of memory, the shared-memory
filesystem is gone, every respawn dies) should not be retried on every
single batch.  :class:`CircuitBreaker` implements the classic
three-state machine in front of the pool path:

* **closed** -- normal operation; every batch may use the pool.  ``K``
  *consecutive* failures (``failure_threshold``) trip the breaker.
* **open** -- the pool path is skipped entirely (batches run serially,
  answers identical) until ``reset_timeout_s`` has elapsed.
* **half-open** -- after the cool-down, up to ``half_open_probes``
  batches are allowed through as probes: one success closes the
  breaker, one failure re-opens it (and restarts the cool-down).

The breaker never changes *what* is computed -- only whether a batch is
attempted on the pool or executed serially -- so every state is
bit-identical to serial execution by construction (asserted end-to-end
by the ``breaker-cycle`` scenario of :mod:`repro.harness.chaos`).

The clock is injectable for deterministic tests; all methods are
thread-safe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Transitions retained in the snapshot ring (oldest dropped first).
_TRANSITION_WINDOW = 32


@dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time view of a :class:`CircuitBreaker`.

    Attributes:
        state: ``"closed"``, ``"open"`` or ``"half-open"``.
        consecutive_failures: Current failure streak (resets on success).
        failure_threshold: Streak length that trips the breaker.
        reset_timeout_s: Cool-down before open -> half-open.
        open_for_s: Seconds spent in the current open period (0 unless
            open).
        opens / closes / probes: Lifetime transition counters.
        transitions: The most recent ``(from, to)`` transitions.
    """

    state: str
    consecutive_failures: int
    failure_threshold: int
    reset_timeout_s: float
    open_for_s: float
    opens: int
    closes: int
    probes: int
    transitions: Tuple[Tuple[str, str], ...]

    def to_dict(self) -> Dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "reset_timeout_s": self.reset_timeout_s,
            "open_for_s": round(self.open_for_s, 3),
            "opens": self.opens,
            "closes": self.closes,
            "probes": self.probes,
            "transitions": [list(t) for t in self.transitions],
        }


class CircuitBreaker:
    """closed -> open -> half-open -> closed state machine.

    Args:
        failure_threshold: Consecutive failures that trip closed -> open.
        reset_timeout_s: Cool-down before an open breaker admits probes.
        half_open_probes: Concurrent probe budget while half-open.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ConfigurationError("reset_timeout_s must be > 0")
        if half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._opens = 0
        self._closes = 0
        self._probes = 0
        self._transitions: list = []

    # -- state machine -------------------------------------------------------

    def _transition_locked(self, new_state: str) -> None:
        self._transitions.append((self._state, new_state))
        del self._transitions[:-_TRANSITION_WINDOW]
        self._state = new_state

    def allow(self) -> bool:
        """May the caller attempt the protected operation right now?

        Closed: always.  Open: no, until ``reset_timeout_s`` has elapsed
        (which flips to half-open).  Half-open: yes while the probe
        budget lasts.  A granted half-open ``allow()`` *consumes* a
        probe slot; the caller must follow with :meth:`record_success`
        or :meth:`record_failure`.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                if elapsed < self.reset_timeout_s:
                    return False
                self._transition_locked(HALF_OPEN)
                self._probes_in_flight = 0
            # half-open
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        """The protected operation succeeded: reset the failure streak;
        a half-open success closes the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._transition_locked(CLOSED)
                self._closes += 1
                self._probes_in_flight = 0
                self._opened_at = None

    def record_failure(self) -> None:
        """The protected operation failed: extend the streak; trip
        closed -> open at the threshold; re-open from half-open."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._transition_locked(OPEN)
                self._opens += 1
                self._opened_at = self._clock()
                self._probes_in_flight = 0
            elif (self._state == CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._transition_locked(OPEN)
                self._opens += 1
                self._opened_at = self._clock()

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, with the open -> half-open clock applied (an
        expired open period reads as ``"half-open"``)."""
        with self._lock:
            if self._state == OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                if elapsed >= self.reset_timeout_s:
                    return HALF_OPEN
            return self._state

    def snapshot(self) -> BreakerSnapshot:
        with self._lock:
            open_for = 0.0
            if self._state == OPEN and self._opened_at is not None:
                open_for = max(0.0, self._clock() - self._opened_at)
            return BreakerSnapshot(
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                failure_threshold=self.failure_threshold,
                reset_timeout_s=self.reset_timeout_s,
                open_for_s=open_for,
                opens=self._opens,
                closes=self._closes,
                probes=self._probes,
                transitions=tuple(self._transitions),
            )

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state} "
                f"failures={self._consecutive_failures}/"
                f"{self.failure_threshold} "
                f"opens={self._opens} closes={self._closes}>")
