"""Spiking neural network framework (the SpikingJelly stand-in).

Implements the SNN substrate the paper trains with (section 6): IF/LIF
neuron nodes with surrogate-gradient backward passes, linear layers, Poisson
encoding, a multi-step runner, a BPTT trainer with Adam, and the XNOR-style
binarization that converts a trained float SNN into the integer form SUSHI
executes (:mod:`repro.snn.binarize`).
"""

from repro.snn.layers import (
    BinaryLinear,
    Dropout,
    Flatten,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.snn.convert import ANNClassifier, convert_ann_to_snn
from repro.snn.neurons import IFNode, LIFNode, StatelessIFNode
from repro.snn.encoding import LatencyEncoder, PoissonEncoder
from repro.snn.model import EventSpikingClassifier, SpikingClassifier
from repro.snn.training import Trainer, TrainerConfig, accuracy, consistency
from repro.snn.binarize import (
    BinarizedLayer,
    BinarizedNetwork,
    binarize_network,
    lower_network,
    quantize_network,
)
from repro.snn.conv import (
    BinaryConv2d,
    Conv2d,
    SpikePool2d,
    ToSpatial,
    conv_output_size,
)

__all__ = [
    "Module",
    "Linear",
    "BinaryLinear",
    "ReLU",
    "ANNClassifier",
    "convert_ann_to_snn",
    "Flatten",
    "Sequential",
    "Dropout",
    "IFNode",
    "LIFNode",
    "StatelessIFNode",
    "PoissonEncoder",
    "LatencyEncoder",
    "SpikingClassifier",
    "EventSpikingClassifier",
    "Trainer",
    "TrainerConfig",
    "accuracy",
    "consistency",
    "BinarizedLayer",
    "BinarizedNetwork",
    "binarize_network",
    "lower_network",
    "quantize_network",
    "Conv2d",
    "BinaryConv2d",
    "SpikePool2d",
    "ToSpatial",
    "conv_output_size",
]
