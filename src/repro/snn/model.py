"""The multi-step spiking classifier.

Wraps a network (Sequential of Linear/IF layers) with Poisson input
encoding and rate readout over ``T`` time steps -- the
``INPUT28x28-Flatten-FC-IF-FC-IF`` architecture of the paper's section 6 is
built by :meth:`SpikingClassifier.mlp`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.errors import ConfigurationError
from repro.snn.encoding import PoissonEncoder
from repro.snn.layers import BinaryLinear, Flatten, Linear, Module, Sequential
from repro.snn.neurons import IFNode, StatelessIFNode


class SpikingClassifier(Module):
    """Poisson encode -> run T steps -> average output spike rate.

    Args:
        network: The spiking network (must end in a spiking node so its
            output per step is binary).
        time_steps: Simulation window ``T`` (the paper uses 5).
        encoder_seed: Seed for the Poisson encoder (reproducible trains).
    """

    def __init__(self, network: Sequential, time_steps: int = 5,
                 encoder_seed: Optional[int] = None):
        super().__init__()
        if time_steps < 1:
            raise ConfigurationError("time_steps must be >= 1")
        self.network = network
        self.time_steps = time_steps
        self.encoder_seed = encoder_seed

    @classmethod
    def mlp(
        cls,
        input_size: int = 28 * 28,
        hidden_size: int = 800,
        num_classes: int = 10,
        time_steps: int = 5,
        v_threshold: float = 1.0,
        stateless: bool = False,
        binary_aware: bool = False,
        seed: int = 0,
    ) -> "SpikingClassifier":
        """The paper's network: INPUT-Flatten-FC(hidden)-IF-FC(classes)-IF.

        ``stateless=True`` swaps the IF nodes for the SSNN stateless
        variant (section 5.1), which is the form the chip executes.
        ``binary_aware=True`` trains through the XNOR binarized forward
        pass so the 1-bit conversion is near-lossless.
        """
        node = StatelessIFNode if stateless else IFNode
        linear = BinaryLinear if binary_aware else Linear
        network = Sequential(
            Flatten(),
            linear(input_size, hidden_size, seed=seed),
            node(v_threshold=v_threshold),
            linear(hidden_size, num_classes, seed=seed + 1),
            node(v_threshold=v_threshold),
        )
        return cls(network, time_steps=time_steps, encoder_seed=seed + 2)

    # -- inference -------------------------------------------------------------

    def forward(self, images: np.ndarray) -> Tensor:
        """Return rate logits: mean output spikes over the window."""
        encoder = PoissonEncoder(seed=self.encoder_seed)
        trains = encoder.encode_steps(images, self.time_steps)
        self.network.reset_state()
        total = None
        for t in range(self.time_steps):
            spikes = self.network(Tensor.from_array(trains[t]))
            total = spikes if total is None else total + spikes
        return total * (1.0 / self.time_steps)

    def spike_raster(self, images: np.ndarray) -> np.ndarray:
        """Per-step binary outputs, shape (T, batch, classes) -- the
        "label0: 0-0-0-0-1" streams of the paper's Fig. 16(d)."""
        encoder = PoissonEncoder(seed=self.encoder_seed)
        trains = encoder.encode_steps(images, self.time_steps)
        self.network.reset_state()
        raster: List[np.ndarray] = []
        with no_grad():
            for t in range(self.time_steps):
                raster.append(self.network(Tensor.from_array(trains[t])).numpy())
        return np.stack(raster)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class labels by maximum output rate (ties -> lowest label)."""
        with no_grad():
            logits = self.forward(images)
        return logits.numpy().argmax(axis=1)

    def parameters(self):
        return self.network.parameters()

    def children(self):
        return [self.network]

    def linear_layers(self) -> List[Linear]:
        """The Linear layers in forward order (binarization input)."""
        return [m for m in self.network.modules if isinstance(m, Linear)]

    def spiking_nodes(self) -> List[Module]:
        return [
            m for m in self.network.modules
            if isinstance(m, (IFNode, StatelessIFNode))
        ]


class EventSpikingClassifier(SpikingClassifier):
    """Spiking classifier over *event streams* instead of rate-coded images.

    Samples are (T, ...) binary event movies fed frame by frame -- no
    Poisson encoding -- so temporal structure (e.g. motion direction in
    :mod:`repro.data.events`) reaches the network directly.  With stateful
    IF nodes the membranes integrate across frames; with the SSNN
    stateless nodes every frame is classified in isolation, which is the
    cost the ``run_temporal_limits`` experiment quantifies.
    """

    def forward(self, events: np.ndarray) -> Tensor:
        events = np.asarray(events, dtype=np.float64)
        if events.ndim < 3:
            raise ConfigurationError(
                "expected (batch, T, ...) event movies"
            )
        if events.shape[1] != self.time_steps:
            raise ConfigurationError(
                f"movies have {events.shape[1]} steps; classifier expects "
                f"{self.time_steps}"
            )
        self.network.reset_state()
        total = None
        for t in range(self.time_steps):
            frame = events[:, t].reshape(events.shape[0], -1)
            spikes = self.network(Tensor.from_array(frame))
            total = spikes if total is None else total + spikes
        return total * (1.0 / self.time_steps)

    def spike_raster(self, events: np.ndarray) -> np.ndarray:
        events = np.asarray(events, dtype=np.float64)
        self.network.reset_state()
        raster: List[np.ndarray] = []
        with no_grad():
            for t in range(self.time_steps):
                frame = events[:, t].reshape(events.shape[0], -1)
                raster.append(
                    self.network(Tensor.from_array(frame)).numpy()
                )
        return np.stack(raster)
