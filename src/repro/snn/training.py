"""Surrogate-gradient BPTT training and the paper's evaluation metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.autograd.functional import cross_entropy
from repro.autograd.optim import Adam
from repro.autograd.tensor import no_grad
from repro.errors import ConfigurationError, TrainingError
from repro.snn.model import SpikingClassifier


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ConfigurationError("prediction/label shapes differ")
    if predictions.size == 0:
        raise ConfigurationError("empty prediction array")
    return float((predictions == labels).mean())


def consistency(predictions_a: np.ndarray, predictions_b: np.ndarray) -> float:
    """Fraction of samples where two platforms emit the same label --
    the paper's Table 3 "consistency" metric (agreement, not correctness)."""
    predictions_a = np.asarray(predictions_a)
    predictions_b = np.asarray(predictions_b)
    if predictions_a.shape != predictions_b.shape:
        raise ConfigurationError("prediction shapes differ")
    if predictions_a.size == 0:
        raise ConfigurationError("empty prediction array")
    return float((predictions_a == predictions_b).mean())


@dataclass
class TrainerConfig:
    """Hyper-parameters (defaults follow the paper's section 6).

    ``lr_decay`` multiplies the learning rate after each epoch;
    ``patience`` enables early stopping: training halts after that many
    epochs without a new best validation accuracy (a validation set must
    be passed to :meth:`Trainer.fit`).
    """

    epochs: int = 3
    batch_size: int = 64
    learning_rate: float = 1e-3
    shuffle_seed: int = 0
    verbose: bool = False
    lr_decay: float = 1.0
    patience: Optional[int] = None

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0 < self.lr_decay <= 1.0:
            raise ConfigurationError("lr_decay must be in (0, 1]")
        if self.patience is not None and self.patience < 1:
            raise ConfigurationError("patience must be >= 1")


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy curves."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)
    stopped_early: bool = False


class Trainer:
    """Adam + BPTT trainer for :class:`SpikingClassifier`."""

    def __init__(self, model: SpikingClassifier,
                 config: Optional[TrainerConfig] = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)
        self.history = TrainingHistory()

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train on (N, ...) images with integer labels.

        When a validation split is given, per-epoch validation accuracy is
        recorded; with ``config.patience`` set, training stops early after
        that many epochs without improvement.
        """
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise TrainingError("images and labels disagree in length")
        if len(images) == 0:
            raise TrainingError("empty training set")
        if self.config.patience is not None and val_images is None:
            raise TrainingError(
                "early stopping (patience) requires a validation set"
            )
        rng = np.random.default_rng(self.config.shuffle_seed)
        n = len(images)
        best_val = -1.0
        epochs_since_best = 0
        self.model.train()
        for epoch in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, self.config.batch_size):
                batch = order[start:start + self.config.batch_size]
                rates = self.model.forward(images[batch])
                loss = cross_entropy(rates * self.model.time_steps,
                                     labels[batch])
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item() * len(batch)
                correct += int(
                    (rates.numpy().argmax(axis=1) == labels[batch]).sum()
                )
            self.history.losses.append(epoch_loss / n)
            self.history.train_accuracies.append(correct / n)
            self.optimizer.lr *= self.config.lr_decay
            message = (
                f"epoch {epoch + 1}/{self.config.epochs}: "
                f"loss={self.history.losses[-1]:.4f} "
                f"acc={self.history.train_accuracies[-1]:.4f}"
            )
            if val_images is not None:
                val_acc = self.evaluate(val_images, val_labels)
                self.model.train()
                self.history.val_accuracies.append(val_acc)
                message += f" val={val_acc:.4f}"
                if val_acc > best_val:
                    best_val = val_acc
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                if (self.config.patience is not None
                        and epochs_since_best >= self.config.patience):
                    self.history.stopped_early = True
                    if self.config.verbose:
                        print(message + "  (early stop)")
                    break
            if self.config.verbose:
                print(message)
        self.model.eval()
        return self.history

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Test accuracy under no-grad inference."""
        self.model.eval()
        with no_grad():
            predictions = self.model.predict(np.asarray(images))
        return accuracy(predictions, np.asarray(labels))
