"""Spiking neuron nodes (paper equations (1)-(3)).

* :class:`IFNode` -- the stateful integrate-and-fire neuron used to train
  the reference network ("We employ the IF neuron model with a threshold
  voltage of 1.0", section 6): ``H[t] = V[t-1] + X[t]``, fire when ``H >=
  V_th``, hard reset to ``V_reset``.
* :class:`LIFNode` -- leaky variant for completeness.
* :class:`StatelessIFNode` -- the SSNN neuron of section 5.1: no membrane
  carry-over between time steps ("resetting the membrane potential to zero
  at the end of each time step"), which removes the storage requirement on
  the superconducting chip.
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.surrogate import ArctanSurrogate, heaviside
from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.snn.layers import Module


class IFNode(Module):
    """Integrate-and-fire with membrane carry-over and hard reset."""

    def __init__(self, v_threshold: float = 1.0, v_reset: float = 0.0,
                 surrogate=None):
        super().__init__()
        if v_threshold <= v_reset:
            raise ConfigurationError("v_threshold must exceed v_reset")
        self.v_threshold = v_threshold
        self.v_reset = v_reset
        self.surrogate = surrogate or ArctanSurrogate()
        self.v: Optional[Tensor] = None

    def _charge(self, x: Tensor) -> Tensor:
        if self.v is None:
            return x
        return self.v + x

    def forward(self, x: Tensor) -> Tensor:
        h = self._charge(x)
        spike = heaviside(h - self.v_threshold, self.surrogate)
        # Equation (3): V = H * (1 - S) + V_reset * S (hard reset).
        self.v = h * (1.0 - spike) + self.v_reset * spike
        return spike

    def reset_state(self) -> None:
        self.v = None

    @property
    def membrane(self):
        """Current membrane values (None before the first step)."""
        return None if self.v is None else self.v.numpy()


class LIFNode(IFNode):
    """Leaky integrate-and-fire: ``H = V + (X - (V - V_reset)) / tau``."""

    def __init__(self, tau: float = 2.0, v_threshold: float = 1.0,
                 v_reset: float = 0.0, surrogate=None):
        super().__init__(v_threshold, v_reset, surrogate)
        if tau < 1.0:
            raise ConfigurationError("tau must be >= 1")
        self.tau = tau

    def _charge(self, x: Tensor) -> Tensor:
        if self.v is None:
            return x * (1.0 / self.tau)
        return self.v + (x - (self.v - self.v_reset)) * (1.0 / self.tau)


class StatelessIFNode(Module):
    """The SSNN stateless neuron: fire on this step's input alone.

    ``S[t] = Theta(X[t] - V_th)`` with no residual membrane -- the
    superconducting-circuit-friendly simplification of section 5.1.  On
    hardware this is realised by the reset-preload at each time-step
    boundary (:meth:`repro.neuro.chip.BehavioralChip.begin_timestep`).
    """

    def __init__(self, v_threshold: float = 1.0, surrogate=None):
        super().__init__()
        if v_threshold <= 0:
            raise ConfigurationError("v_threshold must be positive")
        self.v_threshold = v_threshold
        self.surrogate = surrogate or ArctanSurrogate()

    def forward(self, x: Tensor) -> Tensor:
        return heaviside(x - self.v_threshold, self.surrogate)

    def reset_state(self) -> None:
        pass  # stateless by construction
