"""Convolutional and pooling layers for spiking networks.

The paper's background (section 2.2) notes that SNN topologies combine
linear, convolutional and pooling layers; SUSHI's evaluation uses the
fully-connected network, but the bit-slice method carries over to
convolutions once they are *lowered* to (structured-sparse) matrix layers
-- which :func:`repro.snn.binarize.lower_conv_network` does.  This module
provides the trainable layers:

* :class:`Conv2d` / :class:`BinaryConv2d` -- valid-padding convolution via
  im2col (:meth:`Tensor.unfold2d`), the binary variant training through
  the XNOR forward like :class:`repro.snn.layers.BinaryLinear`;
* :class:`SpikePool2d` -- OR-pooling of binary spike maps: a window is
  active when any of its inputs spiked.  Exactly a threshold-1
  integrate-and-fire neuron, so it lowers to hardware for free.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.surrogate import ArctanSurrogate, heaviside
from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.snn.layers import Module


def conv_output_size(size: int, kernel: int, stride: int = 1) -> int:
    """Spatial output size of a valid-padding convolution."""
    if size < kernel:
        raise ConfigurationError("input smaller than the kernel")
    return (size - kernel) // stride + 1


class Conv2d(Module):
    """Valid-padding 2-D convolution over (B, C, H, W) tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, bias: bool = True,
                 seed: Optional[int] = None):
        super().__init__()
        if min(in_channels, out_channels, kernel, stride) < 1:
            raise ConfigurationError("conv parameters must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel * kernel
        bound = float(np.sqrt(6.0 / fan_in))
        #: (C*k*k, out_channels) -- the im2col weight layout.
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(fan_in, out_channels)),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True)
            if bias else None
        )

    def _effective_weight(self) -> Tensor:
        return self.weight

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ConfigurationError(
                f"expected (B, {self.in_channels}, H, W), got {x.shape}"
            )
        batch, _, height, width = x.shape
        out_h = conv_output_size(height, self.kernel, self.stride)
        out_w = conv_output_size(width, self.kernel, self.stride)
        patches = x.unfold2d(self.kernel, self.stride)  # (B, P, C*k*k)
        flat = patches.reshape(batch * out_h * out_w, -1)
        out = flat @ self._effective_weight()
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(batch, out_h, out_w,
                           self.out_channels).permute(0, 3, 1, 2)

    def parameters(self):
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class BinaryConv2d(Conv2d):
    """Conv2d with the XNOR binarized forward pass (per-filter scaling
    folded in, STE gradients to the latent weights)."""

    def _effective_weight(self) -> Tensor:
        alpha = self.weight.abs().mean(axis=0, keepdims=True)
        return self.weight.ste_sign() * alpha


class SpikePool2d(Module):
    """OR-pooling of binary spike maps (window active iff any spike).

    For {0,1} inputs this equals max-pooling, and it is exactly a
    threshold-1 IF neuron over the window -- so it lowers to a SUSHI layer
    with unit weights and threshold 1.  The surrogate-gradient backward
    treats the OR as a Heaviside over the window sum.
    """

    def __init__(self, window: int, surrogate=None):
        super().__init__()
        if window < 1:
            raise ConfigurationError("pool window must be >= 1")
        self.window = window
        self.surrogate = surrogate or ArctanSurrogate()

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ConfigurationError("expected a (B, C, H, W) tensor")
        batch, channels, height, width = x.shape
        if height % self.window or width % self.window:
            raise ConfigurationError(
                f"spatial size {height}x{width} not divisible by the "
                f"{self.window}-wide pool window"
            )
        out_h = height // self.window
        out_w = width // self.window
        tiles = x.reshape(batch, channels, out_h, self.window,
                          out_w, self.window)
        sums = tiles.sum(axis=5).sum(axis=3)  # (B, C, OH, OW)
        return heaviside(sums - 0.5, self.surrogate)


class ToSpatial(Module):
    """Reshape a flat (B, C*H*W) tensor to (B, C, H, W) for conv stacks."""

    def __init__(self, channels: int, height: int, width: int):
        super().__init__()
        self.shape: Tuple[int, int, int] = (channels, height, width)

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], *self.shape)
