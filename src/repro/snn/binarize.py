"""XNOR-style binarization and multi-bit quantization (paper section 5.1).

SSNN maps the trained float network onto {-1, +1} weights (XNOR-Net): each
neuron's weights become their signs and the scaling parameter ``alpha =
mean(|w|)`` is *normalised into the threshold* during conversion ("we
normalize the weights to scaling parameters and process them during
thresholding").  With binary input spikes the neuron then fires when the
integer sum of signed spikes reaches an integer threshold -- exactly the
counter arithmetic of the NPE.

:func:`quantize_network` generalises to multi-bit integer magnitudes, which
the pulse-gain weight structures support through strengths > 1 (the paper's
Fig. 10(c) "complex weight structure"); SUSHI's headline results use the
1-bit form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.snn.model import SpikingClassifier


@dataclass
class BinarizedLayer:
    """One integer layer: signed integer weights plus integer thresholds.

    Attributes:
        signed_weights: (in, out) integers; sign is the synapse polarity
            and magnitude the pulse-gain strength (0 = no connection).
        thresholds: (out,) positive integers -- the NPE preload thresholds.
        clamped: Count of neurons whose threshold had to be clamped up to 1
            (the hardware cannot express fire-at-zero).
    """

    signed_weights: np.ndarray
    thresholds: np.ndarray
    clamped: int = 0

    def __post_init__(self):
        self.signed_weights = np.asarray(self.signed_weights, dtype=np.int64)
        self.thresholds = np.asarray(self.thresholds, dtype=np.int64)
        if self.signed_weights.ndim != 2:
            raise ConfigurationError("signed_weights must be 2-D (in, out)")
        if self.thresholds.shape != (self.signed_weights.shape[1],):
            raise ConfigurationError(
                "one threshold per output neuron required"
            )
        if (self.thresholds < 1).any():
            raise ConfigurationError("thresholds must be >= 1")

    @property
    def in_features(self) -> int:
        return self.signed_weights.shape[0]

    @property
    def out_features(self) -> int:
        return self.signed_weights.shape[1]

    @property
    def max_strength(self) -> int:
        mags = np.abs(self.signed_weights)
        return int(mags.max(initial=0))

    def forward(self, spikes: np.ndarray) -> np.ndarray:
        """Stateless integer inference: fire where the signed spike sum
        reaches the threshold.  ``spikes`` is (batch, in) binary."""
        spikes = np.asarray(spikes)
        if spikes.ndim != 2 or spikes.shape[1] != self.in_features:
            raise ConfigurationError(
                f"expected (batch, {self.in_features}) spikes, got "
                f"{spikes.shape}"
            )
        sums = spikes @ self.signed_weights
        return (sums >= self.thresholds).astype(np.float64)

    def membrane_bounds(self, spikes: np.ndarray) -> tuple:
        """(min, max) running membrane over any synapse ordering -- the
        state-range analysis behind the paper's bucketing (section 5.1)."""
        spikes = np.asarray(spikes)
        contrib = spikes[:, :, None] * self.signed_weights[None, :, :]
        negative = np.minimum(contrib, 0).sum(axis=1)
        positive = np.maximum(contrib, 0).sum(axis=1)
        return float(negative.min(initial=0.0)), float(positive.max(initial=0.0))


@dataclass
class BinarizedNetwork:
    """A stack of integer layers: the software form of what SUSHI runs."""

    layers: List[BinarizedLayer]

    def __post_init__(self):
        if not self.layers:
            raise ConfigurationError("network needs at least one layer")
        for a, b in zip(self.layers, self.layers[1:]):
            if a.out_features != b.in_features:
                raise ConfigurationError(
                    f"layer width mismatch: {a.out_features} -> "
                    f"{b.in_features}"
                )

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    def forward_step(self, spikes: np.ndarray) -> np.ndarray:
        """One stateless time step through all layers."""
        for layer in self.layers:
            spikes = layer.forward(spikes)
        return spikes

    def rate_logits(self, spike_trains: np.ndarray) -> np.ndarray:
        """Mean output rate over a (T, batch, in) spike train."""
        total = None
        for step in spike_trains:
            out = self.forward_step(step)
            total = out if total is None else total + out
        return total / len(spike_trains)

    def predict(self, spike_trains: np.ndarray) -> np.ndarray:
        return self.rate_logits(spike_trains).argmax(axis=1)

    def required_states(self, spike_trains: np.ndarray) -> int:
        """Worst-case membrane state span across all layers for the given
        inputs -- must fit within ``2**sc_per_npe`` on the target chip."""
        span = 0
        for batch in spike_trains:
            spikes = batch
            for layer in self.layers:
                low, high = layer.membrane_bounds(spikes)
                span = max(span, int(high - low) + 1)
                spikes = layer.forward(spikes)
        return span


def _integer_thresholds(
    scale: np.ndarray, bias: np.ndarray, v_threshold: float
) -> tuple:
    """Fold the float threshold, per-neuron scale and bias into integer
    thresholds ``ceil((v_th - bias) / scale)``, clamping at 1."""
    raw = (v_threshold - bias) / scale
    thresholds = np.ceil(raw - 1e-9).astype(np.int64)
    clamped = int((thresholds < 1).sum())
    return np.maximum(thresholds, 1), clamped


def binarize_network(
    model: SpikingClassifier, v_threshold: float = 1.0
) -> BinarizedNetwork:
    """XNOR-Net 1-bit conversion of a trained :class:`SpikingClassifier`.

    Per output neuron ``j``: weights become ``sign(w_ij)`` and the scaling
    parameter ``alpha_j = mean_i |w_ij|`` (with any bias) folds into an
    integer threshold.  Zero weights stay disconnected.
    """
    layers = []
    for linear in model.linear_layers():
        weights = linear.weight.numpy()
        bias = (
            linear.bias.numpy() if linear.bias is not None
            else np.zeros(weights.shape[1])
        )
        alpha = np.abs(weights).mean(axis=0)
        if (alpha <= 0).any():
            raise CapacityError(
                "a neuron has all-zero weights; cannot binarize"
            )
        signs = np.sign(weights).astype(np.int64)
        thresholds, clamped = _integer_thresholds(alpha, bias, v_threshold)
        layers.append(BinarizedLayer(signs, thresholds, clamped))
    return BinarizedNetwork(layers)


def _unroll_conv(signs: np.ndarray, thresholds_per_filter: np.ndarray,
                 in_shape, kernel: int, stride: int) -> BinarizedLayer:
    """Unroll a convolution into a structured-sparse BinarizedLayer.

    Input neurons are the flattened (C, H, W) pixels; output neurons the
    flattened (out_c, OH, OW) feature map.  Entry ((c,y,x),(o,oy,ox)) is
    the filter sign at the matching tap; all filter positions of output
    channel ``o`` share threshold ``thresholds_per_filter[o]``.
    """
    channels, height, width = in_shape
    out_c = signs.shape[1]
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    unrolled = np.zeros(
        (channels * height * width, out_c * out_h * out_w), dtype=np.int64
    )
    for o in range(out_c):
        for oy in range(out_h):
            for ox in range(out_w):
                out_index = (o * out_h + oy) * out_w + ox
                for c in range(channels):
                    for i in range(kernel):
                        for j in range(kernel):
                            y = oy * stride + i
                            x = ox * stride + j
                            in_index = (c * height + y) * width + x
                            patch_index = (c * kernel + i) * kernel + j
                            unrolled[in_index, out_index] = signs[
                                patch_index, o
                            ]
    thresholds = np.repeat(thresholds_per_filter, out_h * out_w)
    return BinarizedLayer(unrolled, thresholds)


def _unroll_pool(in_shape, window: int) -> BinarizedLayer:
    """OR-pooling as a unit-weight, threshold-1 layer."""
    channels, height, width = in_shape
    out_h, out_w = height // window, width // window
    unrolled = np.zeros(
        (channels * height * width, channels * out_h * out_w),
        dtype=np.int64,
    )
    for c in range(channels):
        for oy in range(out_h):
            for ox in range(out_w):
                out_index = (c * out_h + oy) * out_w + ox
                for dy in range(window):
                    for dx in range(window):
                        y = oy * window + dy
                        x = ox * window + dx
                        in_index = (c * height + y) * width + x
                        unrolled[in_index, out_index] = 1
    thresholds = np.ones(channels * out_h * out_w, dtype=np.int64)
    return BinarizedLayer(unrolled, thresholds)


def lower_network(
    model: SpikingClassifier,
    input_shape,
    v_threshold: float = 1.0,
) -> BinarizedNetwork:
    """Lower a (possibly convolutional) spiking classifier to the chip's
    integer layer stack.

    Supports ``ToSpatial`` / ``Conv2d`` / ``BinaryConv2d`` /
    ``SpikePool2d`` / ``Flatten`` / ``Linear`` / ``BinaryLinear`` plus the
    spiking nodes (which become the layers' thresholds).  ``input_shape``
    is the (C, H, W) of the network input.
    """
    from repro.snn.conv import Conv2d, SpikePool2d, ToSpatial
    from repro.snn.layers import Flatten, Linear

    layers: List[BinarizedLayer] = []
    shape = tuple(input_shape)
    if len(shape) != 3:
        raise ConfigurationError("input_shape must be (C, H, W)")
    for module in model.network.modules:
        if isinstance(module, (ToSpatial, Flatten)):
            continue  # pure reshapes: the flat indexing already matches
        if isinstance(module, Conv2d):
            weights = module.weight.numpy()
            bias = (module.bias.numpy() if module.bias is not None
                    else np.zeros(module.out_channels))
            alpha = np.abs(weights).mean(axis=0)
            if (alpha <= 0).any():
                raise CapacityError("a conv filter has all-zero weights")
            signs = np.sign(weights).astype(np.int64)
            thresholds, _ = _integer_thresholds(alpha, bias, v_threshold)
            layers.append(_unroll_conv(signs, thresholds, shape,
                                       module.kernel, module.stride))
            channels, height, width = shape
            shape = (
                module.out_channels,
                (height - module.kernel) // module.stride + 1,
                (width - module.kernel) // module.stride + 1,
            )
        elif isinstance(module, SpikePool2d):
            layers.append(_unroll_pool(shape, module.window))
            channels, height, width = shape
            shape = (channels, height // module.window,
                     width // module.window)
        elif isinstance(module, Linear):
            bias = (module.bias.numpy() if module.bias is not None
                    else np.zeros(module.out_features))
            weights = module.weight.numpy()
            alpha = np.abs(weights).mean(axis=0)
            if (alpha <= 0).any():
                raise CapacityError("a neuron has all-zero weights")
            signs = np.sign(weights).astype(np.int64)
            thresholds, _ = _integer_thresholds(alpha, bias, v_threshold)
            layers.append(BinarizedLayer(signs, thresholds))
            shape = (module.out_features,)
    if not layers:
        raise ConfigurationError("no lowerable layers found")
    return BinarizedNetwork(layers)


def quantize_network(
    model: SpikingClassifier, bits: int = 2, v_threshold: float = 1.0
) -> BinarizedNetwork:
    """Multi-bit conversion: magnitudes quantized to ``[1, 2**bits - 1]``
    levels, realised on-chip by pulse-gain strengths > 1."""
    if bits < 1:
        raise ConfigurationError("bits must be >= 1")
    if bits == 1:
        return binarize_network(model, v_threshold)
    levels = (1 << bits) - 1
    layers = []
    for linear in model.linear_layers():
        weights = linear.weight.numpy()
        bias = (
            linear.bias.numpy() if linear.bias is not None
            else np.zeros(weights.shape[1])
        )
        max_mag = np.abs(weights).max(axis=0)
        if (max_mag <= 0).any():
            raise CapacityError(
                "a neuron has all-zero weights; cannot quantize"
            )
        delta = max_mag / levels
        magnitudes = np.rint(np.abs(weights) / delta).astype(np.int64)
        signed = np.sign(weights).astype(np.int64) * magnitudes
        thresholds, clamped = _integer_thresholds(delta, bias, v_threshold)
        layers.append(BinarizedLayer(signed, thresholds, clamped))
    return BinarizedNetwork(layers)
