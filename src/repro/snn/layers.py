"""Network modules: Linear, Flatten, Sequential, Dropout."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError


class Module:
    """Base class: parameter collection, train/eval mode, state reset."""

    def __init__(self):
        self.training = True

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def parameters(self) -> List[Tensor]:
        """Trainable tensors of this module (and its children)."""
        return []

    def children(self) -> List["Module"]:
        return []

    def train(self) -> "Module":
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self.children():
            child.eval()
        return self

    def reset_state(self) -> None:
        """Clear temporal state (membranes) before a new input sample."""
        for child in self.children():
            child.reset_state()


class Linear(Module):
    """Fully-connected layer ``y = x @ W + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, seed: Optional[int] = None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("layer dimensions must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        rng = np.random.default_rng(seed)
        bound = float(np.sqrt(6.0 / in_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def parameters(self) -> List[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class BinaryLinear(Linear):
    """Linear layer with XNOR-style binarized forward pass.

    The effective weight is ``sign(W) * alpha`` with the per-neuron scaling
    parameter ``alpha_j = mean_i |W_ij|``; gradients flow to the latent
    float weights through the straight-through estimator.  Training with
    this layer is what the paper means by "we normalize the weights to
    scaling parameters and process them during thresholding while training
    the network" (section 5.1) -- the network converges in a form that the
    1-bit conversion of :mod:`repro.snn.binarize` preserves exactly.
    """

    def forward(self, x: Tensor) -> Tensor:
        alpha = self.weight.abs().mean(axis=0, keepdims=True)
        effective = self.weight.ste_sign() * alpha
        out = x @ effective
        if self.bias is not None:
            out = out + self.bias
        return out


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return x.reshape(batch, -1)


class ReLU(Module):
    """Rectified linear activation (for ANN baselines and conversion)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError("dropout p must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor.from_array(mask)


class Sequential(Module):
    """Composition of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        if not modules:
            raise ConfigurationError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def children(self) -> List[Module]:
        return list(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def __len__(self) -> int:
        return len(self.modules)
