"""ANN-to-SNN conversion by data-based weight normalisation.

The classical alternative to direct surrogate-gradient training (Diehl et
al. 2015 style): train a ReLU ANN, then reinterpret each ReLU unit as an
integrate-and-fire neuron whose firing *rate* approximates the ReLU
activation.  Scaling each layer's weights by the (percentile of the)
maximum pre-activation observed on calibration data keeps every rate
within the representable [0, 1] band.

Provided for comparison with the paper's directly-trained SSNN: the
converted network is a drop-in :class:`SpikingClassifier`, so it runs
through the same binarization/bit-slice/chip pipeline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd.functional import cross_entropy
from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor, no_grad
from repro.errors import ConfigurationError, TrainingError
from repro.snn.layers import Flatten, Linear, Module, ReLU, Sequential
from repro.snn.model import SpikingClassifier
from repro.snn.neurons import IFNode


class ANNClassifier(Module):
    """Plain ReLU MLP trained with standard cross-entropy."""

    def __init__(self, input_size: int = 784, hidden_size: int = 128,
                 num_classes: int = 10, seed: int = 0):
        super().__init__()
        self.network = Sequential(
            Flatten(),
            Linear(input_size, hidden_size, seed=seed),
            ReLU(),
            Linear(hidden_size, num_classes, seed=seed + 1),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)

    def parameters(self):
        return self.network.parameters()

    def children(self):
        return [self.network]

    def predict(self, images: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.forward(Tensor.from_array(images))
        return logits.numpy().argmax(axis=1)

    def fit(self, images: np.ndarray, labels: np.ndarray,
            epochs: int = 10, batch_size: int = 64,
            learning_rate: float = 1e-3, seed: int = 0) -> List[float]:
        """Train; returns the per-epoch loss curve."""
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels) or len(images) == 0:
            raise TrainingError("bad training set")
        optimizer = Adam(self.parameters(), lr=learning_rate)
        rng = np.random.default_rng(seed)
        losses = []
        for _ in range(epochs):
            order = rng.permutation(len(images))
            total = 0.0
            for start in range(0, len(images), batch_size):
                batch = order[start:start + batch_size]
                logits = self.forward(Tensor.from_array(images[batch]))
                loss = cross_entropy(logits, labels[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += loss.item() * len(batch)
            losses.append(total / len(images))
        return losses


def _layer_activations(ann: ANNClassifier, images: np.ndarray) -> List[np.ndarray]:
    """Pre-activation values at each Linear output on calibration data."""
    with no_grad():
        x = Tensor.from_array(images)
        activations = []
        for module in ann.network.modules:
            x = module(x)
            if isinstance(module, Linear):
                activations.append(x.numpy())
    return activations


def convert_ann_to_snn(
    ann: ANNClassifier,
    calibration_images: np.ndarray,
    time_steps: int = 16,
    percentile: float = 99.0,
    encoder_seed: Optional[int] = None,
) -> SpikingClassifier:
    """Data-based weight normalisation conversion.

    Each layer's weights and bias are divided by the ``percentile`` of its
    observed positive pre-activations (cascaded, so upstream scaling is
    taken into account), then the ReLUs become IF nodes with threshold 1.
    Longer ``time_steps`` give finer rate resolution (conversion trades
    latency for accuracy, unlike direct training).
    """
    if not 0 < percentile <= 100:
        raise ConfigurationError("percentile must be in (0, 100]")
    if time_steps < 1:
        raise ConfigurationError("time_steps must be >= 1")
    calibration_images = np.asarray(calibration_images, dtype=np.float64)
    linears = [m for m in ann.network.modules if isinstance(m, Linear)]
    snn_modules: List[Module] = [Flatten()]
    previous_scale = 1.0
    activations = _layer_activations(ann, calibration_images)
    for linear, acts in zip(linears, activations):
        positives = acts[acts > 0]
        scale = float(np.percentile(positives, percentile)) \
            if positives.size else 1.0
        if scale <= 0:
            scale = 1.0
        clone = Linear(linear.in_features, linear.out_features,
                       bias=linear.bias is not None)
        # lambda_{l-1} / lambda_l cascade (Diehl et al.).
        clone.weight.data[...] = linear.weight.data * previous_scale / scale
        if linear.bias is not None:
            clone.bias.data[...] = linear.bias.data / scale
        snn_modules.append(clone)
        snn_modules.append(IFNode(v_threshold=1.0))
        previous_scale = scale
    converted = SpikingClassifier(
        Sequential(*snn_modules), time_steps=time_steps,
        encoder_seed=encoder_seed,
    )
    converted.eval()
    return converted
