"""Classification and spike-activity metrics.

Beyond the paper's accuracy/consistency pair (:mod:`repro.snn.training`),
deployments want per-class behaviour and activity statistics -- spike
rates drive both the SOPS throughput model and the dynamic power term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: Optional[int] = None) -> np.ndarray:
    """(true, predicted) count matrix."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ConfigurationError("prediction/label shapes differ")
    if predictions.size == 0:
        raise ConfigurationError("empty prediction array")
    if num_classes is None:
        num_classes = int(max(predictions.max(), labels.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_report(predictions: np.ndarray, labels: np.ndarray,
                     class_names: Optional[Sequence[str]] = None
                     ) -> List[Dict]:
    """Precision/recall/F1/support per class."""
    matrix = confusion_matrix(predictions, labels)
    num_classes = matrix.shape[0]
    if class_names is None:
        class_names = [str(c) for c in range(num_classes)]
    if len(class_names) < num_classes:
        raise ConfigurationError("not enough class names")
    rows = []
    for c in range(num_classes):
        true_pos = matrix[c, c]
        support = int(matrix[c].sum())
        predicted = int(matrix[:, c].sum())
        precision = true_pos / predicted if predicted else 0.0
        recall = true_pos / support if support else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        rows.append({
            "class": class_names[c],
            "precision": round(precision, 4),
            "recall": round(recall, 4),
            "f1": round(f1, 4),
            "support": support,
        })
    return rows


@dataclass(frozen=True)
class SpikeStats:
    """Activity statistics of a (T, batch, units) spike raster.

    Attributes:
        mean_rate: Mean firing probability per unit per step.
        active_fraction: Fraction of units that spiked at least once.
        spikes_per_sample: Mean total spikes per sample.
        silent_steps: Fraction of (sample, step) pairs with zero spikes.
    """

    mean_rate: float
    active_fraction: float
    spikes_per_sample: float
    silent_steps: float


def spike_stats(raster: np.ndarray) -> SpikeStats:
    """Summarise a (T, batch, units) binary spike raster."""
    raster = np.asarray(raster)
    if raster.ndim != 3:
        raise ConfigurationError("raster must be (T, batch, units)")
    if raster.size == 0:
        raise ConfigurationError("empty raster")
    steps, batch, units = raster.shape
    return SpikeStats(
        mean_rate=float(raster.mean()),
        active_fraction=float((raster.sum(axis=0) > 0).mean()),
        spikes_per_sample=float(raster.sum() / batch),
        silent_steps=float((raster.sum(axis=2) == 0).mean()),
    )
