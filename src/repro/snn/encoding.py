"""Input spike encoders.

The paper generates input spike trains with a Poisson encoder (section 6)
and then re-times them against the RSFQ cell constraints of Table 1 (that
re-timing lives in :mod:`repro.ssnn.encoder`; here we produce the logical
binary spike tensors)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class PoissonEncoder:
    """Bernoulli-per-step rate coding: ``P(spike at t) = pixel intensity``.

    Intensities must lie in ``[0, 1]``.  A fresh encoder with the same seed
    reproduces the same spike trains, which the chip/software consistency
    experiments rely on.
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.min(initial=0.0) < 0.0 or images.max(initial=0.0) > 1.0:
            raise ConfigurationError(
                "Poisson encoding expects intensities in [0, 1]"
            )
        return (self._rng.random(images.shape) < images).astype(np.float64)

    def encode_steps(self, images: np.ndarray, steps: int) -> np.ndarray:
        """Encode a batch for ``steps`` time steps: (T, batch, ...)."""
        if steps < 1:
            raise ConfigurationError("steps must be >= 1")
        return np.stack([self(images) for _ in range(steps)])


class LatencyEncoder:
    """Time-to-first-spike coding: brighter pixels spike earlier.

    Pixel intensity ``p`` spikes once at step ``round((1 - p) * (T - 1))``.
    Provided for completeness alongside the rate encoder.
    """

    def __init__(self, steps: int):
        if steps < 1:
            raise ConfigurationError("steps must be >= 1")
        self.steps = steps

    def encode_steps(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.min(initial=0.0) < 0.0 or images.max(initial=0.0) > 1.0:
            raise ConfigurationError(
                "latency encoding expects intensities in [0, 1]"
            )
        fire_step = np.rint((1.0 - images) * (self.steps - 1)).astype(int)
        out = np.zeros((self.steps,) + images.shape)
        for t in range(self.steps):
            out[t] = (fire_step == t) & (images > 0)
        return out
