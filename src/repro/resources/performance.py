"""Throughput model: SOPS, FPS and delay analysis (Fig. 19/21, section 6.3).

Synaptic operations per second (SOPS) is ``avg firing rate x avg active
synapses``: every pulse processed by an NPE is one synaptic operation.  The
peak firing rate is bounded by the same-line minimum pulse interval
(Table 1's 19.9 ps -> 50.25 Gpulse/s per NPE); scaling the mesh adds NPEs
but also lengthens the transmission lines, degrading the achievable rate.
The throughput-efficiency curve and the latency-share curve (the paper's
"transmission delay accounts for ~53% of the total in the 16x16 design,
~6% in the 1x1 design") are calibrated to the published endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.resources.power import PowerModel
from repro.rsfq.constraints import MIN_PULSE_INTERVAL

#: Peak pulse rate of a single line/NPE (Hz): one pulse per 19.9 ps.
PEAK_PULSE_RATE_HZ = 1e12 / MIN_PULSE_INTERVAL

#: Throughput efficiency eta = 1 / (1 + ETA_SLOPE * (npe_count - 1));
#: calibrated so 32 NPEs reach the paper's 1,355 GSOPS peak.
ETA_SLOPE = 0.006022

#: Latency share of transmission: delta(n) = a*n^b / (a*n^b + 1), calibrated
#: to 6% at n=1 and 53% at n=16 (section 6.3A).
DELAY_SHARE_A = 0.0638
DELAY_SHARE_B = 1.036


@dataclass(frozen=True)
class PerformanceModel:
    """Throughput/efficiency figures for an ``n x n`` SUSHI mesh."""

    n: int

    def __post_init__(self):
        if self.n < 1:
            raise ConfigurationError("mesh size must be >= 1")

    @property
    def npe_count(self) -> int:
        return 2 * self.n

    @property
    def synapse_count(self) -> int:
        return self.n * self.n

    def efficiency(self) -> float:
        """Fraction of the peak per-NPE pulse rate sustained at this scale
        (transmission-line effects erode it as the mesh grows)."""
        return 1.0 / (1.0 + ETA_SLOPE * (self.npe_count - 1))

    def peak_sops(self) -> float:
        """Peak synaptic operations per second: every NPE streaming at the
        efficiency-derated line rate."""
        return self.npe_count * PEAK_PULSE_RATE_HZ * self.efficiency()

    def peak_gsops(self) -> float:
        return self.peak_sops() * 1e-9

    def transmission_delay_share(self) -> float:
        """Per-pulse latency share of line transmission (6.3A analysis)."""
        term = DELAY_SHARE_A * (self.n ** DELAY_SHARE_B)
        return term / (term + 1.0)

    # -- efficiency ------------------------------------------------------------

    def power_mw(self, **resource_kwargs) -> float:
        return PowerModel.for_mesh(self.n, **resource_kwargs).total_mw(
            switch_rate_hz=self.peak_sops()
        )

    def power_efficiency_gsops_per_w(self, **resource_kwargs) -> float:
        """Peak GSOPS per Watt (the paper's headline 32,366 at 16x16)."""
        power_w = self.power_mw(**resource_kwargs) * 1e-3
        return self.peak_gsops() / power_w if power_w > 0 else 0.0

    # -- workload-level ------------------------------------------------------

    def fps(
        self,
        synops_per_frame: float,
        reload_fraction: float = 0.2,
        utilisation: float = 1.0,
    ) -> float:
        """Frames per second for a workload of ``synops_per_frame``.

        ``reload_fraction`` is the share of inference time spent on weight
        reloading (the paper measures ~20% after the reordering/bucketing
        optimisation); ``utilisation`` derates for input sparsity.
        """
        if synops_per_frame <= 0:
            raise ConfigurationError("synops_per_frame must be positive")
        if not 0.0 <= reload_fraction < 1.0:
            raise ConfigurationError("reload_fraction must be in [0, 1)")
        if not 0.0 < utilisation <= 1.0:
            raise ConfigurationError("utilisation must be in (0, 1]")
        effective = self.peak_sops() * (1.0 - reload_fraction) * utilisation
        return effective / synops_per_frame


def mnist_synops_per_frame(
    input_size: int = 784,
    hidden_size: int = 800,
    classes: int = 10,
    time_steps: int = 5,
) -> int:
    """Synaptic operations of one inference of the paper's MNIST network
    (all synapses active once per time step)."""
    per_step = input_size * hidden_size + hidden_size * classes
    return per_step * time_steps
