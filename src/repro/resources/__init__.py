"""Resource, power and performance models of SUSHI (paper sections 4.3, 6.3).

The models are *structural*: Josephson-junction and area counts come from
the actual component inventory of a chip configuration (SC/NPE/crosspoint
cell histograms plus a floorplan-based wiring model), and the power and
throughput figures derive from those counts plus per-JJ constants.  A small
number of constants are calibrated against the paper's published anchors
(Table 2's 45,542 JJs / 44.73 mm^2 at 4x4 with a 68/32 wiring/logic split;
99,982 JJs / 103.75 mm^2 / 41.87 mW at 16x16; 1,355 GSOPS peak) --
EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.resources.cell_costs import (
    npe_cell_histogram,
    histogram_area_um2,
    histogram_jj_count,
    sc_cell_histogram,
    weight_structure_histogram,
)
from repro.resources.estimator import ChipResources, estimate_resources
from repro.resources.power import PowerModel
from repro.resources.performance import PerformanceModel

__all__ = [
    "sc_cell_histogram",
    "npe_cell_histogram",
    "weight_structure_histogram",
    "histogram_jj_count",
    "histogram_area_um2",
    "ChipResources",
    "estimate_resources",
    "PowerModel",
    "PerformanceModel",
]
