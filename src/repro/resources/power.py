"""Power model (Fig. 20, Table 4).

RSFQ power is dominated by the static bias-current dissipation of every
junction's shunt resistor; dynamic switching energy (~2e-19 J per SFQ flip)
is negligible in comparison.  The per-JJ bias constant is calibrated so
that the 16x16 configuration (99,982 JJs in the paper) draws the published
41.87 mW; cooling costs are excluded, as in the paper ("We evaluate the
power of SUSHI without considering the cooling costs")."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.resources.estimator import ChipResources, estimate_resources

#: Static bias dissipation per junction (nW); calibrated to the paper's
#: 41.87 mW at 99,982 JJs -> 418.8 nW/JJ.
BIAS_POWER_PER_JJ_NW = 418.8

#: Energy per SFQ switching event (J); order 1e-19 (paper section 1).
SFQ_SWITCH_ENERGY_J = 2.0e-19


@dataclass(frozen=True)
class PowerModel:
    """Power figures for one chip configuration."""

    resources: ChipResources

    @classmethod
    def for_mesh(cls, n: int, **kwargs) -> "PowerModel":
        return cls(estimate_resources(n, **kwargs))

    @property
    def static_mw(self) -> float:
        """Static bias power in milliwatts."""
        return self.resources.total_jj * BIAS_POWER_PER_JJ_NW * 1e-6

    def dynamic_mw(self, switch_rate_hz: float) -> float:
        """Dynamic power at a given aggregate SFQ switch rate."""
        if switch_rate_hz < 0:
            raise ConfigurationError("switch rate must be >= 0")
        return switch_rate_hz * SFQ_SWITCH_ENERGY_J * 1e3

    def total_mw(self, switch_rate_hz: float = 0.0) -> float:
        """Total power (static plus dynamic) in milliwatts."""
        return self.static_mw + self.dynamic_mw(switch_rate_hz)
