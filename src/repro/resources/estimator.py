"""Chip-level resource estimation (Table 2, Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.resources import cell_costs
from repro.resources.floorplan import AREA_PER_JJ_MM2, estimate_wiring


@dataclass(frozen=True)
class ChipResources:
    """Resource summary of one SUSHI configuration.

    The quantities mirror the paper's Table 2 / Fig. 13 reporting: logic vs
    wiring JJ split, total JJs, and chip area.
    """

    n: int
    npe_count: int
    synapse_count: int
    logic_jj: int
    wiring_jj: int
    logic_area_mm2: float
    wiring_area_mm2: float

    @property
    def total_jj(self) -> int:
        return self.logic_jj + self.wiring_jj

    @property
    def total_area_mm2(self) -> float:
        """Die area from the paper-calibrated JJ density.

        ``total_jj * AREA_PER_JJ_MM2`` reproduces the paper's reported
        chip areas (Table 2), which is why it is the anchored figure.
        It is deliberately *larger* than :attr:`component_area_mm2`:
        the density calibration folds in everything the cell footprints
        do not -- routing channels between cells, bias/ground rails,
        moats and floorplan white space.  The ratio of the two is
        :attr:`fill_factor`, pinned by regression tests in
        ``tests/resources/test_models.py``.
        """
        return self.total_jj * AREA_PER_JJ_MM2

    @property
    def component_area_mm2(self) -> float:
        """Sum of the placed-cell footprints (logic + wiring cells).

        This is the lower bound the cell library implies; see
        :attr:`total_area_mm2` for why the reported die area exceeds it.
        """
        return self.logic_area_mm2 + self.wiring_area_mm2

    @property
    def fill_factor(self) -> float:
        """Placed-cell area as a fraction of the die area (in (0, 1])."""
        total = self.total_area_mm2
        return self.component_area_mm2 / total if total else 0.0

    @property
    def wiring_fraction(self) -> float:
        return self.wiring_jj / self.total_jj if self.total_jj else 0.0

    def summary_row(self) -> dict:
        """Flat dict for report tables."""
        return {
            "n": self.n,
            "npes": self.npe_count,
            "total_jj": self.total_jj,
            "logic_jj": self.logic_jj,
            "wiring_jj": self.wiring_jj,
            "wiring_pct": round(100.0 * self.wiring_fraction, 2),
            "area_mm2": round(self.total_area_mm2, 2),
        }


def estimate_resources(
    n: int,
    sc_per_npe: int = 10,
    max_strength: int = 1,
    with_weights: bool = True,
) -> ChipResources:
    """Estimate JJs and area of an ``n x n`` SUSHI chip.

    Logic counts come from the component cell histograms (kept in sync with
    the gate-level constructors); wiring from the floorplan model.
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    logic_hist = cell_costs.chip_logic_histogram(
        n, sc_per_npe, max_strength, with_weights
    )
    logic_jj = cell_costs.histogram_jj_count(logic_hist)
    logic_area = cell_costs.histogram_area_um2(logic_hist) * 1e-6
    config_channels = (
        2 * n * n * max_strength if with_weights else 0
    )
    wiring = estimate_wiring(
        n=n,
        logic_jj=logic_jj,
        config_channels=config_channels,
    )
    return ChipResources(
        n=n,
        npe_count=2 * n,
        synapse_count=n * n,
        logic_jj=logic_jj,
        wiring_jj=wiring.wiring_jj,
        logic_area_mm2=logic_area,
        wiring_area_mm2=wiring.wiring_area_mm2,
    )


#: Mesh sizes of the paper's scaling studies (Figs. 13, 19-21).
PAPER_SWEEP_SIZES = (1, 2, 4, 8, 16)
