"""Cell histograms of SUSHI components (the logic side of the JJ budget).

Histograms map cell-type names (classes in :mod:`repro.rsfq.library`) to
instance counts.  They are kept consistent with the actual gate-level
constructors -- the tests build each component and compare the real netlist
against these histograms -- so resource estimates always describe the same
hardware the simulator runs.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.neuro.state_controller import GateLevelStateController
from repro.rsfq import library


def merge_histograms(*histograms: Dict[str, int]) -> Dict[str, int]:
    """Sum cell histograms."""
    total: Dict[str, int] = {}
    for histogram in histograms:
        for name, count in histogram.items():
            total[name] = total.get(name, 0) + count
    return total


def scale_histogram(histogram: Dict[str, int], factor: int) -> Dict[str, int]:
    """Multiply every count by ``factor``."""
    if factor < 0:
        raise ConfigurationError("factor must be >= 0")
    return {name: count * factor for name, count in histogram.items()}


def histogram_jj_count(histogram: Dict[str, int]) -> int:
    """Total JJs of a cell histogram."""
    return sum(
        getattr(library, name).JJ_COUNT * count
        for name, count in histogram.items()
    )


def histogram_area_um2(histogram: Dict[str, int]) -> float:
    """Total cell area of a histogram in square micrometres."""
    return sum(
        getattr(library, name).AREA_UM2 * count
        for name, count in histogram.items()
    )


def sc_cell_histogram() -> Dict[str, int]:
    """Cells of one state controller (kept in sync with the gate level)."""
    return dict(GateLevelStateController.CELL_HISTOGRAM)


def fanout_tree_histogram(n: int) -> Dict[str, int]:
    if n <= 1:
        return {"JTL": 1}
    return {"SPL": n - 1}


def merge_tree_histogram(n: int) -> Dict[str, int]:
    if n <= 1:
        return {"JTL": 1}
    return {"CB": n - 1}


def npe_cell_histogram(
    n_sc: int = 10, with_output_driver: bool = True
) -> Dict[str, int]:
    """Cells of one NPE: SC chain, three shared control buses, a merged
    read channel with its amplifier, and (for column NPEs) the output
    amplifier."""
    if n_sc < 1:
        raise ConfigurationError("n_sc must be >= 1")
    parts = [scale_histogram(sc_cell_histogram(), n_sc)]
    for _ in ("rst", "set0", "set1"):
        parts.append(fanout_tree_histogram(n_sc))
    # Read channel: SC read outputs merged onto one amplified line.
    parts.append(merge_tree_histogram(n_sc))
    parts.append({"SFQDC": 1})
    if with_output_driver:
        parts.append({"SFQDC": 1})
    return merge_histograms(*parts)


def weight_structure_histogram(max_strength: int = 1) -> Dict[str, int]:
    """Cells of one crosspoint weight structure (Fig. 10)."""
    if max_strength < 1:
        raise ConfigurationError("max_strength must be >= 1")
    return merge_histograms(
        fanout_tree_histogram(max_strength),
        merge_tree_histogram(max_strength),
        {"NDRO": max_strength},
    )


def io_channel_histogram(n: int, sc_per_npe: int = 10,
                         max_strength: int = 1,
                         with_weights: bool = True) -> Dict[str, int]:
    """DC/SFQ input converters of all external channels of an n x n chip:
    data inputs, per-SC write channels, shared rst/set0/set1 controls, and
    the din/rst weight-configuration channels of every crosspoint."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    data_inputs = n
    write_inputs = 2 * n * sc_per_npe
    control_inputs = 2 * n * 3
    weight_inputs = 2 * (n * n) * max_strength if with_weights else 0
    return {"DCSFQ": data_inputs + write_inputs + control_inputs
            + weight_inputs}


def mesh_fabric_histogram(n: int, max_strength: int = 1) -> Dict[str, int]:
    """Row fan-out trees, column merge trees, and all crosspoints."""
    parts = []
    for _ in range(n):
        parts.append(fanout_tree_histogram(n))   # one row line each
        parts.append(merge_tree_histogram(n))    # one column line each
    parts.append(
        scale_histogram(weight_structure_histogram(max_strength), n * n)
    )
    parts.append({"DCSFQ": n})  # data input converters feeding row NPEs
    return merge_histograms(*parts)


def chip_logic_histogram(
    n: int, sc_per_npe: int = 10, max_strength: int = 1,
    with_weights: bool = True,
) -> Dict[str, int]:
    """Full logic-cell histogram of an n x n SUSHI chip."""
    parts = [
        scale_histogram(
            npe_cell_histogram(sc_per_npe, with_output_driver=False), n
        ),
        scale_histogram(
            npe_cell_histogram(sc_per_npe, with_output_driver=True), n
        ),
        io_channel_histogram(n, sc_per_npe, max_strength, with_weights),
    ]
    if with_weights:
        parts.append(mesh_fabric_histogram(n, max_strength))
    else:
        parts.append(merge_histograms(
            *[fanout_tree_histogram(n) for _ in range(n)],
            *[merge_tree_histogram(n) for _ in range(n)],
            {"DCSFQ": n},
        ))
    return merge_histograms(*parts)
