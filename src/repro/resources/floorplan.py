"""Floorplan-based wiring model (the dominant JJ cost in RSFQ designs).

Unlike CMOS, RSFQ wires are *active*: every ~30 um of connection needs a
JTL repeater (two JJs), so wiring cost scales with physical wire length.
The model decomposes the wire budget of an ``n x n`` mesh chip into:

* **mesh lines** -- the ``2n`` row/column lines, each spanning ``n`` NPE
  pitches;
* **NPE channel bundles** -- each NPE's external channels (write, read,
  rst/set controls, data) routed between the pad ring and the NPE, modelled
  as a bundle whose length scales with the chip side;
* **weight-configuration channels** -- the din/rst lines of every
  crosspoint NDRO (only in the fully-configurable mesh), each routed from
  the pad ring across the fabric.

The last term is why the fully-configurable mesh (the paper's Table 2
4x4 instance: 68% wiring) is so much more wire-hungry than the
fixed-weight mesh the paper sweeps in Fig. 13 and fabricates -- whose
growth stays near-linear in NPE count, as the paper reports.

Chip side depends on total area, which depends on wiring, so the estimate
iterates to a fixed point.  ``NPE_ROUTE_FACTOR`` and
``CONFIG_ROUTE_FACTOR`` are calibrated against the paper's anchors
(31,026 wiring JJs at the configurable 4x4; 99,982 total JJs at the
fixed-weight 16x16); see EXPERIMENTS.md."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rsfq import library

#: Millimetres of transmission line served by one JTL repeater.
JTL_PITCH_MM = 0.030

#: Physical pitch between adjacent mesh lines (mm).
NPE_PITCH_MM = 0.42

#: Chip-side multiples of routed wire per NPE channel bundle (calibrated).
NPE_ROUTE_FACTOR = 1.6456

#: Chip-side multiples of wire per weight-configuration channel (calibrated).
CONFIG_ROUTE_FACTOR = 0.4060

#: Fixed pad-ring / bias-distribution wire per chip (mm).
PAD_RING_WIRE_MM = 12.0

#: Extra area per line crossing (double-width segment), mm^2.
CROSSING_AREA_MM2 = 0.0031

#: Chip area per junction (mm^2/JJ).  The paper's own anchors give an
#: almost constant density: 44.73 mm^2 / 45,542 JJs = 0.982e-3 and
#: 103.75 mm^2 / 99,982 JJs = 1.038e-3; we use their mean.
AREA_PER_JJ_MM2 = 1.010e-3


@dataclass(frozen=True)
class WiringEstimate:
    """Wire length, repeater and area figures of one chip configuration."""

    mesh_wire_mm: float
    npe_channel_wire_mm: float
    config_wire_mm: float
    total_wire_mm: float
    jtl_count: int
    wiring_jj: int
    wiring_area_mm2: float
    chip_side_mm: float


def estimate_wiring(
    n: int,
    logic_jj: int,
    config_channels: int = 0,
    npe_pitch_mm: float = NPE_PITCH_MM,
) -> WiringEstimate:
    """Estimate the wiring of an ``n x n`` mesh chip.

    Args:
        n: Mesh size (2n NPEs).
        logic_jj: Total junctions in functional cells.
        config_channels: Weight-configuration channels routed across the
            fabric (0 for the fixed-weight mesh).
        npe_pitch_mm: Physical pitch between adjacent mesh lines.

    The chip side is ``sqrt(total_jj * AREA_PER_JJ_MM2)``; total JJs depend
    on the wiring, so the estimate iterates to a fixed point.
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if logic_jj <= 0 or npe_pitch_mm <= 0:
        raise ConfigurationError("logic_jj and pitch must be positive")
    if config_channels < 0:
        raise ConfigurationError("config_channels must be >= 0")
    mesh_wire = 2.0 * n * n * npe_pitch_mm
    npe_count = 2 * n
    side = math.sqrt(logic_jj * AREA_PER_JJ_MM2)
    estimate = None
    for _ in range(6):  # fixed-point iteration on chip side
        npe_channel_wire = NPE_ROUTE_FACTOR * npe_count * side
        config_wire = CONFIG_ROUTE_FACTOR * config_channels * side
        total_wire = (
            PAD_RING_WIRE_MM + mesh_wire + npe_channel_wire + config_wire
        )
        jtl_count = int(round(total_wire / JTL_PITCH_MM))
        wiring_jj = jtl_count * library.JTL.JJ_COUNT
        total_area = (logic_jj + wiring_jj) * AREA_PER_JJ_MM2
        wiring_area = (
            jtl_count * library.JTL.AREA_UM2 * 1e-6
            + n * n * CROSSING_AREA_MM2
        )
        side = math.sqrt(total_area)
        estimate = WiringEstimate(
            mesh_wire_mm=mesh_wire,
            npe_channel_wire_mm=npe_channel_wire,
            config_wire_mm=config_wire,
            total_wire_mm=total_wire,
            jtl_count=jtl_count,
            wiring_jj=wiring_jj,
            wiring_area_mm2=wiring_area,
            chip_side_mm=side,
        )
    return estimate
