"""Minimum pulse-interval constraints for RSFQ cells (paper Table 1).

All values are picoseconds.  A constraint ``(a, b): dt`` on a cell means a
pulse arriving on port ``b`` must lag the most recent pulse on port ``a`` by
at least ``dt``; otherwise the cell's internal flux state may be corrupted.
The paper notes that larger-than-minimum intervals are used in practice to
guarantee correct operation, so schedulers in :mod:`repro.neuro.timing` apply
a configurable safety margin on top of these values.
"""

from __future__ import annotations

#: Generic same-line minimum interval (JTL din-din, SPL din-din, CB same
#: input, DFF din-din / clk-clk).  This is the tightest repeat rate of a
#: single transmission line and therefore bounds peak pulse throughput.
MIN_PULSE_INTERVAL = 19.9

#: CB: a pulse on one input must lag a pulse on the *other* input.
CB_CROSS_INTERVAL = 5.7

#: DFF: clock must lag data by this much for reliable release.
DFF_DIN_TO_CLK = 8.53

#: NDRO: separation between din (set) and rst (clear), either order.
NDRO_DIN_RST_SEPARATION = 39.9

#: NDRO: a read clock must lag a set by this much.
NDRO_DIN_TO_CLK = 14.81

#: NDRO: a read clock must lag a reset by this much.
NDRO_RST_TO_CLK = 16.61

#: NDRO: back-to-back read clocks.
NDRO_CLK_TO_CLK = 39.9

#: TFF: back-to-back toggle inputs.
TFF_MIN_INTERVAL = 39.9

#: Numerical tolerance when comparing pulse intervals (ps).
INTERVAL_EPSILON = 1e-9


def paper_table1() -> dict:
    """Return Table 1 of the paper as a nested mapping.

    Keys are cell names; values map ``"portA-portB"`` to the minimum lag in
    picoseconds.  Used by the Table 1 benchmark to print the constraint table
    exactly as the paper reports it.
    """
    return {
        "CB": {
            "dinA/B-dinA/B": MIN_PULSE_INTERVAL,
            "dinA/B-dinB/A": CB_CROSS_INTERVAL,
        },
        "SPL": {"din-din": MIN_PULSE_INTERVAL},
        "NDRO": {
            "din/rst-rst/din": NDRO_DIN_RST_SEPARATION,
            "din-clk": NDRO_DIN_TO_CLK,
            "rst-clk": NDRO_RST_TO_CLK,
            "clk-clk": NDRO_CLK_TO_CLK,
        },
        "TFF": {"clk-clk": TFF_MIN_INTERVAL},
        "DFF": {
            "din-din": MIN_PULSE_INTERVAL,
            "din-clk": DFF_DIN_TO_CLK,
            "clk-clk": MIN_PULSE_INTERVAL,
        },
        "JTL": {"din-din": MIN_PULSE_INTERVAL},
    }
