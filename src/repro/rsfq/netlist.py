"""Netlist: named cells plus delayed point-to-point wires.

RSFQ cells have a fan-out of one, so a wire connects exactly one output port
to exactly one input port; fan-out is built explicitly from SPL cells and
fan-in from CB cells, exactly as on the real chip.  Wires carry a
transmission delay and a JTL-repeater count used by the resource model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import ConfigurationError
from repro.rsfq.cells import Cell

CellRef = Union[Cell, str]


@dataclass(frozen=True)
class FanoutTable:
    """Pre-resolved, integer-indexed routing of a netlist, memoised per
    topology version.

    Built once by :meth:`Netlist.elaborate` and shared by every simulator
    run over the same circuit.  Cells and ports are resolved to integer
    indices *at elaboration time*, so the event loop's hot path moves bare
    ``(time, seq, cell_idx, port_idx)`` tuples and performs list indexing
    instead of string-keyed dict lookups per pulse.

    Attributes:
        version: The netlist topology version this table was built from
            (used to detect staleness after further construction).
        routes: Output-port routing, ``(src, src_port)`` -> destinations
            as ``(dst_name, dst_port, delay)`` (string view, kept for
            analysis tools and backwards compatibility).
        cells: Cell-name -> cell object mapping.
        cell_list: Cells in index order (``cell_list[cell_idx]``).
        cell_index: Cell-name -> integer index.
        input_ports: Per-cell tuple of input port names, indexed by
            ``[cell_idx][port_idx]`` (aliases ``cell.INPUTS``).
        routes_idx: ``(src_name, src_port)`` -> tuple of pre-resolved
            ``(dst_idx, dst_port_idx, delay, wire_id)`` destinations.
            ``wire_id`` indexes :attr:`wires` and keys the per-wire
            jitter streams of ``jitter_mode="wire"``.
        wires: All wires in construction order (``wires[wire_id]``).
    """

    version: int
    routes: Dict[Tuple[str, str], Tuple[Tuple[str, str, float], ...]]
    cells: Dict[str, Cell]
    cell_list: Tuple[Cell, ...]
    cell_index: Dict[str, int]
    input_ports: Tuple[Tuple[str, ...], ...]
    routes_idx: Dict[Tuple[str, str], Tuple[Tuple[int, int, float, int], ...]]
    wires: Tuple["Wire", ...]

    def fanout(self, cell_name: str, port: str) -> Tuple[Tuple[str, str, float], ...]:
        """Destinations driven by ``cell_name.port`` (possibly empty)."""
        return self.routes.get((cell_name, port), ())

    def resolve_endpoint(self, cell_name: str, port: str) -> Tuple[int, int]:
        """``(cell_idx, port_idx)`` of an input endpoint (cold path)."""
        cell_idx = self.cell_index[cell_name]
        return cell_idx, self.input_ports[cell_idx].index(port)

    def wire_key(self, wire_id: int) -> str:
        """A stable textual identity for a wire (seed material for the
        per-wire jitter streams -- see ``jitter_mode="wire"``)."""
        w = self.wires[wire_id]
        return f"{w.src}.{w.src_port}->{w.dst}.{w.dst_port}#{wire_id}"


@dataclass(frozen=True)
class Wire:
    """A directed connection between two cell ports.

    Attributes:
        src / src_port: Driving cell name and output port.
        dst / dst_port: Receiving cell name and input port.
        delay: Transmission delay in ps.
        jtl_count: Number of JTL repeater segments modelled along the wire
            (wiring resource; delay already includes their contribution).
    """

    src: str
    src_port: str
    dst: str
    dst_port: str
    delay: float = 0.0
    jtl_count: int = 0


class Netlist:
    """A circuit: cells, wires, and named external input pins."""

    #: Default wire delay (ps) when none is given: a short passive stub.
    DEFAULT_WIRE_DELAY = 1.0

    def __init__(self, name: str):
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self._wires_by_src: Dict[Tuple[str, str], List[Wire]] = {}
        self.wires: List[Wire] = []
        #: Bumped on every structural change (add/connect); lets memoised
        #: elaborations detect staleness without hashing the whole graph.
        self.topology_version = 0
        self._elaborated: FanoutTable = None

    # -- construction ------------------------------------------------------

    def add(self, cell: Cell) -> Cell:
        """Register a cell; names must be unique within the netlist."""
        if cell.name in self.cells:
            raise ConfigurationError(
                f"duplicate cell name '{cell.name}' in netlist '{self.name}'"
            )
        self.cells[cell.name] = cell
        self.topology_version += 1
        return cell

    def connect(
        self,
        src: CellRef,
        src_port: str,
        dst: CellRef,
        dst_port: str,
        delay: float = None,
        jtl_count: int = 0,
    ) -> Wire:
        """Wire ``src.src_port`` to ``dst.dst_port``.

        Enforces the RSFQ fan-out-of-one rule: each output port may drive at
        most one wire.  Use an :class:`repro.rsfq.library.SPL` to fan out.
        """
        src_cell = self._resolve(src)
        dst_cell = self._resolve(dst)
        if src_port not in src_cell.OUTPUTS:
            raise ConfigurationError(
                f"'{src_cell.name}' has no output port '{src_port}'"
            )
        if dst_port not in dst_cell.INPUTS:
            raise ConfigurationError(
                f"'{dst_cell.name}' has no input port '{dst_port}'"
            )
        key = (src_cell.name, src_port)
        if self._wires_by_src.get(key):
            raise ConfigurationError(
                f"output {src_cell.name}.{src_port} already drives a wire; "
                "RSFQ fan-out is 1 -- insert an SPL to branch"
            )
        wire = Wire(
            src=src_cell.name,
            src_port=src_port,
            dst=dst_cell.name,
            dst_port=dst_port,
            delay=self.DEFAULT_WIRE_DELAY if delay is None else delay,
            jtl_count=jtl_count,
        )
        self._wires_by_src.setdefault(key, []).append(wire)
        self.wires.append(wire)
        self.topology_version += 1
        return wire

    def _resolve(self, ref: CellRef) -> Cell:
        if isinstance(ref, Cell):
            if self.cells.get(ref.name) is not ref:
                raise ConfigurationError(
                    f"cell '{ref.name}' is not part of netlist '{self.name}'"
                )
            return ref
        if ref not in self.cells:
            raise ConfigurationError(
                f"no cell named '{ref}' in netlist '{self.name}'"
            )
        return self.cells[ref]

    # -- queries -----------------------------------------------------------

    def fanout(self, src: CellRef, src_port: str) -> List[Wire]:
        """Wires driven by the given output port (0 or 1 entries)."""
        src_cell = self._resolve(src)
        return list(self._wires_by_src.get((src_cell.name, src_port), ()))

    def elaborate(self) -> FanoutTable:
        """Pre-resolved routing table, memoised per topology version.

        The returned :class:`FanoutTable` is rebuilt only when cells or
        wires have been added since the last call, so repeated simulator
        construction / batched runs over the same netlist amortise the
        elaboration cost.
        """
        cached = self._elaborated
        if cached is not None and cached.version == self.topology_version:
            return cached
        routes = {
            key: tuple((w.dst, w.dst_port, w.delay) for w in wires)
            for key, wires in self._wires_by_src.items()
        }
        cell_list = tuple(self.cells.values())
        cell_index = {cell.name: i for i, cell in enumerate(cell_list)}
        input_ports = tuple(cell.INPUTS for cell in cell_list)
        wire_ids = {id(w): i for i, w in enumerate(self.wires)}
        routes_idx = {
            key: tuple(
                (
                    cell_index[w.dst],
                    input_ports[cell_index[w.dst]].index(w.dst_port),
                    w.delay,
                    wire_ids[id(w)],
                )
                for w in wires
            )
            for key, wires in self._wires_by_src.items()
        }
        self._elaborated = FanoutTable(
            version=self.topology_version,
            routes=routes,
            cells=dict(self.cells),
            cell_list=cell_list,
            cell_index=cell_index,
            input_ports=input_ports,
            routes_idx=routes_idx,
            wires=tuple(self.wires),
        )
        return self._elaborated

    def cells_of_type(self, cell_type: type) -> List[Cell]:
        """All cells that are instances of ``cell_type``."""
        return [c for c in self.cells.values() if isinstance(c, cell_type)]

    def logic_jj_count(self) -> int:
        """Total JJs in functional cells (excludes wire JTL repeaters)."""
        return sum(c.JJ_COUNT for c in self.cells.values())

    def wiring_jj_count(self) -> int:
        """Total JJs in JTL repeaters along wires."""
        from repro.rsfq.library import JTL

        return sum(w.jtl_count * JTL.JJ_COUNT for w in self.wires)

    def total_jj_count(self) -> int:
        """Logic plus wiring JJs."""
        return self.logic_jj_count() + self.wiring_jj_count()

    def cell_histogram(self) -> Dict[str, int]:
        """Cell-type name -> instance count (for resource reports)."""
        hist: Dict[str, int] = {}
        for cell in self.cells.values():
            key = type(cell).__name__
            hist[key] = hist.get(key, 0) + 1
        return hist

    def reset_state(self) -> None:
        """Reset every cell to its power-on state."""
        for cell in self.cells.values():
            cell.reset_state()

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterable[Cell]:
        return iter(self.cells.values())

    def __repr__(self) -> str:
        return (
            f"<Netlist '{self.name}': {len(self.cells)} cells, "
            f"{len(self.wires)} wires>"
        )
