"""Discrete-event simulator for RSFQ superconducting circuits.

This package is the hardware substrate of the SUSHI reproduction: an
event-driven, pulse-level simulator of rapid single-flux-quantum (RSFQ)
cells.  Information is carried by SFQ pulses; a cell reacts to a pulse on an
input port, updates its internal flux state, and may emit pulses on output
ports after a per-cell delay.  Cells enforce the minimum pulse-interval
constraints of the paper's Table 1.

Typical use::

    from repro.rsfq import Netlist, Simulator, library

    net = Netlist("demo")
    tff = net.add(library.TFFL("t0"))
    probe = net.add(library.Probe("p0"))
    net.connect(tff, "dout", probe, "din")

    sim = Simulator(net)
    sim.schedule_input(tff, "din", 0.0)
    sim.schedule_input(tff, "din", 50.0)
    sim.run()
    assert probe.times == [pytest.approx(6.9)]  # one pulse per two inputs
"""

from repro.rsfq.cells import Cell, Violation
from repro.rsfq.constraints import (
    CB_CROSS_INTERVAL,
    DFF_DIN_TO_CLK,
    MIN_PULSE_INTERVAL,
    NDRO_DIN_RST_SEPARATION,
    NDRO_DIN_TO_CLK,
    NDRO_RST_TO_CLK,
    TFF_MIN_INTERVAL,
)
from repro.rsfq.events import (
    QUEUE_BACKENDS,
    EventQueue,
    PulseEvent,
    SortedListQueue,
)
from repro.rsfq.faults import (
    FAULT_KINDS,
    FaultModel,
    FaultSpec,
    InjectionRecord,
    canonical_log,
    fault_site_rng,
)
from repro.rsfq.netlist import FanoutTable, Netlist, Wire
from repro.rsfq.parallel import ParallelSimulator
from repro.rsfq.partition import Partition, PartitionPlan, partition_netlist
from repro.rsfq.session import RunResult, SessionStats, SimulationSession
from repro.rsfq.simulator import (
    JITTER_MODES,
    RunStats,
    Simulator,
    wire_jitter_rng,
)
from repro.rsfq.trace import (
    GLOBAL_TRACE_COUNTERS,
    TRACE_KIND,
    CompiledTrace,
    EpisodeResult,
    ScheduleRecorder,
    TraceCounters,
    TraceEngine,
    netlist_fingerprint,
    record_trace,
    schedule_fingerprint,
    trace_counter_families,
)
from repro.rsfq.waveform import (
    PulseTrace,
    levels_to_pulses,
    pulses_to_levels,
    render_waveform,
)
from repro.rsfq import library
from repro.rsfq import logic
from repro.rsfq.analysis import PathTiming, earliest_arrival
from repro.rsfq.export import from_json, to_dot, to_json

__all__ = [
    "Cell",
    "Violation",
    "PulseEvent",
    "EventQueue",
    "SortedListQueue",
    "QUEUE_BACKENDS",
    "Netlist",
    "FanoutTable",
    "Wire",
    "Simulator",
    "ParallelSimulator",
    "Partition",
    "PartitionPlan",
    "partition_netlist",
    "JITTER_MODES",
    "wire_jitter_rng",
    "FAULT_KINDS",
    "FaultModel",
    "FaultSpec",
    "InjectionRecord",
    "canonical_log",
    "fault_site_rng",
    "RunStats",
    "SimulationSession",
    "RunResult",
    "SessionStats",
    "CompiledTrace",
    "TraceEngine",
    "EpisodeResult",
    "ScheduleRecorder",
    "TraceCounters",
    "GLOBAL_TRACE_COUNTERS",
    "TRACE_KIND",
    "record_trace",
    "netlist_fingerprint",
    "schedule_fingerprint",
    "trace_counter_families",
    "PulseTrace",
    "levels_to_pulses",
    "pulses_to_levels",
    "render_waveform",
    "library",
    "logic",
    "PathTiming",
    "earliest_arrival",
    "from_json",
    "to_dot",
    "to_json",
    "MIN_PULSE_INTERVAL",
    "CB_CROSS_INTERVAL",
    "TFF_MIN_INTERVAL",
    "NDRO_DIN_RST_SEPARATION",
    "NDRO_DIN_TO_CLK",
    "NDRO_RST_TO_CLK",
    "DFF_DIN_TO_CLK",
]
