"""Pulse traces and pulse-level conversion (paper Fig. 14 / Fig. 16).

SFQ pulses are ~1 ps / ~1 mV and invisible to room-temperature equipment, so
the chip is observed through level conversion: every output pulse *toggles* a
DC level sampled by the oscilloscope, and input pulses are generated from
short DC pulses.  :func:`pulses_to_levels` and :func:`levels_to_pulses`
implement both directions; :func:`render_waveform` draws the oscilloscope
view as ASCII for the Fig. 16 comparison.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class PulseTrace:
    """Records pulse arrival times per ``(component, port)`` channel.

    Besides the per-channel view, the trace keeps the flat event log in
    global record order, so two traces can be compared event-by-event
    (:meth:`events`) and serialised exactly (:meth:`save` /
    :meth:`load` -- JSON ``repr`` round-trips Python floats losslessly,
    which is what the golden-trace snapshot tests rely on).
    """

    def __init__(self):
        self._events: "OrderedDict[Tuple[str, str], List[float]]" = OrderedDict()
        self._log: List[Tuple[str, str, float]] = []

    def record(self, component: str, port: str, time: float) -> None:
        self._events.setdefault((component, port), []).append(time)
        self._log.append((component, port, time))

    def times(self, component: str, port: str) -> List[float]:
        """Pulse times observed on a channel (empty list if none)."""
        return list(self._events.get((component, port), ()))

    def channels(self) -> List[Tuple[str, str]]:
        """All channels that saw at least one pulse, in first-seen order."""
        return list(self._events.keys())

    def events(self) -> List[Tuple[str, str, float]]:
        """The full event sequence ``(component, port, time)`` in the
        order the simulator processed it."""
        return list(self._log)

    def total_pulses(self) -> int:
        return sum(len(v) for v in self._events.values())

    def clear(self) -> None:
        self._events.clear()
        self._log.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PulseTrace):
            return NotImplemented
        return self._log == other._log

    # -- serialisation -----------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serialisable form (exact, ordered event log)."""
        return {
            "version": 1,
            "events": [
                {"component": c, "port": p, "time": t}
                for c, p, t in self._log
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PulseTrace":
        """Rebuild a trace from :meth:`to_payload` output."""
        try:
            version = payload["version"]
            events = payload["events"]
        except (TypeError, KeyError):
            raise ConfigurationError("malformed pulse-trace payload")
        if version != 1:
            raise ConfigurationError(
                f"unsupported pulse-trace payload version: {version!r}"
            )
        trace = cls()
        for event in events:
            try:
                trace.record(
                    str(event["component"]), str(event["port"]),
                    float(event["time"]),
                )
            except (TypeError, KeyError, ValueError):
                raise ConfigurationError(
                    f"malformed pulse-trace event: {event!r}"
                )
        return trace

    def save(self, path: str) -> None:
        """Write the trace as JSON (float-exact round trip)."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, indent=1)

    @classmethod
    def load(cls, path: str) -> "PulseTrace":
        """Read a trace previously written by :meth:`save`."""
        if not os.path.exists(path):
            raise ConfigurationError(f"no pulse trace at '{path}'")
        with open(path) as handle:
            return cls.from_payload(json.load(handle))


def pulses_to_levels(
    times: Sequence[float], t_end: float, dt: float = 10.0, t_start: float = 0.0
) -> np.ndarray:
    """Convert pulse times to the toggling DC level an oscilloscope samples.

    Each pulse inverts the level (paper Fig. 14, "real output").  Returns an
    int8 array of samples over ``[t_start, t_end)`` with step ``dt`` ps.
    """
    if dt <= 0:
        raise ConfigurationError("sampling step dt must be positive")
    if t_end < t_start:
        raise ConfigurationError("t_end must be >= t_start")
    grid = np.arange(t_start, t_end, dt)
    levels = np.zeros(len(grid), dtype=np.int8)
    if len(grid) == 0:
        return levels
    toggles = np.searchsorted(grid, np.asarray(sorted(times)), side="right")
    for idx in toggles:
        levels[idx:] ^= 1
    return levels


def levels_to_pulses(levels: Sequence[int], dt: float = 10.0, t_start: float = 0.0) -> List[float]:
    """Recover pulse times from a sampled toggling level (inverse of
    :func:`pulses_to_levels`, up to sampling quantisation)."""
    if dt <= 0:
        raise ConfigurationError("sampling step dt must be positive")
    arr = np.asarray(levels, dtype=np.int8)
    if arr.size == 0:
        return []
    edges = np.flatnonzero(np.diff(np.concatenate(([0], arr))) != 0)
    return [t_start + float(i) * dt for i in edges]


def count_pulses_from_levels(levels: Sequence[int]) -> int:
    """Number of pulses implied by a sampled toggling level."""
    return len(levels_to_pulses(levels, dt=1.0))


def render_waveform(
    channels: Dict[str, Sequence[float]],
    t_end: float,
    width: int = 80,
    t_start: float = 0.0,
) -> str:
    """ASCII oscilloscope view: one row per channel, toggling levels.

    Args:
        channels: Mapping of channel label -> pulse times.
        t_end: Right edge of the view in ps.
        width: Number of character columns.
        t_start: Left edge of the view in ps.

    Returns a multi-line string where ``_`` is the low level, a high-level
    overline is drawn with ``#``, and each toggle marks one SFQ pulse --
    mirroring the oscilloscope photographs in the paper's Fig. 16.
    """
    if width <= 0:
        raise ConfigurationError("width must be positive")
    dt = (t_end - t_start) / width if t_end > t_start else 1.0
    label_width = max((len(label) for label in channels), default=0)
    lines = []
    for label, times in channels.items():
        levels = pulses_to_levels(times, t_end=t_end, dt=dt, t_start=t_start)
        body = "".join("#" if lvl else "_" for lvl in levels)
        lines.append(f"{label.rjust(label_width)} |{body}|")
    return "\n".join(lines)
