"""Composable fault injection for the RSFQ discrete-event engine.

Real RSFQ chips do not only jitter: SFQ pulses are *dropped* when a bias
margin is exceeded, *escape* (duplicate) across parasitic couplings, arrive
*late* when a bias line sags, junctions get *stuck* after a fabrication
defect, and trapped flux quanta silently corrupt stored cell state (the
failure modes SuperSNN-style physical-realizability analyses treat as
first-class design constraints; see ``docs/FAULTS.md`` for the taxonomy).
This module models all five as a composable :class:`FaultModel` attached to
:class:`repro.rsfq.simulator.Simulator` at construction:

* decisions draw from **deterministic per-site streams** -- one
  :class:`random.Random` per wire (and per stuck-cell candidate), seeded
  from ``(model seed, stable site identity)`` exactly like
  ``jitter_mode="wire"``.  Because every wire is driven by a single output
  port (RSFQ fan-out is one), the k-th pulse on a wire always consumes that
  wire's k-th draws, so fault outcomes are independent of global event
  interleaving and **bit-identical between the sequential and the
  partitioned parallel engine** for any seed;
* every injected fault is appended to an **injection log**
  (:class:`InjectionRecord`); :func:`canonical_log` produces an
  engine-independent ordering so serial and parallel logs compare equal;
* the zero-fault configuration stays on the engine's allocation-free fast
  path: the simulator binds its faulty delivery variant only when a model
  with at least one spec is attached (construction-time specialisation,
  see ``Simulator._bind_deliver``).

Fault kinds
-----------

``pulse_drop``
    Each pulse traversing a targeted wire is lost with ``probability``.
``pulse_duplicate``
    Each pulse traversing a targeted wire spawns an echo pulse
    ``delay_ps`` later with ``probability`` (a pulse escape re-entering
    the line).
``extra_delay``
    Each pulse traversing a targeted wire arrives ``delay_ps`` late with
    ``probability`` (late pulse / bias sag).
``stuck_cell``
    A targeted cell is stuck (dead junction): selected once per cell at
    bind time with ``probability``; a stuck cell swallows every arrival,
    including external stimuli.
``flux_trap``
    With ``probability`` per pulse delivered into a targeted cell, a flux
    quantum traps in the cell immediately before the arrival is processed:
    the cell's stored state is corrupted via :meth:`Cell.flux_trap
    <repro.rsfq.cells.Cell.flux_trap>` (stateful cells flip their stored
    bit; stateless cells have no flux to trap).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultModel",
    "InjectionRecord",
    "canonical_log",
    "fault_site_rng",
]

#: The supported fault kinds (see module docstring).
FAULT_KINDS = (
    "pulse_drop",
    "pulse_duplicate",
    "extra_delay",
    "stuck_cell",
    "flux_trap",
)

#: Kinds whose decisions are drawn per pulse on a wire.
_WIRE_KINDS = ("pulse_drop", "pulse_duplicate", "extra_delay", "flux_trap")


def fault_site_rng(seed, site: str) -> random.Random:
    """The deterministic fault stream of one site (wire or cell).

    String seeding uses CPython's stable sha512-based path, so the stream
    depends only on ``(seed, site)`` -- never on hash randomisation, event
    interleaving, or which partition the site landed in.  Fault streams
    are namespaced apart from the ``jitter_mode="wire"`` streams so
    attaching a fault model never perturbs jitter draws (and vice versa).
    """
    return random.Random(f"fault|{seed!r}|{site}")


@dataclass(frozen=True)
class InjectionRecord:
    """One injected fault.

    Attributes:
        time: Simulation time (ps) of the affected arrival.
        kind: Fault kind (one of :data:`FAULT_KINDS`).
        site: Stable site identity -- the wire key for wire faults
            (``src.port->dst.port#id``), ``input:cell.port`` for swallowed
            external stimuli, or the cell name for bind-time stuck marks.
        cell: Name of the cell whose behaviour the fault affected.
        ordinal: Per-``(site, kind)`` sequence number, counted in pulse
            order along the site -- identical between engines.
    """

    time: float
    kind: str
    site: str
    cell: str
    ordinal: int

    def sort_key(self) -> tuple:
        return (self.time, self.site, self.kind, self.ordinal)


def canonical_log(records: Sequence[InjectionRecord]) -> Tuple[InjectionRecord, ...]:
    """Engine-independent ordering of an injection log.

    Within one site and kind, ordinals follow pulse order along that site
    (identical in both engines); across sites, ``(time, site, kind,
    ordinal)`` is a total order, so the canonical logs of a sequential and
    a partitioned run of the same seeded workload compare equal.
    """
    return tuple(sorted(records, key=InjectionRecord.sort_key))


@dataclass(frozen=True)
class FaultSpec:
    """One fault process.

    Args:
        kind: One of :data:`FAULT_KINDS`.
        probability: Per-decision probability in ``[0, 1]`` (per pulse for
            wire kinds; per cell, once at bind time, for ``stuck_cell``).
        cells: Optional cell-name targeting.  Wire kinds match wires whose
            source *or* destination is listed; ``flux_trap`` matches wires
            into a listed cell; ``stuck_cell`` marks listed cells.  ``None``
            targets everything.
        wires: Optional wire targeting by ``"src.src_port->dst.dst_port"``
            string (see :meth:`repro.rsfq.netlist.FanoutTable.wire_key`,
            without the ``#id`` suffix).  ``None`` targets every wire.
        delay_ps: Echo offset for ``pulse_duplicate`` / added latency for
            ``extra_delay`` (must be >= 0 so the parallel engine's
            conservative lookahead stays valid).
    """

    kind: str
    probability: float = 1.0
    cells: Optional[frozenset] = None
    wires: Optional[frozenset] = None
    delay_ps: float = 5.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind '{self.kind}'; "
                f"available: {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError(
                f"{self.kind}: probability {self.probability} outside [0, 1]"
            )
        if self.delay_ps < 0.0:
            raise FaultInjectionError(
                f"{self.kind}: delay_ps must be >= 0 (negative extra delay "
                "would break the parallel engine's conservative lookahead)"
            )
        if self.cells is not None:
            object.__setattr__(self, "cells", frozenset(self.cells))
        if self.wires is not None:
            object.__setattr__(self, "wires", frozenset(self.wires))

    def matches_wire(self, wire) -> bool:
        """Does this (wire-kind) spec apply to pulses on ``wire``?"""
        if self.wires is not None:
            key = f"{wire.src}.{wire.src_port}->{wire.dst}.{wire.dst_port}"
            if key not in self.wires:
                return False
        if self.cells is not None:
            if self.kind == "flux_trap":
                return wire.dst in self.cells
            return wire.src in self.cells or wire.dst in self.cells
        return True


class FaultModel:
    """An immutable, composable set of :class:`FaultSpec` processes plus a
    seed for the deterministic per-site decision streams.

    Models compose by concatenation (:meth:`extended`, :meth:`compose`) and
    re-seed cheaply (:meth:`reseeded`) -- the campaign harness sweeps
    ``FaultModel.single(kind, p).reseeded(trial_seed)`` grids.  A model is
    *config only*: every simulator binds its own mutable runtime state, so
    one model can back many engines (including the per-partition local
    engines of the parallel simulator) without sharing streams.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed=0,
                 max_records: int = 200_000):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        if max_records < 0:
            raise FaultInjectionError("max_records must be >= 0")
        self.max_records = max_records

    # -- construction helpers ---------------------------------------------

    @classmethod
    def single(cls, kind: str, probability: float = 1.0, seed=0,
               cells=None, wires=None, delay_ps: float = 5.0,
               ) -> "FaultModel":
        """A model with one spec (the common campaign building block)."""
        return cls(
            [FaultSpec(kind=kind, probability=probability,
                       cells=None if cells is None else frozenset(cells),
                       wires=None if wires is None else frozenset(wires),
                       delay_ps=delay_ps)],
            seed=seed,
        )

    @classmethod
    def compose(cls, *models: "FaultModel", seed=None) -> "FaultModel":
        """Concatenate several models' specs into one (first model's seed
        wins unless ``seed`` is given)."""
        specs: List[FaultSpec] = []
        for model in models:
            specs.extend(model.specs)
        if seed is None:
            seed = models[0].seed if models else 0
        return cls(specs, seed=seed)

    def extended(self, *specs: FaultSpec) -> "FaultModel":
        """A new model with ``specs`` appended (same seed)."""
        return FaultModel(self.specs + tuple(specs), seed=self.seed,
                          max_records=self.max_records)

    def reseeded(self, seed) -> "FaultModel":
        """The same fault processes under a fresh decision seed (one
        Monte-Carlo trial of the same physical failure hypothesis)."""
        return FaultModel(self.specs, seed=seed,
                          max_records=self.max_records)

    # -- properties --------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one spec is attached (an empty model keeps
        the engine on its zero-fault fast path)."""
        return bool(self.specs)

    def bind(self, fanout) -> "BoundFaults":
        """Create this model's per-simulator runtime state over an
        elaborated :class:`~repro.rsfq.netlist.FanoutTable`."""
        return BoundFaults(self, fanout)

    def __repr__(self) -> str:
        kinds = ",".join(s.kind for s in self.specs) or "inactive"
        return f"<FaultModel [{kinds}] seed={self.seed!r}>"


class _FluxTrapProxy:
    """Arrival interceptor: corrupts the target cell's stored state, then
    forwards the pulse.

    Queue entries normally index the fan-out table's cell list; a trapped
    pulse instead indexes one of these proxies (appended past the real
    cells in the simulator's cell view), so the corruption executes at the
    pulse's *arrival* time, in event order -- which is what keeps trapped
    runs bit-identical between the sequential and partitioned engines.
    """

    __slots__ = ("target", "name")

    def __init__(self, target):
        self.target = target
        self.name = target.name  # trace records stay channel-accurate

    def receive(self, port: str, time: float, sim) -> None:
        self.target.flux_trap()
        self.target.receive(port, time, sim)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_FluxTrapProxy for {self.target!r}>"


class BoundFaults:
    """Mutable per-simulator runtime of a :class:`FaultModel`.

    Holds the per-wire spec tables, the stuck-cell set, the lazily-created
    decision streams, the per-site ordinals and the injection log.  The
    heavy lifting happens in :meth:`route_pulse`, called by the simulator's
    faulty delivery variant once per pulse per wire.
    """

    def __init__(self, model: FaultModel, fanout):
        self.model = model
        self.fanout = fanout
        self.log: List[InjectionRecord] = []
        #: Records suppressed after the model's ``max_records`` cap.
        self.suppressed_records = 0
        #: Per-kind injection totals (cheap health signal).
        self.counts: Dict[str, int] = {}
        #: Lazily-created per-wire decision streams and per-(site, kind)
        #: ordinal counters.
        self._streams: Dict[int, random.Random] = {}
        self._ordinals: Dict[Tuple[str, str], int] = {}
        #: Cells whose bind-time stuck marks this runtime logs (None =
        #: all; the partitioned engine restricts each local runtime to
        #: its own partition so the merged logs equal the sequential one).
        self._owned: Optional[frozenset] = None

        self._validate_targets(model, fanout)

        # wire_id -> tuple of applicable wire-kind specs (empty tuples are
        # omitted so the common no-fault wire costs one dict miss).
        self.wire_specs: Dict[int, Tuple[FaultSpec, ...]] = {}
        for wid, wire in enumerate(fanout.wires):
            applicable = tuple(
                s for s in model.specs
                if s.kind in _WIRE_KINDS and s.matches_wire(wire)
            )
            if applicable:
                self.wire_specs[wid] = applicable

        # Stuck cells: one bind-time draw per candidate, from the cell's
        # own stream -- deterministic per (seed, cell name), so identical
        # across engines and partition counts.
        stuck: set = set()
        for spec in model.specs:
            if spec.kind != "stuck_cell":
                continue
            names = (sorted(spec.cells) if spec.cells is not None
                     else [c.name for c in fanout.cell_list])
            for name in names:
                idx = fanout.cell_index.get(name)
                if idx is None or idx in stuck:
                    continue
                if spec.probability >= 1.0:
                    hit = True
                else:
                    rng = fault_site_rng(model.seed, f"stuck:{name}")
                    hit = rng.random() < spec.probability
                if hit:
                    stuck.add(idx)
        self.stuck = frozenset(stuck)
        self._log_stuck_marks()

        # Flux-trap proxies: one per input port of any trappable cell,
        # appended past the real cells so queue entries can address them.
        # Index layout is a pure function of (fanout, model), hence
        # identical across engines.
        self._has_traps = any(s.kind == "flux_trap" for s in model.specs)
        cells_view = list(fanout.cell_list)
        ports_view = list(fanout.input_ports)
        self.trap_index: Dict[Tuple[int, int], int] = {}
        if self._has_traps:
            trappable = set()
            for wid, specs in self.wire_specs.items():
                if any(s.kind == "flux_trap" for s in specs):
                    wire = fanout.wires[wid]
                    trappable.add(fanout.cell_index[wire.dst])
            for ci in sorted(trappable):
                cell = fanout.cell_list[ci]
                for pi, port in enumerate(fanout.input_ports[ci]):
                    self.trap_index[(ci, pi)] = len(cells_view)
                    cells_view.append(_FluxTrapProxy(cell))
                    ports_view.append((port,))
        self.cells_view: Tuple = tuple(cells_view)
        self.ports_view: Tuple = tuple(ports_view)

    @staticmethod
    def _validate_targets(model: FaultModel, fanout) -> None:
        known_cells = set(fanout.cells)
        known_wires = {
            f"{w.src}.{w.src_port}->{w.dst}.{w.dst_port}"
            for w in fanout.wires
        }
        for spec in model.specs:
            if spec.cells is not None:
                missing = sorted(set(spec.cells) - known_cells)
                if missing:
                    raise FaultInjectionError(
                        f"{spec.kind}: unknown target cells {missing}"
                    )
            if spec.wires is not None:
                missing = sorted(set(spec.wires) - known_wires)
                if missing:
                    raise FaultInjectionError(
                        f"{spec.kind}: unknown target wires {missing}"
                    )

    # -- bookkeeping -------------------------------------------------------

    def _record(self, time: float, kind: str, site: str, cell: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.log) >= self.model.max_records:
            self.suppressed_records += 1
            return
        key = (site, kind)
        ordinal = self._ordinals.get(key, 0)
        self._ordinals[key] = ordinal + 1
        self.log.append(InjectionRecord(
            time=time, kind=kind, site=site, cell=cell, ordinal=ordinal,
        ))

    def _log_stuck_marks(self) -> None:
        """Log the bind-time stuck marks (restricted to owned cells when a
        partition restriction is in force)."""
        owned = self._owned
        for name in sorted(
            self.fanout.cell_list[idx].name for idx in self.stuck
        ):
            if owned is not None and name not in owned:
                continue
            self._record(0.0, "stuck_cell", name, name)

    def restrict_stuck_marks(self, owned) -> None:
        """Log bind-time stuck marks only for the cells in ``owned``.

        The partitioned engine binds one runtime per partition over the
        *same* model; without this restriction every partition would log
        (and count) the full stuck set, so the merged injection log would
        hold ``n_partitions`` copies of each bind mark.  Restricting each
        runtime to its partition's cells makes the merged log/counts equal
        the sequential engine's.  The stuck *behaviour* stays global --
        every runtime swallows pulses into any stuck cell, whichever
        partition it lives in.
        """
        self._owned = frozenset(owned)
        kept = []
        removed = 0
        for rec in self.log:
            if rec.kind == "stuck_cell" and rec.site == rec.cell:
                removed += 1
                self._ordinals.pop((rec.site, rec.kind), None)
            else:
                kept.append(rec)
        self.log[:] = kept
        if removed:
            remaining = self.counts.get("stuck_cell", 0) - removed
            if remaining > 0:
                self.counts["stuck_cell"] = remaining
            else:
                self.counts.pop("stuck_cell", None)
        self._log_stuck_marks()

    def injections(self) -> int:
        """Total injected faults (including suppressed log entries)."""
        return sum(self.counts.values())

    def reset(self) -> None:
        """Restart every decision stream from the model seed and clear the
        log/ordinals -- called by ``Simulator.reset`` so reused sessions
        replay identical fault sequences instead of leaking stream state
        between batch samples."""
        self._streams.clear()
        self._ordinals.clear()
        self.log.clear()
        self.suppressed_records = 0
        self.counts.clear()
        # Re-log bind-time stuck marks (they are part of the fault state).
        self._log_stuck_marks()

    # -- the per-pulse decision procedure ---------------------------------

    def route_pulse(self, wid: int, dst_idx: int, dst_port_idx: int,
                    arrival: float):
        """Apply this wire's fault processes to one delivered pulse.

        Returns the queue entries to push as ``(time, cell_view_idx,
        port_idx)`` tuples: usually one (the pulse itself, possibly
        delayed or rerouted through a flux-trap proxy), zero when the
        pulse is dropped or its destination is stuck, or two when an echo
        pulse is spawned.  Decision draws come from the wire's stream in
        pulse order, so the outcome is interleaving-independent.
        """
        site = None
        if dst_idx in self.stuck:
            site = self.fanout.wire_key(wid)
            self._record(
                arrival, "stuck_cell", site,
                self.fanout.cell_list[dst_idx].name,
            )
            return ()
        specs = self.wire_specs.get(wid)
        if not specs:
            return ((arrival, dst_idx, dst_port_idx),)
        rng = self._streams.get(wid)
        if rng is None:
            rng = self._streams[wid] = fault_site_rng(
                self.model.seed, self.fanout.wire_key(wid)
            )
        random_ = rng.random
        dst_name = None
        trapped = False
        echoes: List[Tuple[float, int, int]] = []
        for spec in specs:
            p = spec.probability
            if p <= 0.0:
                continue
            if random_() >= p:
                continue
            if site is None:
                site = self.fanout.wire_key(wid)
                dst_name = self.fanout.cell_list[dst_idx].name
            kind = spec.kind
            if kind == "pulse_drop":
                self._record(arrival, kind, site, dst_name)
                return tuple(echoes)  # the pulse is gone; echoes stand
            if kind == "extra_delay":
                arrival += spec.delay_ps
                self._record(arrival, kind, site, dst_name)
            elif kind == "pulse_duplicate":
                echo_time = arrival + spec.delay_ps
                echoes.append((echo_time, dst_idx, dst_port_idx))
                self._record(echo_time, kind, site, dst_name)
            elif kind == "flux_trap":
                trapped = True
                self._record(arrival, kind, site, dst_name)
        if trapped:
            idx = self.trap_index[(dst_idx, dst_port_idx)]
            main = (arrival, idx, 0)
        else:
            main = (arrival, dst_idx, dst_port_idx)
        if echoes:
            return (main, *echoes)
        return (main,)

    def swallow_external(self, cell_idx: int, cell_name: str, port: str,
                         time: float) -> bool:
        """Swallow (and log) an external stimulus aimed at a stuck cell.

        Returns True when the pulse must not be scheduled.  Decided purely
        from the bind-time stuck set, so the verdict is identical however
        the netlist is partitioned.
        """
        if cell_idx not in self.stuck:
            return False
        self._record(time, "stuck_cell", f"input:{cell_name}.{port}",
                     cell_name)
        return True
