"""Trace-compiled gate-level simulation: record once, replay vectorized.

The dominant RSFQ workloads (campaign sweeps, fault Monte-Carlo, jitter
seeds) re-run *one fixed netlist and stimulus schedule* under varied
randomness.  The discrete-event engine pays heap + dispatch cost per
event on every run; this module pays it **once**:

1. **Record** -- :func:`record_trace` runs a single strict-mode, ideal
   (zero-jitter, fault-free) :class:`~repro.rsfq.simulator.Simulator`
   pass over the schedule and flattens it into an immutable
   :class:`CompiledTrace`: numpy arrays of arrival times, integer
   cell/port indices, causal parent edges, and per-event wire transit
   delays, plus the recorded margin table and per-segment event counts.

2. **Replay** -- :class:`TraceEngine` re-executes stimulus variations as
   flat array passes over the trace:

   * *ideal* replays return the recorded outcome directly (the warm
     path -- O(outputs), no event loop at all);
   * *jitter-seed* replays re-time every event level-by-level with
     precomputed per-wire Gaussian offset arrays (the exact streams of
     ``jitter_mode="wire"``), reproducing the engine's floating-point
     association bit-for-bit;
   * *fault-site* replays run the bound fault model's decision streams
     over the recorded wire pulses; a run that would inject nothing is
     served from the trace, anything else diverges.

3. **Divergence => fallback** -- replay is only valid while the run's
   event set and per-cell arrival orders match the recording.  Any tie
   or ordering flip across a constraint window, any fault trigger, an
   uncertifiable emission pattern, or an unsupported configuration falls
   back transparently to the event engine (the PR 2 fast path) with
   bit-identical results; the decision is observable through
   :attr:`TraceEngine.stats` and the process-wide
   :data:`GLOBAL_TRACE_COUNTERS`.

Replay correctness rests on two certified invariants:

* **Emit-constant certification** -- every library cell emits at exactly
  ``arrival + DELAY_PS``; :class:`_BoundTrace` verifies this bitwise
  against the recording (re-timing the whole trace from the class
  constants must reproduce the recorded times exactly).  Certified
  traces can be re-timed under jitter with the engine's exact per-hop
  rounding; uncertified traces still serve ideal replays.

* **Per-cell order preservation** -- cells interact only through
  pulses, so a cell's state trajectory (and every constraint check) is
  a function of its own arrival order.  Replay requires the re-timed
  arrivals at every cell to stay *strictly* increasing in recorded
  order; otherwise the run diverges and falls back.

Traces are content-addressed by ``(netlist fingerprint, schedule
fingerprint)`` and can persist in the SSNN
:class:`~repro.ssnn.compile.PlanCache` under the :data:`TRACE_KIND`
artifact namespace.  See the "Trace compilation" section of
``docs/ENGINE.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ConstraintViolationError
from repro.rsfq.cells import Cell, Violation
from repro.rsfq.constraints import INTERVAL_EPSILON
from repro.rsfq.faults import FaultModel, fault_site_rng
from repro.rsfq.library import Probe
from repro.rsfq.netlist import Netlist
from repro.rsfq.simulator import Simulator, wire_jitter_rng
from repro.rsfq.waveform import PulseTrace

#: Artifact-kind namespace for traces in the shared ``PlanCache`` root
#: (SSNN plans live under ``repro.ssnn.compile.PLAN_KIND``).
TRACE_KIND = "rsfq-trace"

#: Bumped whenever the on-disk layout or replay semantics change; stale
#: cache entries are rejected at load and recompiled.
TRACE_SCHEMA_VERSION = 1

#: One normalised stimulus: ``(cell name, input port, time in ps)``.
NormStimulus = Tuple[str, str, float]

#: A normalised schedule: one stimulus tuple per ``run()`` segment.
Segments = Tuple[Tuple[NormStimulus, ...], ...]


# -- replay counters ---------------------------------------------------------


class TraceCounters:
    """Thread-safe record/replay counters (Prometheus-exported).

    One process-wide instance (:data:`GLOBAL_TRACE_COUNTERS`) aggregates
    across every :class:`TraceEngine`; engines also keep per-instance
    totals in :attr:`TraceEngine.stats`.
    """

    FIELDS = ("records", "replays", "fallbacks", "cache_hits",
              "cache_misses")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] += n

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for name in self.FIELDS:
                self._counts[name] = 0


#: Process-wide totals scraped by the gateway ``/metrics`` endpoint.
GLOBAL_TRACE_COUNTERS = TraceCounters()

_COUNTER_HELP = {
    "records": "Gate-level schedules recorded into compiled traces",
    "replays": "Runs served by vectorized trace replay",
    "fallbacks": "Replay requests that fell back to the event engine",
    "cache_hits": "Compiled traces loaded from the plan cache",
    "cache_misses": "Trace-cache lookups that missed",
}


def trace_counter_families(counters: Optional[TraceCounters] = None,
                           namespace: str = "sushi"):
    """The trace counters as Prometheus metric families.

    Same ``(name, type, help, samples)`` shape as
    :func:`repro.serve.metrics.server_stats_families`, so the gateway can
    append these to one :func:`~repro.serve.metrics.render_prometheus`
    call.
    """
    snap = (GLOBAL_TRACE_COUNTERS if counters is None else counters
            ).snapshot()
    return [
        (f"{namespace}_trace_{name}_total", "counter",
         _COUNTER_HELP[name], [(None, snap[name])])
        for name in TraceCounters.FIELDS
    ]


# -- fingerprints ------------------------------------------------------------


def normalize_segments(segments) -> Segments:
    """Canonicalise a schedule: cells to names, times to floats.

    ``segments`` is an iterable of stimulus sequences -- one per
    ``run()`` call, preserving the schedule-then-run interleaving that
    fixes event tie-breaking.
    """
    out = []
    for seg in segments:
        row = []
        for cell, port, time in seg:
            name = cell.name if isinstance(cell, Cell) else str(cell)
            row.append((name, str(port), float(time)))
        out.append(tuple(row))
    return tuple(out)


def netlist_fingerprint(netlist: Netlist) -> str:
    """Content hash of the netlist's structure (cells, types, wiring).

    Two independently-built netlists with identical structure share a
    fingerprint, so a trace recorded on one replays onto the other
    (the campaign's fresh-netlist-per-trial pattern).
    """
    h = hashlib.sha256()
    h.update(f"repro.rsfq.trace/v{TRACE_SCHEMA_VERSION}|netlist\n"
             .encode())
    for cell in netlist.cells.values():
        h.update(f"c|{cell.name}|{type(cell).__name__}\n".encode())
    for wire in netlist.wires:
        h.update(
            f"w|{wire.src}|{wire.src_port}|{wire.dst}|{wire.dst_port}|"
            f"{wire.delay!r}|{wire.jtl_count}\n".encode()
        )
    return h.hexdigest()


def schedule_fingerprint(segments) -> str:
    """Content hash of a normalised stimulus schedule."""
    h = hashlib.sha256()
    h.update(f"repro.rsfq.trace/v{TRACE_SCHEMA_VERSION}|schedule\n"
             .encode())
    for seg in segments:
        h.update(b"segment\n")
        if seg:
            h.update("\n".join(f"{name}|{port}|{time!r}"
                               for name, port, time in seg).encode())
            h.update(b"\n")
    return h.hexdigest()


def trace_fingerprint(netlist_fp: str, schedule_fp: str) -> str:
    """The content address of one (netlist, schedule) trace."""
    return hashlib.sha256(
        f"trace|{netlist_fp}|{schedule_fp}".encode()
    ).hexdigest()


# -- schedule capture --------------------------------------------------------


class ScheduleRecorder(Simulator):
    """Drop-in :class:`Simulator` that logs the explicit stimulus
    schedule it executes, as run-delimited segments.

    This is the bridge from *closed-loop* drivers (e.g.
    :class:`repro.neuro.chip.ChipDriver`, whose schedule times depend on
    ``sim.now`` feedback) to the trace layer's *open-loop* contract:
    drive the recorder once, then hand :meth:`captured_segments` to
    :class:`TraceEngine` -- re-executing those exact segments reproduces
    the original run bit-for-bit, with or without a trace.
    """

    def __init__(self, *args, **kwargs):
        self.segments: List[Tuple[NormStimulus, ...]] = []
        self._pending_stimuli: List[NormStimulus] = []
        super().__init__(*args, **kwargs)

    def schedule_input(self, cell, port, time) -> None:
        super().schedule_input(cell, port, time)
        name = cell.name if isinstance(cell, Cell) else cell
        self._pending_stimuli.append((name, port, float(time)))

    def run(self, *args, **kwargs) -> float:
        self.segments.append(tuple(self._pending_stimuli))
        self._pending_stimuli = []
        return super().run(*args, **kwargs)

    def captured_segments(self) -> Segments:
        """The schedule so far (a trailing un-run batch becomes a final
        segment)."""
        segments = list(self.segments)
        if self._pending_stimuli:
            segments.append(tuple(self._pending_stimuli))
        return tuple(segments)

    def reset(self) -> None:
        super().reset()
        self.segments = []
        self._pending_stimuli = []


# -- recording ---------------------------------------------------------------


class _RecordingSimulator(Simulator):
    """Strict-mode ideal simulator that flattens its run into arrays.

    Each delivered pulse's queue entry is tagged (via the entry's
    sequence number) with the index of the event that emitted it, the
    wire it travelled, and the wire's transit delay; external stimuli
    are tagged with parent -1.  ``run`` drains with a sequence-aware
    loop so every processed event recovers its causal edge.
    """

    def __init__(self, netlist: Netlist):
        self._rec_pending: Dict[int, Tuple[int, int, float]] = {}
        self._rec_times: List[float] = []
        self._rec_ci: List[int] = []
        self._rec_pi: List[int] = []
        self._rec_parent: List[int] = []
        self._rec_wid: List[int] = []
        self._rec_delay: List[float] = []
        self._rec_current = -1
        super().__init__(netlist, strict=True)

    def _deliver_ideal(self, cell, port, time):
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        push = self.queue.push
        pending = self._rec_pending
        src = self._rec_current
        for dst_idx, dst_port_idx, delay, wid in routes:
            entry = push(time + delay, dst_idx, dst_port_idx)
            pending[entry[1]] = (src, wid, delay)

    def schedule_input(self, cell, port, time) -> None:
        seq_before = self.queue._seq
        super().schedule_input(cell, port, time)
        if self.queue._seq != seq_before:
            self._rec_pending[seq_before] = (-1, -1, 0.0)

    def run(self, until=None, max_events: int = 10_000_000,
            deadline_s=None) -> float:
        if until is not None or deadline_s is not None:
            raise ConfigurationError(
                "trace recording supports only full-drain runs "
                "(no until= horizon, no deadline_s=)"
            )
        self._refresh()
        queue = self.queue
        cells = self._cells_view
        ports = self._ports_view
        pop = queue.pop
        pending = self._rec_pending
        times, cis, pis = self._rec_times, self._rec_ci, self._rec_pi
        parents, wids = self._rec_parent, self._rec_wid
        delays = self._rec_delay
        processed = 0
        try:
            while queue:
                if processed >= max_events:
                    raise ConfigurationError(
                        f"simulation exceeded {max_events} events; "
                        "suspected feedback oscillation in the netlist"
                    )
                time, seq, ci, pi = pop()
                src, wid, delay = pending.pop(seq)
                self._rec_current = len(times)
                times.append(time)
                cis.append(ci)
                pis.append(pi)
                parents.append(src)
                wids.append(wid)
                delays.append(delay)
                self.now = time
                cells[ci].receive(ports[ci][pi], time, self)
                processed += 1
        finally:
            self.delivered_pulses += processed
            self.events_processed += processed
        return self.now


def record_trace(netlist: Netlist, segments,
                 max_events: int = 10_000_000) -> "CompiledTrace":
    """One strict-mode ideal pass over ``segments``, flattened.

    Raises :class:`~repro.errors.ConstraintViolationError` if the
    schedule violates a timing constraint even under ideal physics, or
    :class:`~repro.errors.ConfigurationError` on a runaway event count
    -- either way the schedule is untraceable and callers fall back to
    the event engine (which reproduces the same exception for strict
    callers).  The netlist's cell state is left dirty; replay and
    fallback paths reset it.
    """
    segments = normalize_segments(segments)
    recorder = _RecordingSimulator(netlist)
    recorder.reset()
    seg_events: List[int] = []
    for seg in segments:
        before = recorder.events_processed
        for name, port, time in seg:
            recorder.schedule_input(name, port, time)
        recorder.run(max_events=max_events)
        seg_events.append(recorder.events_processed - before)
    return CompiledTrace(
        netlist_fp=netlist_fingerprint(netlist),
        schedule_fp=schedule_fingerprint(segments),
        segments=segments,
        cell_names=tuple(c.name for c in netlist.cells.values()),
        cell_types=tuple(type(c).__name__
                         for c in netlist.cells.values()),
        times=np.asarray(recorder._rec_times, dtype=np.float64),
        ci=np.asarray(recorder._rec_ci, dtype=np.int32),
        pi=np.asarray(recorder._rec_pi, dtype=np.int32),
        parent=np.asarray(recorder._rec_parent, dtype=np.int64),
        wid=np.asarray(recorder._rec_wid, dtype=np.int32),
        wire_delay=np.asarray(recorder._rec_delay, dtype=np.float64),
        seg_events=np.asarray(seg_events, dtype=np.int64),
        final_time_ps=recorder.now,
        margins=dict(recorder.margins),
    )


# -- the compiled artifact ---------------------------------------------------


class CompiledTrace:
    """Immutable flattened recording of one (netlist, schedule) run.

    Pure data -- numpy arrays plus identity metadata -- with an atomic
    npz round trip, so instances are cheap to content-address in the
    shared plan cache.  All replay machinery (levels, constraint
    records, certification) lives in the engine-side binding, rebuilt on
    load.
    """

    __slots__ = (
        "netlist_fp", "schedule_fp", "fingerprint", "segments",
        "cell_names", "cell_types", "times", "ci", "pi", "parent",
        "wid", "wire_delay", "seg_events", "final_time_ps", "margins",
    )

    def __init__(self, *, netlist_fp, schedule_fp, segments, cell_names,
                 cell_types, times, ci, pi, parent, wid, wire_delay,
                 seg_events, final_time_ps, margins):
        self.netlist_fp = netlist_fp
        self.schedule_fp = schedule_fp
        self.fingerprint = trace_fingerprint(netlist_fp, schedule_fp)
        self.segments = segments
        self.cell_names = cell_names
        self.cell_types = cell_types
        self.times = times
        self.ci = ci
        self.pi = pi
        self.parent = parent
        self.wid = wid
        self.wire_delay = wire_delay
        self.seg_events = seg_events
        self.final_time_ps = final_time_ps
        self.margins = margins

    @property
    def n_events(self) -> int:
        return int(self.times.shape[0])

    def save(self, path: Union[str, Path]) -> None:
        """Atomic write (tmp + rename), safe under concurrent readers."""
        path = Path(path)
        meta = json.dumps({
            "schema": TRACE_SCHEMA_VERSION,
            "netlist_fp": self.netlist_fp,
            "schedule_fp": self.schedule_fp,
            "segments": [[list(stim) for stim in seg]
                         for seg in self.segments],
            "cell_names": list(self.cell_names),
            "cell_types": list(self.cell_types),
            "final_time_ps": self.final_time_ps,
            "margins": [[ct, pa, pb, req, act]
                        for (ct, pa, pb), (req, act)
                        in self.margins.items()],
        })
        payload = {
            "meta": np.array(meta),
            "times": self.times,
            "ci": self.ci,
            "pi": self.pi,
            "parent": self.parent,
            "wid": self.wid,
            "wire_delay": self.wire_delay,
            "seg_events": self.seg_events,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **payload)
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(buffer.getvalue())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompiledTrace":
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                if meta.get("schema") != TRACE_SCHEMA_VERSION:
                    raise ConfigurationError(
                        f"compiled trace at {path} has schema "
                        f"{meta.get('schema')!r}; this build expects "
                        f"{TRACE_SCHEMA_VERSION}"
                    )
                return cls(
                    netlist_fp=meta["netlist_fp"],
                    schedule_fp=meta["schedule_fp"],
                    segments=tuple(
                        tuple((name, port, float(time))
                              for name, port, time in seg)
                        for seg in meta["segments"]
                    ),
                    cell_names=tuple(meta["cell_names"]),
                    cell_types=tuple(meta["cell_types"]),
                    times=np.asarray(data["times"], dtype=np.float64),
                    ci=np.asarray(data["ci"], dtype=np.int32),
                    pi=np.asarray(data["pi"], dtype=np.int32),
                    parent=np.asarray(data["parent"], dtype=np.int64),
                    wid=np.asarray(data["wid"], dtype=np.int32),
                    wire_delay=np.asarray(data["wire_delay"],
                                          dtype=np.float64),
                    seg_events=np.asarray(data["seg_events"],
                                          dtype=np.int64),
                    final_time_ps=float(meta["final_time_ps"]),
                    margins={(ct, pa, pb): (req, act)
                             for ct, pa, pb, req, act
                             in meta["margins"]},
                )
        except ConfigurationError:
            raise
        except (OSError, ValueError, KeyError, TypeError, EOFError,
                zipfile.BadZipFile, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot load compiled trace from {path}: {exc}"
            ) from exc


# -- replay ------------------------------------------------------------------


class _Divergence(Exception):
    """Internal control flow: this run cannot be served from the trace."""


class _BoundTrace:
    """A :class:`CompiledTrace` bound to a live netlist for replay.

    Binding resolves everything replay needs into array form once:
    topological levels with parent gathers, per-cell and per-wire event
    groups in recorded order, the offline-reconstructed constraint-check
    records, probe write-back groups, and the emit-constant
    certification verdict.
    """

    def __init__(self, trace: CompiledTrace, netlist: Netlist):
        self.trace = trace
        self.netlist = netlist
        fanout = netlist.elaborate()
        self.fanout = fanout
        names = tuple(c.name for c in fanout.cell_list)
        types = tuple(type(c).__name__ for c in fanout.cell_list)
        if names != trace.cell_names or types != trace.cell_types:
            raise ConfigurationError(
                "compiled trace does not match the netlist's cell list; "
                "record against a structurally identical netlist"
            )
        n = trace.n_events
        ci, parent = trace.ci, trace.parent
        self.delay_const = np.array(
            [float(c.DELAY_PS) for c in fanout.cell_list],
            dtype=np.float64,
        )
        # Topological levels: recorded order is causal (a parent's index
        # precedes its children's), so one forward pass suffices.
        level = np.zeros(n, dtype=np.int64)
        par_list = parent.tolist()
        lv = level.tolist()
        for i, p in enumerate(par_list):
            if p >= 0:
                lv[i] = lv[p] + 1
        level = np.asarray(lv, dtype=np.int64)
        order = np.argsort(level, kind="stable")
        self._levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        if n:
            lv_sorted = level[order]
            starts = np.flatnonzero(
                np.r_[True, lv_sorted[1:] != lv_sorted[:-1]]
            )
            bounds = list(starts) + [n]
            for s, e in zip(bounds, bounds[1:]):
                if lv_sorted[s] == 0:
                    continue
                idx = order[s:e]
                pidx = parent[idx]
                self._levels.append(
                    (idx, pidx, self.delay_const[ci[pidx]])
                )
        # Per-cell arrival groups (recorded order), flattened for one
        # vectorized strict-monotonicity check per replay.
        oc = np.argsort(ci, kind="stable")
        self._cell_order = oc
        self._cell_same = (ci[oc][1:] == ci[oc][:-1]) if n else \
            np.zeros(0, dtype=bool)
        # Per-wire pulse groups (recorded order == emission order): the
        # k-th pulse on a wire consumes that wire's k-th decision draw.
        self._wire_groups: List[Tuple[int, np.ndarray]] = []
        routed = np.flatnonzero(trace.wid >= 0)
        if routed.size:
            ow = routed[np.argsort(trace.wid[routed], kind="stable")]
            ws = trace.wid[ow]
            starts = np.flatnonzero(np.r_[True, ws[1:] != ws[:-1]])
            bounds = list(starts) + [int(ow.size)]
            for s, e in zip(bounds, bounds[1:]):
                self._wire_groups.append((int(ws[s]), ow[s:e]))
        # Constraint-check records: replicate Cell.receive's per-arrival
        # bookkeeping offline over the recorded order.
        self._build_checks()
        # Probe write-back groups and per-cell switch counts.
        self._probe_groups = []
        counts = np.bincount(ci, minlength=len(fanout.cell_list)) if n \
            else np.zeros(len(fanout.cell_list), dtype=np.int64)
        self._switch_counts = counts
        ci_list = ci.tolist()
        by_cell: Dict[int, List[int]] = {}
        for i, c in enumerate(ci_list):
            by_cell.setdefault(c, []).append(i)
        for cidx, cell in enumerate(fanout.cell_list):
            if isinstance(cell, Probe) and cidx in by_cell:
                self._probe_groups.append(
                    (cidx, np.asarray(by_cell[cidx], dtype=np.int64))
                )
        self._ci_list = ci_list
        self._port_names = tuple(
            fanout.input_ports[ci_list[i]][trace.pi[i]]
            for i in range(n)
        )
        self.certified = self._certify()
        self._transit_cache: "OrderedDict" = OrderedDict()

    def _build_checks(self) -> None:
        trace, fanout = self.trace, self.fanout
        chk_evt: List[int] = []
        chk_prior: List[int] = []
        chk_req: List[float] = []
        chk_fam: List[int] = []
        fam_keys: List[Tuple[str, str, str]] = []
        fam_req: List[float] = []
        fam_index: Dict[Tuple[str, str, str], int] = {}
        last: List[Dict[str, int]] = [{} for _ in fanout.cell_list]
        ci_list = trace.ci.tolist()
        pi_list = trace.pi.tolist()
        cells = fanout.cell_list
        input_ports = fanout.input_ports
        for i in range(trace.n_events):
            c = ci_list[i]
            port = input_ports[c][pi_list[i]]
            cell = cells[c]
            rules = cell.CONSTRAINTS_BY_PORT.get(port)
            arrivals = last[c]
            if rules is not None:
                cell_type = type(cell).__name__
                for port_a, min_lag in rules:
                    j = arrivals.get(port_a)
                    if j is None:
                        continue
                    key = (cell_type, port_a, port)
                    fi = fam_index.get(key)
                    if fi is None:
                        fi = fam_index[key] = len(fam_keys)
                        fam_keys.append(key)
                        fam_req.append(min_lag)
                    chk_evt.append(i)
                    chk_prior.append(j)
                    chk_req.append(min_lag)
                    chk_fam.append(fi)
            arrivals[port] = i
        self._chk_evt = np.asarray(chk_evt, dtype=np.int64)
        self._chk_prior = np.asarray(chk_prior, dtype=np.int64)
        self._chk_req = np.asarray(chk_req, dtype=np.float64)
        self._chk_fam = np.asarray(chk_fam, dtype=np.int64)
        self._fam_keys = fam_keys
        self._fam_req = fam_req

    # -- re-timing ---------------------------------------------------------

    def _retime(self, transit: np.ndarray) -> np.ndarray:
        """Propagate stimulus times through the causal levels.

        Per hop the association is exactly the engine's:
        ``emit = fl(t_parent + DELAY_PS)`` then
        ``t = fl(emit + transit)`` -- two rounded adds, no re-ordering.
        """
        t = self.trace.times.copy()
        for idx, pidx, pdelay in self._levels:
            t[idx] = (t[pidx] + pdelay) + transit[idx]
        return t

    def _certify(self) -> bool:
        """Bitwise check that re-timing from the library's emit constants
        reproduces the recording exactly (see module docstring)."""
        if self.trace.n_events == 0:
            return True
        return bool(np.array_equal(self._retime(self.trace.wire_delay),
                                   self.trace.times))

    def _jitter_transit(self, seed, sigma: float) -> np.ndarray:
        """Per-event jittered wire transit, from the exact per-wire
        streams of ``jitter_mode="wire"`` (cached per (seed, sigma))."""
        key = (repr(seed), float(sigma))
        cached = self._transit_cache.get(key)
        if cached is not None:
            self._transit_cache.move_to_end(key)
            return cached
        g = np.zeros(self.trace.n_events, dtype=np.float64)
        for wid, grp in self._wire_groups:
            gauss = wire_jitter_rng(seed, self.fanout.wire_key(wid)).gauss
            g[grp] = [gauss(0.0, sigma) for _ in range(grp.size)]
        transit = self.trace.wire_delay + g
        np.maximum(transit, 0.0, out=transit)
        self._transit_cache[key] = transit
        while len(self._transit_cache) > 8:
            self._transit_cache.popitem(last=False)
        return transit

    def replay_times(self, jitter_ps: float, seed) -> np.ndarray:
        """Event times for this variation, or raise :class:`_Divergence`."""
        if jitter_ps <= 0.0:
            return self.trace.times
        if not self.certified:
            raise _Divergence(
                "emission pattern not certified for re-timing"
            )
        t = self._retime(self._jitter_transit(seed, jitter_ps))
        tt = t[self._cell_order]
        same = self._cell_same
        if same.size and np.any(tt[1:][same] <= tt[:-1][same]):
            raise _Divergence("arrival ordering flipped within a cell")
        return t

    # -- outcome materialisation -------------------------------------------

    def evaluate(self, t: np.ndarray):
        """Margins and violations of the re-timed run (vectorized
        gather over the recorded constraint checks; value-identical to
        the engine's per-arrival fold)."""
        if not self._chk_evt.size:
            return {}, []
        actual = t[self._chk_evt] - t[self._chk_prior]
        acc = np.full(len(self._fam_keys), np.inf)
        np.minimum.at(acc, self._chk_fam, actual)
        margins = {
            self._fam_keys[f]: (self._fam_req[f], float(acc[f]))
            for f in range(len(self._fam_keys))
            if np.isfinite(acc[f])
        }
        bad = np.flatnonzero((actual + INTERVAL_EPSILON) < self._chk_req)
        violations: List[Violation] = []
        if bad.size:
            order = bad[np.argsort(t[self._chk_evt[bad]], kind="stable")]
            names = self.trace.cell_names
            ci_list = self._ci_list
            for k in order.tolist():
                cell_type, port_a, port_b = \
                    self._fam_keys[self._chk_fam[k]]
                evt = int(self._chk_evt[k])
                violations.append(Violation(
                    component=names[ci_list[evt]],
                    cell_type=cell_type,
                    port_a=port_a,
                    port_b=port_b,
                    required=float(self._chk_req[k]),
                    actual=float(actual[k]),
                    time=float(t[evt]),
                ))
        return margins, violations

    def fault_precheck(self, faults: FaultModel) -> bool:
        """True iff this fault model injects *nothing* over the recorded
        pulses -- the only case a faulted run can be served from the
        trace (stuck cells mark the log at bind time, and any decision
        draw that triggers changes the event set).

        Consumes the same per-wire decision streams in the same pulse
        order as the live engine, so the verdict is exact.
        """
        bound = faults.bind(self.fanout)
        if bound.stuck:
            return False
        if not bound.wire_specs:
            return True
        for wid, grp in self._wire_groups:
            specs = bound.wire_specs.get(wid)
            if not specs:
                continue
            probabilities = [s.probability for s in specs
                             if s.probability > 0.0]
            if not probabilities:
                continue
            random_ = fault_site_rng(
                faults.seed, self.fanout.wire_key(wid)
            ).random
            for _ in range(int(grp.size)):
                for p in probabilities:
                    if random_() < p:
                        return False
        return True

    def apply_to_netlist(self, t: np.ndarray, target: Netlist) -> None:
        """Write the replayed observations into ``target``'s cells.

        Restores what downstream consumers read -- probe capture lists
        and per-cell switch counts (the dynamic power model's input).
        Per-port arrival scratch state is *not* reconstructed; replayed
        simulators refuse further incremental stepping until reset.
        """
        target.reset_state()
        cells = list(target.cells.values())
        counts = self._switch_counts.tolist()
        for cidx, cell in enumerate(cells):
            cell.switch_count = counts[cidx]
        for cidx, grp in self._probe_groups:
            cells[cidx].times = [float(v) for v in t[grp]]

    def build_pulse_trace(self, t: np.ndarray) -> PulseTrace:
        """A :class:`PulseTrace` of the replayed run, in time order."""
        trace = PulseTrace()
        record = trace.record
        names = self.trace.cell_names
        ci_list = self._ci_list
        ports = self._port_names
        for i in np.argsort(t, kind="stable").tolist():
            record(names[ci_list[i]], ports[i], float(t[i]))
        return trace


# -- the engine --------------------------------------------------------------


@dataclass
class EpisodeResult:
    """Uniform outcome of :meth:`TraceEngine.run_episode`.

    ``mode`` says how the run was served: ``"replay"`` (vectorized, from
    the trace) or ``"fallback"`` (re-executed on the event engine).
    Either way the observable results are bit-identical to a fresh
    :class:`~repro.rsfq.simulator.Simulator` run of the same segments.
    """

    mode: str
    events: int
    final_time_ps: float
    violations: List[Violation] = field(default_factory=list)
    margins: dict = field(default_factory=dict)
    fault_counts: dict = field(default_factory=dict)
    injection_log: tuple = ()
    trace: Optional[PulseTrace] = None


class TraceEngine:
    """Record-once / replay-many executor for one netlist structure.

    Traces are keyed by schedule fingerprint in memory and by
    ``(netlist, schedule)`` fingerprint in the optional ``cache`` (a
    :class:`~repro.ssnn.compile.PlanCache`, under the
    :data:`TRACE_KIND` namespace).  ``stats`` counts records, replays,
    fallbacks and cache traffic for this instance; the process-wide
    :data:`GLOBAL_TRACE_COUNTERS` aggregates across engines.
    """

    def __init__(self, netlist: Netlist, cache=None,
                 counters: Optional[TraceCounters] = None):
        self.netlist = netlist
        self.cache = cache
        self.counters = GLOBAL_TRACE_COUNTERS if counters is None \
            else counters
        self.stats: Dict[str, int] = {
            name: 0 for name in TraceCounters.FIELDS
        }
        self._mem: Dict[str, object] = {}
        self._netlist_fp: Optional[str] = None
        self._fp_version: Optional[int] = None

    def _bump(self, name: str, n: int = 1) -> None:
        self.stats[name] += n
        self.counters.bump(name, n)

    def _fp(self) -> str:
        version = self.netlist.topology_version
        if self._netlist_fp is None or self._fp_version != version:
            self._netlist_fp = netlist_fingerprint(self.netlist)
            self._fp_version = version
            self._mem.clear()
        return self._netlist_fp

    def _bound(self, segments: Segments, max_events: int,
               allow_record: bool) -> Optional[_BoundTrace]:
        sfp = schedule_fingerprint(segments)
        hit = self._mem.get(sfp)
        if hit is _UNTRACEABLE:
            return None
        if hit is not None:
            return hit
        tfp = trace_fingerprint(self._fp(), sfp)
        trace = None
        if self.cache is not None:
            path = self.cache.lookup(tfp, kind=TRACE_KIND)
            if path is not None:
                try:
                    trace = CompiledTrace.load(path)
                    if trace.fingerprint != tfp:
                        raise ConfigurationError("fingerprint mismatch")
                    self._bump("cache_hits")
                except ConfigurationError:
                    trace = None
                    try:
                        path.unlink()
                    except OSError:
                        pass
            if trace is None:
                self._bump("cache_misses")
        if trace is None:
            if not allow_record:
                return None
            try:
                trace = record_trace(self.netlist, segments,
                                     max_events=max_events)
            except (ConstraintViolationError, ConfigurationError):
                self._mem[sfp] = _UNTRACEABLE
                return None
            self._bump("records")
            if self.cache is not None:
                try:
                    trace.save(self.cache.path_for(tfp, kind=TRACE_KIND))
                except OSError:
                    pass
        bound = _BoundTrace(trace, self.netlist)
        self._mem[sfp] = bound
        return bound

    def replay_episode(
        self,
        segments,
        *,
        jitter_ps: float = 0.0,
        seed=None,
        jitter_mode: str = "wire",
        faults: Optional[FaultModel] = None,
        strict: bool = False,
        max_events: int = 10_000_000,
        netlist: Optional[Netlist] = None,
        want_trace: bool = False,
        allow_record: bool = True,
    ) -> Optional[EpisodeResult]:
        """Serve the episode from the trace, or return None (fallback
        needed -- already counted).  ``netlist`` may be a *different*
        instance with the same structure (fingerprint-checked); replayed
        observations are written into it.
        """
        target = self.netlist if netlist is None else netlist
        segments = normalize_segments(segments)
        if target is not self.netlist and \
                netlist_fingerprint(target) != self._fp():
            self._bump("fallbacks")
            return None
        if jitter_ps > 0.0 and jitter_mode != "wire":
            # The legacy global jitter stream is consumed in delivery
            # order; only per-wire streams replay deterministically.
            self._bump("fallbacks")
            return None
        bound = self._bound(segments, max_events, allow_record)
        if bound is None:
            self._bump("fallbacks")
            return None
        if bound.trace.seg_events.size and \
                int(bound.trace.seg_events.max()) > max_events:
            self._bump("fallbacks")
            return None
        try:
            if faults is not None and faults.active and \
                    not bound.fault_precheck(faults):
                raise _Divergence("fault model injects on this run")
            t = bound.replay_times(jitter_ps, seed)
            if jitter_ps > 0.0:
                margins, violations = bound.evaluate(t)
            else:
                margins, violations = dict(bound.trace.margins), []
            if strict and violations:
                # A strict caller must see the engine's exception with
                # its exact message; re-run on the event engine.
                raise _Divergence("strict run would raise")
        except _Divergence:
            self._bump("fallbacks")
            return None
        bound.apply_to_netlist(t, target)
        pulse_trace = bound.build_pulse_trace(t) if want_trace else None
        self._bump("replays")
        n = bound.trace.n_events
        return EpisodeResult(
            mode="replay",
            events=n,
            final_time_ps=float(t[-1]) if jitter_ps <= 0.0 and n
            else (float(t.max()) if n else 0.0),
            violations=violations,
            margins=margins,
            fault_counts={},
            injection_log=(),
            trace=pulse_trace,
        )

    def run_episode(
        self,
        segments,
        *,
        jitter_ps: float = 0.0,
        seed=None,
        jitter_mode: str = "wire",
        faults: Optional[FaultModel] = None,
        strict: bool = False,
        max_events: int = 10_000_000,
        deadline_s: Optional[float] = None,
        queue_backend="heap",
        netlist: Optional[Netlist] = None,
        want_trace: bool = False,
        allow_record: bool = True,
    ) -> EpisodeResult:
        """Replay if possible, else re-execute the exact segments on a
        fresh event-engine :class:`Simulator` (bit-identical by
        determinism: same seeds, same per-wire streams, same
        schedule-then-run interleaving)."""
        segments = normalize_segments(segments)
        episode = self.replay_episode(
            segments, jitter_ps=jitter_ps, seed=seed,
            jitter_mode=jitter_mode, faults=faults, strict=strict,
            max_events=max_events, netlist=netlist,
            want_trace=want_trace, allow_record=allow_record,
        )
        if episode is not None:
            return episode
        target = self.netlist if netlist is None else netlist
        sim = Simulator(
            target,
            strict=strict,
            trace=PulseTrace() if want_trace else None,
            jitter_ps=jitter_ps,
            seed=seed,
            queue_backend=queue_backend,
            jitter_mode=jitter_mode,
            faults=faults,
        )
        sim.reset()
        for seg in segments:
            for name, port, time in seg:
                sim.schedule_input(name, port, time)
            sim.run(max_events=max_events, deadline_s=deadline_s)
        return EpisodeResult(
            mode="fallback",
            events=sim.events_processed,
            final_time_ps=sim.now,
            violations=list(sim.violations),
            margins=dict(sim.margins),
            fault_counts=sim.fault_counts(),
            injection_log=sim.injection_log(),
            trace=sim.trace,
        )


class _Untraceable:
    """Sentinel: recording this schedule raised; always fall back."""

    __slots__ = ()


_UNTRACEABLE = _Untraceable()
