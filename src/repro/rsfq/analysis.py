"""Static timing analysis of RSFQ netlists.

Computes earliest-arrival paths through a netlist (Dijkstra over the wire
graph, each hop costing the source cell's propagation delay plus the wire
delay) and splits the path latency into **cell** time and **wire** time.
This is how the paper's section 6.3A analysis -- "the transmission delay
accounts for about 53% of the total in the 16x16 design, while only about
6% in the 1x1 design" -- is measured from our gate-level chips, rather
than only modelled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rsfq.netlist import Netlist


@dataclass(frozen=True)
class PathTiming:
    """Timing breakdown of one source-to-sink path.

    Attributes:
        total_ps: End-to-end earliest-arrival latency.
        cell_ps: Portion spent switching functional cells.
        wire_ps: Portion spent on transmission (wire delays).
        hops: Cells traversed, in order.
    """

    total_ps: float
    cell_ps: float
    wire_ps: float
    hops: Tuple[str, ...]

    @property
    def wire_fraction(self) -> float:
        """Transmission share of the path latency (section 6.3A metric)."""
        return self.wire_ps / self.total_ps if self.total_ps > 0 else 0.0


def earliest_arrival(
    net: Netlist, source: str, sink: str
) -> Optional[PathTiming]:
    """Earliest-arrival path from ``source`` cell to ``sink`` cell.

    Treats every output port of a cell as firing ``DELAY_PS`` after its
    input (the single-pulse propagation view); wires add their delay.
    Feedback loops are handled naturally by Dijkstra (a pulse never
    benefits from re-entering a cycle).  Returns None when the sink is
    unreachable.
    """
    if source not in net.cells or sink not in net.cells:
        raise ConfigurationError("source/sink must name cells in the netlist")
    # adjacency: cell -> list of (next_cell, wire_delay, is_transmission).
    # Only wires carrying JTL repeaters count as transmission lines; bare
    # intra-cell stubs are attributed to the cells they join.
    adjacency: Dict[str, List[Tuple[str, float, bool]]] = {}
    for wire in net.wires:
        adjacency.setdefault(wire.src, []).append(
            (wire.dst, wire.delay, wire.jtl_count > 0)
        )

    best: Dict[str, float] = {}
    heap = [(0.0, 0.0, 0.0, source, (source,))]
    while heap:
        total, cell_t, wire_t, name, path = heapq.heappop(heap)
        if name in best and best[name] <= total:
            continue
        best[name] = total
        if name == sink:
            return PathTiming(total, cell_t, wire_t, path)
        cell = net.cells[name]
        for nxt, wire_delay, is_line in adjacency.get(name, ()):
            step_cell = cell.DELAY_PS + (0.0 if is_line else wire_delay)
            step_wire = wire_delay if is_line else 0.0
            new_total = total + step_cell + step_wire
            if nxt in best and best[nxt] <= new_total:
                continue
            heapq.heappush(heap, (
                new_total, cell_t + step_cell, wire_t + step_wire,
                nxt, path + (nxt,),
            ))
    return None


def chip_transmission_fraction(chip) -> float:
    """Measured wire share of the input-to-fire path of a gate-level
    SUSHI chip (first data input to the last column NPE's fire probe)."""
    source = chip.inputs[0].name
    sink = chip.col_npes[-1].fire_probe.name
    timing = earliest_arrival(chip.net, source, sink)
    if timing is None:
        raise ConfigurationError("no path from input to fire output")
    return timing.wire_fraction
