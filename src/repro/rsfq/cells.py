"""Cell base class and constraint bookkeeping for RSFQ circuits.

A :class:`Cell` reacts to SFQ pulses on named input ports.  Subclasses define
``INPUTS``, ``OUTPUTS``, per-cell resource figures (Josephson-junction count,
area, delay) and the ``on_pulse`` behaviour.  Timing-constraint checking is
handled here so every cell gets it uniformly: each arrival is checked against
the most recent arrival on the ports named by ``CONSTRAINTS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rsfq.constraints import INTERVAL_EPSILON

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.rsfq.simulator import Simulator


@dataclass(frozen=True)
class Violation:
    """A recorded timing-constraint violation.

    Attributes:
        component: Name of the violating cell.
        cell_type: Cell class name (e.g. ``"NDRO"``).
        port_a: Port whose earlier pulse was too recent.
        port_b: Port the offending pulse arrived on.
        required: Minimum allowed interval in ps.
        actual: Observed interval in ps.
        time: Arrival time of the offending pulse.
    """

    component: str
    cell_type: str
    port_a: str
    port_b: str
    required: float
    actual: float
    time: float

    def __str__(self) -> str:
        return (
            f"{self.cell_type} '{self.component}': pulse on '{self.port_b}' at "
            f"{self.time:.2f} ps lags '{self.port_a}' by {self.actual:.2f} ps "
            f"(minimum {self.required:.2f} ps)"
        )


class Cell:
    """Base class for all RSFQ cells.

    Class attributes:
        INPUTS / OUTPUTS: Port name tuples.
        CONSTRAINTS: Mapping ``(port_a, port_b) -> min_lag_ps``; a pulse on
            ``port_b`` must lag the last pulse on ``port_a`` by at least the
            given interval.
        JJ_COUNT: Josephson junctions in the cell (resource model).
        AREA_UM2: Cell area in square micrometres.
        DELAY_PS: Input-to-output propagation delay.
        STATIC_POWER_NW: Static bias-current power draw in nanowatts.

    Instances use ``__slots__`` (the simulator allocates none of its own
    per-event objects, so per-cell attribute access is the next cost):
    subclasses adding state must declare their own ``__slots__`` tuple
    (an empty one when they add nothing).

    ``CONSTRAINTS_BY_PORT`` is derived automatically per subclass: it
    groups the constraint families by *arriving* port so the hot path
    checks only the rules that can fire for the current pulse instead of
    scanning the whole table (a CB3 has 9 families but at most 3 per
    port).
    """

    __slots__ = ("name", "_last_arrival", "switch_count")

    INPUTS: Tuple[str, ...] = ()
    OUTPUTS: Tuple[str, ...] = ()
    CONSTRAINTS: Mapping[Tuple[str, str], float] = {}
    #: Arriving port -> ((port_a, min_lag), ...); derived, do not set.
    CONSTRAINTS_BY_PORT: Mapping[str, Tuple[Tuple[str, float], ...]] = {}

    JJ_COUNT: int = 0
    AREA_UM2: float = 0.0
    DELAY_PS: float = 0.0
    STATIC_POWER_NW: float = 0.0

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        by_port: Dict[str, list] = {}
        for (port_a, port_b), min_lag in cls.CONSTRAINTS.items():
            by_port.setdefault(port_b, []).append((port_a, min_lag))
        cls.CONSTRAINTS_BY_PORT = {
            port: tuple(rules) for port, rules in by_port.items()
        }

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("cell name must be non-empty")
        self.name = name
        self._last_arrival: Dict[str, float] = {}
        #: Number of pulses processed; used by the dynamic power model.
        self.switch_count = 0

    # -- behaviour -------------------------------------------------------

    def receive(self, port: str, time: float, sim: "Simulator") -> None:
        """Process a pulse arrival: check constraints, then dispatch.

        The constraint loop is inlined (rather than delegated to
        :meth:`_check_rules`) because ``receive`` runs once per event:
        one saved method call per event is a measurable slice of the
        per-event constant factor on gate-level workloads.
        """
        if port not in self.INPUTS:
            raise ConfigurationError(
                f"cell '{self.name}' ({type(self).__name__}) has no input "
                f"port '{port}'; ports are {self.INPUTS}"
            )
        last_arrival = self._last_arrival
        rules = self.CONSTRAINTS_BY_PORT.get(port)
        if rules is not None:
            margins = sim.margins
            cell_type = type(self).__name__
            for port_a, min_lag in rules:
                last = last_arrival.get(port_a)
                if last is None:
                    continue
                actual = time - last
                key = (cell_type, port_a, port)
                current = margins.get(key)
                if current is None or actual < current[1]:
                    margins[key] = (min_lag, actual)
                if actual + INTERVAL_EPSILON < min_lag:
                    sim.report_violation(
                        Violation(
                            component=self.name,
                            cell_type=cell_type,
                            port_a=port_a,
                            port_b=port,
                            required=min_lag,
                            actual=actual,
                            time=time,
                        )
                    )
        last_arrival[port] = time
        self.switch_count += 1
        self.on_pulse(port, time, sim)

    def on_pulse(self, port: str, time: float, sim: "Simulator") -> None:
        """Cell-specific reaction to a pulse; subclasses override."""
        raise NotImplementedError

    def emit(self, port: str, time: float, sim: "Simulator") -> None:
        """Send a pulse out of ``port`` at ``time`` (plus wire delays)."""
        if port not in self.OUTPUTS:
            raise ConfigurationError(
                f"cell '{self.name}' ({type(self).__name__}) has no output "
                f"port '{port}'; ports are {self.OUTPUTS}"
            )
        sim.deliver(self, port, time)

    def reset_state(self) -> None:
        """Return the cell to its power-on state (between experiments)."""
        self._last_arrival.clear()
        self.switch_count = 0

    def flux_trap(self) -> bool:
        """Corrupt the cell's stored flux state (fault injection hook).

        Models a flux quantum trapping in the cell's storage loop: cells
        that hold state (DFF/NDRO stored bit, TFF phase) flip it; cells
        without internal flux storage (JTLs, splitters, confluence
        buffers, probes) have nothing to trap and return False.  Called by
        the :mod:`repro.rsfq.faults` machinery immediately before the
        affected pulse arrival is processed, so corruption is ordered like
        any other event and stays bit-identical between the sequential and
        partitioned engines.

        Returns True when the cell had state to corrupt.
        """
        return False

    # -- constraint checking ---------------------------------------------

    def _check_rules(self, rules, port: str, time: float,
                     sim: "Simulator") -> None:
        """Check the pre-filtered ``(port_a, min_lag)`` rules for ``port``.

        Margin tracking is inlined (same semantics as
        :meth:`~repro.rsfq.simulator.Simulator.record_margin`, which stays
        the public API) -- this method runs once per checked arrival, so
        the method-call overhead is measurable on Fig. 19/20 workloads.
        """
        last_arrival = self._last_arrival
        margins = sim.margins
        cell_type = type(self).__name__
        for port_a, min_lag in rules:
            last = last_arrival.get(port_a)
            if last is None:
                continue
            actual = time - last
            key = (cell_type, port_a, port)
            current = margins.get(key)
            if current is None or actual < current[1]:
                margins[key] = (min_lag, actual)
            if actual + INTERVAL_EPSILON < min_lag:
                sim.report_violation(
                    Violation(
                        component=self.name,
                        cell_type=type(self).__name__,
                        port_a=port_a,
                        port_b=port,
                        required=min_lag,
                        actual=actual,
                        time=time,
                    )
                )

    def _check_constraints(self, port: str, time: float, sim: "Simulator") -> None:
        """Check every constraint family targeting ``port`` (compat shim
        over the per-port table used by the hot path)."""
        rules = self.CONSTRAINTS_BY_PORT.get(port)
        if rules is not None:
            self._check_rules(rules, port, time, sim)

    def last_arrival(self, port: str) -> Optional[float]:
        """Time of the most recent pulse on ``port``, or None."""
        return self._last_arrival.get(port)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} '{self.name}'>"
