"""Cell base class and constraint bookkeeping for RSFQ circuits.

A :class:`Cell` reacts to SFQ pulses on named input ports.  Subclasses define
``INPUTS``, ``OUTPUTS``, per-cell resource figures (Josephson-junction count,
area, delay) and the ``on_pulse`` behaviour.  Timing-constraint checking is
handled here so every cell gets it uniformly: each arrival is checked against
the most recent arrival on the ports named by ``CONSTRAINTS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rsfq.constraints import INTERVAL_EPSILON

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.rsfq.simulator import Simulator


@dataclass(frozen=True)
class Violation:
    """A recorded timing-constraint violation.

    Attributes:
        component: Name of the violating cell.
        cell_type: Cell class name (e.g. ``"NDRO"``).
        port_a: Port whose earlier pulse was too recent.
        port_b: Port the offending pulse arrived on.
        required: Minimum allowed interval in ps.
        actual: Observed interval in ps.
        time: Arrival time of the offending pulse.
    """

    component: str
    cell_type: str
    port_a: str
    port_b: str
    required: float
    actual: float
    time: float

    def __str__(self) -> str:
        return (
            f"{self.cell_type} '{self.component}': pulse on '{self.port_b}' at "
            f"{self.time:.2f} ps lags '{self.port_a}' by {self.actual:.2f} ps "
            f"(minimum {self.required:.2f} ps)"
        )


class Cell:
    """Base class for all RSFQ cells.

    Class attributes:
        INPUTS / OUTPUTS: Port name tuples.
        CONSTRAINTS: Mapping ``(port_a, port_b) -> min_lag_ps``; a pulse on
            ``port_b`` must lag the last pulse on ``port_a`` by at least the
            given interval.
        JJ_COUNT: Josephson junctions in the cell (resource model).
        AREA_UM2: Cell area in square micrometres.
        DELAY_PS: Input-to-output propagation delay.
        STATIC_POWER_NW: Static bias-current power draw in nanowatts.
    """

    INPUTS: Tuple[str, ...] = ()
    OUTPUTS: Tuple[str, ...] = ()
    CONSTRAINTS: Mapping[Tuple[str, str], float] = {}
    JJ_COUNT: int = 0
    AREA_UM2: float = 0.0
    DELAY_PS: float = 0.0
    STATIC_POWER_NW: float = 0.0

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("cell name must be non-empty")
        self.name = name
        self._last_arrival: Dict[str, float] = {}
        #: Number of pulses processed; used by the dynamic power model.
        self.switch_count = 0

    # -- behaviour -------------------------------------------------------

    def receive(self, port: str, time: float, sim: "Simulator") -> None:
        """Process a pulse arrival: check constraints, then dispatch."""
        if port not in self.INPUTS:
            raise ConfigurationError(
                f"cell '{self.name}' ({type(self).__name__}) has no input "
                f"port '{port}'; ports are {self.INPUTS}"
            )
        self._check_constraints(port, time, sim)
        self._last_arrival[port] = time
        self.switch_count += 1
        self.on_pulse(port, time, sim)

    def on_pulse(self, port: str, time: float, sim: "Simulator") -> None:
        """Cell-specific reaction to a pulse; subclasses override."""
        raise NotImplementedError

    def emit(self, port: str, time: float, sim: "Simulator") -> None:
        """Send a pulse out of ``port`` at ``time`` (plus wire delays)."""
        if port not in self.OUTPUTS:
            raise ConfigurationError(
                f"cell '{self.name}' ({type(self).__name__}) has no output "
                f"port '{port}'; ports are {self.OUTPUTS}"
            )
        sim.deliver(self, port, time)

    def reset_state(self) -> None:
        """Return the cell to its power-on state (between experiments)."""
        self._last_arrival.clear()
        self.switch_count = 0

    # -- constraint checking ---------------------------------------------

    def _check_constraints(self, port: str, time: float, sim: "Simulator") -> None:
        for (port_a, port_b), min_lag in self.CONSTRAINTS.items():
            if port_b != port:
                continue
            last = self._last_arrival.get(port_a)
            if last is None:
                continue
            actual = time - last
            sim.record_margin(type(self).__name__, port_a, port_b,
                              min_lag, actual)
            if actual + INTERVAL_EPSILON < min_lag:
                sim.report_violation(
                    Violation(
                        component=self.name,
                        cell_type=type(self).__name__,
                        port_a=port_a,
                        port_b=port,
                        required=min_lag,
                        actual=actual,
                        time=time,
                    )
                )

    def last_arrival(self, port: str) -> Optional[float]:
        """Time of the most recent pulse on ``port``, or None."""
        return self._last_arrival.get(port)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} '{self.name}'>"
