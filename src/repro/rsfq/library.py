"""RSFQ standard-cell library (SIMIT-Nb03-like).

Behavioural models of the cells used by SUSHI (paper section 2.1.2), with
Josephson-junction counts, areas, delays and static-power figures in the
style of the SIMIT-Nb03 library.  The absolute resource values are estimates
calibrated against the paper's published totals (Table 2, Fig. 13); see
``repro.resources.cell_costs`` for the calibration.

Cells:

* :class:`JTL` -- Josephson transmission line segment (wiring).
* :class:`SPL` / :class:`SPL3` -- 1-to-2 / 1-to-3 pulse splitters.
* :class:`CB` / :class:`CB3` -- 2-to-1 / 3-to-1 confluence buffers.
* :class:`DFF` -- destructive-readout storage (release on clk).
* :class:`NDRO` -- non-destructive readout; set by din, cleared by rst,
  emits on clk while set (a configurable switch).
* :class:`TFFL` / :class:`TFFR` -- toggle flip-flops emitting on the 0->1 /
  1->0 flip respectively.
* :class:`DCSFQ` / :class:`SFQDC` -- IO converters between DC levels and SFQ
  pulses (modelled as delays with resource cost).
* :class:`Probe` -- zero-cost measurement sink recording pulse times.
"""

from __future__ import annotations

from typing import List

from repro.rsfq import constraints as K
from repro.rsfq.cells import Cell


class JTL(Cell):
    """Josephson transmission line segment: a powered wire repeater."""

    __slots__ = ()

    INPUTS = ("din",)
    OUTPUTS = ("dout",)
    CONSTRAINTS = {("din", "din"): K.MIN_PULSE_INTERVAL}
    JJ_COUNT = 2
    AREA_UM2 = 1540.0
    DELAY_PS = 3.4
    STATIC_POWER_NW = 77.0

    def on_pulse(self, port, time, sim):
        # Hot path: "dout" is statically valid, skip emit()'s validation.
        sim.deliver(self, "dout", time + self.DELAY_PS)


class SPL(Cell):
    """1-to-2 splitter: every input pulse is duplicated on both outputs."""

    __slots__ = ()

    INPUTS = ("din",)
    OUTPUTS = ("doutA", "doutB")
    CONSTRAINTS = {("din", "din"): K.MIN_PULSE_INTERVAL}
    JJ_COUNT = 3
    AREA_UM2 = 2310.0
    DELAY_PS = 5.1
    STATIC_POWER_NW = 116.0

    def on_pulse(self, port, time, sim):
        t = time + self.DELAY_PS
        sim.deliver(self, "doutA", t)
        sim.deliver(self, "doutB", t)


class SPL3(Cell):
    """1-to-3 splitter (a fused pair of SPLs)."""

    __slots__ = ()

    INPUTS = ("din",)
    OUTPUTS = ("doutA", "doutB", "doutC")
    CONSTRAINTS = {("din", "din"): K.MIN_PULSE_INTERVAL}
    JJ_COUNT = 5
    AREA_UM2 = 3850.0
    DELAY_PS = 7.6
    STATIC_POWER_NW = 193.0

    def on_pulse(self, port, time, sim):
        t = time + self.DELAY_PS
        sim.deliver(self, "doutA", t)
        sim.deliver(self, "doutB", t)
        sim.deliver(self, "doutC", t)


class CB(Cell):
    """2-to-1 confluence buffer: pulses on either input appear on dout."""

    __slots__ = ()

    INPUTS = ("dinA", "dinB")
    OUTPUTS = ("dout",)
    CONSTRAINTS = {
        ("dinA", "dinA"): K.MIN_PULSE_INTERVAL,
        ("dinB", "dinB"): K.MIN_PULSE_INTERVAL,
        ("dinA", "dinB"): K.CB_CROSS_INTERVAL,
        ("dinB", "dinA"): K.CB_CROSS_INTERVAL,
    }
    JJ_COUNT = 7
    AREA_UM2 = 3080.0
    DELAY_PS = 5.6
    STATIC_POWER_NW = 154.0

    def on_pulse(self, port, time, sim):
        sim.deliver(self, "dout", time + self.DELAY_PS)


class CB3(Cell):
    """3-to-1 confluence buffer (a fused pair of CBs)."""

    __slots__ = ()

    INPUTS = ("dinA", "dinB", "dinC")
    OUTPUTS = ("dout",)
    CONSTRAINTS = {
        ("dinA", "dinA"): K.MIN_PULSE_INTERVAL,
        ("dinB", "dinB"): K.MIN_PULSE_INTERVAL,
        ("dinC", "dinC"): K.MIN_PULSE_INTERVAL,
        ("dinA", "dinB"): K.CB_CROSS_INTERVAL,
        ("dinB", "dinA"): K.CB_CROSS_INTERVAL,
        ("dinA", "dinC"): K.CB_CROSS_INTERVAL,
        ("dinC", "dinA"): K.CB_CROSS_INTERVAL,
        ("dinB", "dinC"): K.CB_CROSS_INTERVAL,
        ("dinC", "dinB"): K.CB_CROSS_INTERVAL,
    }
    JJ_COUNT = 11
    AREA_UM2 = 4930.0
    DELAY_PS = 8.4
    STATIC_POWER_NW = 246.0

    def on_pulse(self, port, time, sim):
        sim.deliver(self, "dout", time + self.DELAY_PS)


class DFF(Cell):
    """D flip-flop: stores one pulse on din, releases it on clk."""

    __slots__ = ("stored",)

    INPUTS = ("din", "clk")
    OUTPUTS = ("dout",)
    CONSTRAINTS = {
        ("din", "din"): K.MIN_PULSE_INTERVAL,
        ("din", "clk"): K.DFF_DIN_TO_CLK,
        ("clk", "clk"): K.MIN_PULSE_INTERVAL,
    }
    JJ_COUNT = 6
    AREA_UM2 = 3700.0
    DELAY_PS = 6.3
    STATIC_POWER_NW = 185.0

    def __init__(self, name: str):
        super().__init__(name)
        self.stored = False

    def on_pulse(self, port, time, sim):
        if port == "din":
            self.stored = True
        elif port == "clk" and self.stored:
            self.stored = False
            self.emit("dout", time + self.DELAY_PS, sim)

    def reset_state(self):
        super().reset_state()
        self.stored = False

    def flux_trap(self):
        """A trapped flux quantum toggles the storage loop."""
        self.stored = not self.stored
        return True


class NDRO(Cell):
    """Non-destructive readout: a flux-stored configurable switch.

    ``din`` sets the internal state, ``rst`` clears it, and each ``clk``
    pulse is forwarded to ``dout`` while the state is set (the read does not
    destroy the state).  SUSHI uses NDROs as the set0/set1 gates of the state
    controller and as the crosspoint enable switches of the mesh network.
    """

    __slots__ = ("stored",)

    INPUTS = ("din", "rst", "clk")
    OUTPUTS = ("dout",)
    CONSTRAINTS = {
        ("din", "rst"): K.NDRO_DIN_RST_SEPARATION,
        ("rst", "din"): K.NDRO_DIN_RST_SEPARATION,
        ("din", "clk"): K.NDRO_DIN_TO_CLK,
        ("rst", "clk"): K.NDRO_RST_TO_CLK,
        ("clk", "clk"): K.NDRO_CLK_TO_CLK,
    }
    JJ_COUNT = 13
    AREA_UM2 = 6160.0
    DELAY_PS = 7.2
    STATIC_POWER_NW = 339.0

    def __init__(self, name: str):
        super().__init__(name)
        self.stored = False

    def on_pulse(self, port, time, sim):
        if port == "din":
            self.stored = True
        elif port == "rst":
            self.stored = False
        elif port == "clk" and self.stored:
            self.emit("dout", time + self.DELAY_PS, sim)

    def reset_state(self):
        super().reset_state()
        self.stored = False

    def flux_trap(self):
        """A trapped flux quantum toggles the NDRO storage loop."""
        self.stored = not self.stored
        return True


class _TFFBase(Cell):
    """Shared behaviour of TFFL/TFFR: toggle on every din pulse."""

    __slots__ = ("state",)

    INPUTS = ("din",)
    OUTPUTS = ("dout",)
    CONSTRAINTS = {("din", "din"): K.TFF_MIN_INTERVAL}
    JJ_COUNT = 10
    AREA_UM2 = 4620.0
    DELAY_PS = 6.9
    STATIC_POWER_NW = 246.0
    #: Emit when the state flips *to* this value.
    EMIT_ON_STATE = True

    def __init__(self, name: str):
        super().__init__(name)
        self.state = False

    def on_pulse(self, port, time, sim):
        self.state = not self.state
        if self.state == self.EMIT_ON_STATE:
            self.emit("dout", time + self.DELAY_PS, sim)

    def reset_state(self):
        super().reset_state()
        self.state = False

    def flux_trap(self):
        """A trapped flux quantum flips the TFF phase."""
        self.state = not self.state
        return True


class TFFL(_TFFBase):
    """Toggle flip-flop emitting a pulse on the 0 -> 1 flip."""

    __slots__ = ()

    EMIT_ON_STATE = True


class TFFR(_TFFBase):
    """Toggle flip-flop emitting a pulse on the 1 -> 0 flip."""

    __slots__ = ()

    EMIT_ON_STATE = False


class DCSFQ(Cell):
    """DC-to-SFQ input converter: one pulse per input edge (pass-through)."""

    __slots__ = ()

    INPUTS = ("din",)
    OUTPUTS = ("dout",)
    CONSTRAINTS = {("din", "din"): K.MIN_PULSE_INTERVAL}
    JJ_COUNT = 8
    AREA_UM2 = 4010.0
    DELAY_PS = 5.8
    STATIC_POWER_NW = 200.0

    def on_pulse(self, port, time, sim):
        self.emit("dout", time + self.DELAY_PS, sim)


class SFQDC(Cell):
    """SFQ-to-DC output amplifier stack driving room-temperature equipment.

    Output drivers are by far the largest IO cells in RSFQ designs: they
    stack amplifying junctions to produce an oscilloscope-visible level
    toggle per pulse (paper Fig. 14 / Fig. 16).
    """

    __slots__ = ()

    INPUTS = ("din",)
    OUTPUTS = ("dout",)
    CONSTRAINTS = {("din", "din"): K.MIN_PULSE_INTERVAL}
    JJ_COUNT = 52
    AREA_UM2 = 26400.0
    DELAY_PS = 11.4
    STATIC_POWER_NW = 1480.0

    def on_pulse(self, port, time, sim):
        self.emit("dout", time + self.DELAY_PS, sim)


class Probe(Cell):
    """Measurement sink: records pulse arrival times (no hardware cost)."""

    __slots__ = ("times",)

    INPUTS = ("din",)
    OUTPUTS = ()
    CONSTRAINTS = {}
    JJ_COUNT = 0
    AREA_UM2 = 0.0
    DELAY_PS = 0.0
    STATIC_POWER_NW = 0.0

    def __init__(self, name: str):
        super().__init__(name)
        self.times: List[float] = []

    def on_pulse(self, port, time, sim):
        self.times.append(time)

    def reset_state(self):
        super().reset_state()
        self.times = []


#: All instantiable cell classes, for library-wide tests and accounting.
ALL_CELLS = (JTL, SPL, SPL3, CB, CB3, DFF, NDRO, TFFL, TFFR, DCSFQ, SFQDC, Probe)
