"""Netlist serialisation: JSON round-trip and Graphviz DOT export.

Lets designs built programmatically (SCs, NPEs, whole chips) be saved,
inspected, diffed and reloaded -- the interchange role that cell-library
design flows (the paper's VCS/Verdi flow) play for RTL.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import ConfigurationError
from repro.rsfq import library, logic
from repro.rsfq.netlist import Netlist

#: name -> class registry of every instantiable cell type.
CELL_REGISTRY: Dict[str, type] = {
    cls.__name__: cls for cls in library.ALL_CELLS
}
CELL_REGISTRY.update({cls.__name__: cls for cls in logic.CLOCKED_GATES})


def to_dict(net: Netlist) -> dict:
    """Structured description of a netlist (cells, wires, totals)."""
    return {
        "name": net.name,
        "cells": [
            {"name": cell.name, "type": type(cell).__name__}
            for cell in net.cells.values()
        ],
        "wires": [
            {
                "src": wire.src, "src_port": wire.src_port,
                "dst": wire.dst, "dst_port": wire.dst_port,
                "delay": wire.delay, "jtl_count": wire.jtl_count,
            }
            for wire in net.wires
        ],
        "totals": {
            "cells": len(net),
            "wires": len(net.wires),
            "logic_jj": net.logic_jj_count(),
            "wiring_jj": net.wiring_jj_count(),
        },
    }


def to_json(net: Netlist, indent: int = 2) -> str:
    """JSON form of :func:`to_dict`."""
    return json.dumps(to_dict(net), indent=indent)


def from_dict(payload: dict) -> Netlist:
    """Rebuild a netlist from :func:`to_dict` output.

    Only structural state is restored (cell types and wiring); runtime
    flux state is power-on fresh, like a fabricated chip after cooldown.
    """
    try:
        net = Netlist(payload["name"])
        for entry in payload["cells"]:
            cell_type = entry["type"]
            if cell_type not in CELL_REGISTRY:
                raise ConfigurationError(
                    f"unknown cell type '{cell_type}'"
                )
            net.add(CELL_REGISTRY[cell_type](entry["name"]))
        for wire in payload["wires"]:
            net.connect(
                wire["src"], wire["src_port"],
                wire["dst"], wire["dst_port"],
                delay=wire["delay"], jtl_count=wire["jtl_count"],
            )
    except KeyError as missing:
        raise ConfigurationError(f"malformed netlist payload: {missing}")
    return net


def from_json(text: str) -> Netlist:
    """Rebuild a netlist from its JSON form."""
    return from_dict(json.loads(text))


def to_dot(net: Netlist) -> str:
    """Graphviz DOT rendering (cells as nodes labelled with type)."""
    lines = [f'digraph "{net.name}" {{', "  rankdir=LR;"]
    for cell in net.cells.values():
        shape = "box" if type(cell).__name__ == "Probe" else "ellipse"
        lines.append(
            f'  "{cell.name}" [label="{cell.name}\\n'
            f'{type(cell).__name__}", shape={shape}];'
        )
    for wire in net.wires:
        label = f"{wire.delay:g}ps"
        if wire.jtl_count:
            label += f" ({wire.jtl_count} JTL)"
        lines.append(
            f'  "{wire.src}" -> "{wire.dst}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)
