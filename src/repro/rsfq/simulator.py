"""Discrete-event simulation engine for RSFQ netlists."""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.errors import ConfigurationError, ConstraintViolationError
from repro.rsfq.cells import Cell, Violation
from repro.rsfq.events import EventQueue
from repro.rsfq.netlist import Netlist
from repro.rsfq.waveform import PulseTrace


class Simulator:
    """Event-driven simulator over a :class:`~repro.rsfq.netlist.Netlist`.

    Args:
        netlist: The circuit to simulate.
        strict: When True, a timing-constraint violation raises
            :class:`~repro.errors.ConstraintViolationError`; otherwise
            violations are recorded in :attr:`violations`.
        trace: Optional :class:`~repro.rsfq.waveform.PulseTrace` recording
            every pulse arrival (for waveform rendering).
        jitter_ps: Standard deviation of Gaussian wire-delay jitter.  Zero
            for ideal simulation; non-zero models fabrication/thermal
            variation of the physical chip (used as the "measured chip" side
            of the Fig. 16 comparison).
        seed: Seed for the jitter random stream (deterministic runs).
    """

    def __init__(
        self,
        netlist: Netlist,
        strict: bool = False,
        trace: Optional[PulseTrace] = None,
        jitter_ps: float = 0.0,
        seed: Optional[int] = None,
    ):
        self.netlist = netlist
        self.strict = strict
        self.trace = trace
        self.jitter_ps = float(jitter_ps)
        self._rng = random.Random(seed)
        self.queue = EventQueue()
        self.now = 0.0
        self.violations: List[Violation] = []
        #: Total pulses delivered (event count) -- activity metric.
        self.delivered_pulses = 0
        #: Minimum observed interval per constraint family:
        #: (cell_type, port_a, port_b) -> (required, tightest_actual).
        self.margins: dict = {}

    # -- scheduling --------------------------------------------------------

    def schedule_input(
        self, cell: Union[Cell, str], port: str, time: float
    ) -> None:
        """Inject an external pulse into ``cell.port`` at ``time`` (ps)."""
        cell = self._resolve(cell)
        if port not in cell.INPUTS:
            raise ConfigurationError(
                f"cell '{cell.name}' has no input port '{port}'"
            )
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule input at {time} ps: simulation time is "
                f"already {self.now} ps"
            )
        self.queue.push(time, cell.name, port)

    def deliver(self, cell: Cell, port: str, time: float) -> None:
        """Propagate an output pulse along the port's wire (called by cells)."""
        for wire in self.netlist.fanout(cell, port):
            delay = wire.delay
            if self.jitter_ps > 0.0:
                delay = max(0.0, delay + self._rng.gauss(0.0, self.jitter_ps))
            self.queue.push(time + delay, wire.dst, wire.dst_port)

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the final simulation time.  ``max_events`` guards against
        runaway feedback loops in malformed circuits.
        """
        processed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time > until:
                break
            event = self.queue.pop()
            self.now = event.time
            cell = self.netlist.cells[event.component]
            if self.trace is not None:
                self.trace.record(event.component, event.port, event.time)
            cell.receive(event.port, event.time, self)
            self.delivered_pulses += 1
            processed += 1
            if processed > max_events:
                raise ConfigurationError(
                    f"simulation exceeded {max_events} events; suspected "
                    "feedback oscillation in the netlist"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def report_violation(self, violation: Violation) -> None:
        """Record (or raise, in strict mode) a timing violation."""
        self.violations.append(violation)
        if self.strict:
            raise ConstraintViolationError(str(violation))

    def record_margin(self, cell_type: str, port_a: str, port_b: str,
                      required: float, actual: float) -> None:
        """Track the tightest observed interval per constraint family
        (called by cells on every checked arrival)."""
        key = (cell_type, port_a, port_b)
        current = self.margins.get(key)
        if current is None or actual < current[1]:
            self.margins[key] = (required, actual)

    def margin_report(self):
        """Slack per constraint family, tightest first.

        Returns a list of dicts with the constraint identity, the required
        minimum interval, the tightest observed interval, and the slack
        (observed - required; negative = violated).  This is the timing
        sign-off view a designer reads before tape-out.
        """
        rows = []
        for (cell_type, port_a, port_b), (required, actual) in sorted(
            self.margins.items(), key=lambda kv: kv[1][1] - kv[1][0]
        ):
            rows.append({
                "cell": cell_type,
                "constraint": f"{port_a}-{port_b}",
                "required_ps": round(required, 2),
                "tightest_ps": round(actual, 2),
                "slack_ps": round(actual - required, 2),
            })
        return rows

    # -- helpers -----------------------------------------------------------

    def _resolve(self, cell: Union[Cell, str]) -> Cell:
        if isinstance(cell, Cell):
            return cell
        if cell not in self.netlist.cells:
            raise ConfigurationError(f"no cell named '{cell}'")
        return self.netlist.cells[cell]

    def reset(self) -> None:
        """Clear pending events, time, violations and all cell state."""
        self.queue.clear()
        self.now = 0.0
        self.violations.clear()
        self.delivered_pulses = 0
        self.margins.clear()
        self.netlist.reset_state()
        if self.trace is not None:
            self.trace.clear()
