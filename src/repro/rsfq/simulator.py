"""Discrete-event simulation engine for RSFQ netlists."""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ConstraintViolationError
from repro.rsfq.cells import Cell, Violation
from repro.rsfq.events import QUEUE_BACKENDS, EventQueue
from repro.rsfq.netlist import Netlist
from repro.rsfq.waveform import PulseTrace

#: External stimulus: ``(cell or cell name, input port, time in ps)``.
Stimulus = Tuple[Union[Cell, str], str, float]


@dataclass(frozen=True)
class RunStats:
    """Per-run execution statistics (returned by :meth:`Simulator.run_batch`
    and :class:`~repro.rsfq.session.SimulationSession`).

    Attributes:
        events: Events processed during the run.
        final_time_ps: Simulation time when the run finished.
        delivered_pulses: Pulses delivered during the run.
        violations: Timing violations recorded during the run.
        wall_time_s: Host wall-clock seconds the run took.
    """

    events: int
    final_time_ps: float
    delivered_pulses: int
    violations: int
    wall_time_s: float


class Simulator:
    """Event-driven simulator over a :class:`~repro.rsfq.netlist.Netlist`.

    Args:
        netlist: The circuit to simulate.
        strict: When True, a timing-constraint violation raises
            :class:`~repro.errors.ConstraintViolationError`; otherwise
            violations are recorded in :attr:`violations`.
        trace: Optional :class:`~repro.rsfq.waveform.PulseTrace` recording
            every pulse arrival (for waveform rendering).
        jitter_ps: Standard deviation of Gaussian wire-delay jitter.  Zero
            for ideal simulation; non-zero models fabrication/thermal
            variation of the physical chip (used as the "measured chip" side
            of the Fig. 16 comparison).
        seed: Seed for the jitter random stream (deterministic runs).
        queue_backend: Event-queue implementation -- a name from
            :data:`repro.rsfq.events.QUEUE_BACKENDS` (``"heap"`` or
            ``"sorted"``) or any zero-argument callable returning an object
            with the queue protocol (``push``/``pop``/``peek_time``/
            ``clear``/``__len__``/``__bool__``).  All backends are
            deterministic and produce identical event orders.

    The simulator resolves the netlist's routing through
    :meth:`Netlist.elaborate`, so the per-pulse hot path performs tuple
    lookups instead of cell resolution; the elaboration is memoised on the
    netlist and shared across simulators and runs.
    """

    def __init__(
        self,
        netlist: Netlist,
        strict: bool = False,
        trace: Optional[PulseTrace] = None,
        jitter_ps: float = 0.0,
        seed: Optional[int] = None,
        queue_backend: Union[str, Callable] = "heap",
    ):
        self.netlist = netlist
        self.strict = strict
        self.trace = trace
        self.jitter_ps = float(jitter_ps)
        self._rng = random.Random(seed)
        self.queue = self._make_queue(queue_backend)
        self.now = 0.0
        self.violations: List[Violation] = []
        #: Total pulses delivered (event count) -- activity metric.
        self.delivered_pulses = 0
        #: Total events processed across all runs since the last reset.
        self.events_processed = 0
        #: Minimum observed interval per constraint family:
        #: (cell_type, port_a, port_b) -> (required, tightest_actual).
        self.margins: dict = {}
        self._fanout = netlist.elaborate()

    @staticmethod
    def _make_queue(queue_backend: Union[str, Callable]):
        if callable(queue_backend):
            return queue_backend()
        try:
            factory = QUEUE_BACKENDS[queue_backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown queue backend '{queue_backend}'; available: "
                f"{sorted(QUEUE_BACKENDS)} (or pass a callable)"
            )
        return factory()

    # -- scheduling --------------------------------------------------------

    def schedule_input(
        self, cell: Union[Cell, str], port: str, time: float
    ) -> None:
        """Inject an external pulse into ``cell.port`` at ``time`` (ps).

        ``time`` must be at or after the current simulation time
        :attr:`now`: scheduling *at exactly* ``now`` is allowed (the pulse
        is processed in the next :meth:`run` call, after any event already
        queued for the same instant), while scheduling in the past raises
        :class:`~repro.errors.ConfigurationError`.
        """
        cell = self._resolve(cell)
        if port not in cell.INPUTS:
            raise ConfigurationError(
                f"cell '{cell.name}' has no input port '{port}'"
            )
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule input for '{cell.name}.{port}' at "
                f"{time} ps: simulation time is already {self.now} ps "
                "(inputs must be scheduled at or after the current time)"
            )
        self.queue.push(time, cell.name, port)

    def deliver(self, cell: Cell, port: str, time: float) -> None:
        """Propagate an output pulse along the port's wire (called by cells)."""
        for dst, dst_port, delay in self._fanout.fanout(cell.name, port):
            if self.jitter_ps > 0.0:
                delay = max(0.0, delay + self._rng.gauss(0.0, self.jitter_ps))
            self.queue.push(time + delay, dst, dst_port)

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the final simulation time.  ``max_events`` guards against
        runaway feedback loops in malformed circuits.
        """
        if self._fanout.version != self.netlist.topology_version:
            self._fanout = self.netlist.elaborate()
        cells = self._fanout.cells
        queue = self.queue
        trace = self.trace
        processed = 0
        while queue:
            next_time = queue.peek_time()
            if until is not None and next_time > until:
                break
            event = queue.pop()
            self.now = event.time
            cell = cells[event.component]
            if trace is not None:
                trace.record(event.component, event.port, event.time)
            cell.receive(event.port, event.time, self)
            self.delivered_pulses += 1
            processed += 1
            if processed > max_events:
                raise ConfigurationError(
                    f"simulation exceeded {max_events} events; suspected "
                    "feedback oscillation in the netlist"
                )
        self.events_processed += processed
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_batch(
        self,
        batches: Iterable[Sequence[Stimulus]],
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> List[RunStats]:
        """Execute several independent stimulus sets, resetting between runs.

        Each element of ``batches`` is a sequence of ``(cell, port, time)``
        stimuli describing one run; the circuit state, clock and queue are
        reset before each run (the jitter stream is *not* reseeded, so a
        jittered batch models repeated trials on one physical chip).  The
        netlist elaboration is resolved once and shared across the batch.

        Returns one :class:`RunStats` per stimulus set.  For richer per-run
        control (per-run traces, seeds, aggregate stats) use
        :class:`repro.rsfq.session.SimulationSession`.
        """
        stats: List[RunStats] = []
        for stimuli in batches:
            self.reset()
            for cell, port, time in stimuli:
                self.schedule_input(cell, port, time)
            events_before = self.events_processed
            start = _time.perf_counter()
            final = self.run(until=until, max_events=max_events)
            wall = _time.perf_counter() - start
            stats.append(RunStats(
                events=self.events_processed - events_before,
                final_time_ps=final,
                delivered_pulses=self.delivered_pulses,
                violations=len(self.violations),
                wall_time_s=wall,
            ))
        return stats

    def report_violation(self, violation: Violation) -> None:
        """Record (or raise, in strict mode) a timing violation."""
        self.violations.append(violation)
        if self.strict:
            raise ConstraintViolationError(str(violation))

    def record_margin(self, cell_type: str, port_a: str, port_b: str,
                      required: float, actual: float) -> None:
        """Track the tightest observed interval per constraint family
        (called by cells on every checked arrival)."""
        key = (cell_type, port_a, port_b)
        current = self.margins.get(key)
        if current is None or actual < current[1]:
            self.margins[key] = (required, actual)

    def margin_report(self):
        """Slack per constraint family, tightest first.

        Returns a list of dicts with the constraint identity, the required
        minimum interval, the tightest observed interval, and the slack
        (observed - required; negative = violated).  This is the timing
        sign-off view a designer reads before tape-out.
        """
        rows = []
        for (cell_type, port_a, port_b), (required, actual) in sorted(
            self.margins.items(), key=lambda kv: kv[1][1] - kv[1][0]
        ):
            rows.append({
                "cell": cell_type,
                "constraint": f"{port_a}-{port_b}",
                "required_ps": round(required, 2),
                "tightest_ps": round(actual, 2),
                "slack_ps": round(actual - required, 2),
            })
        return rows

    # -- helpers -----------------------------------------------------------

    def _resolve(self, cell: Union[Cell, str]) -> Cell:
        if isinstance(cell, Cell):
            return cell
        if cell not in self.netlist.cells:
            raise ConfigurationError(f"no cell named '{cell}'")
        return self.netlist.cells[cell]

    def reset(self) -> None:
        """Clear pending events, time, violations and all cell state."""
        self.queue.clear()
        self.now = 0.0
        self.violations.clear()
        self.delivered_pulses = 0
        self.events_processed = 0
        self.margins.clear()
        self.netlist.reset_state()
        if self.trace is not None:
            self.trace.clear()
