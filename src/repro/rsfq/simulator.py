"""Discrete-event simulation engine for RSFQ netlists.

The engine is tuned around one observation: at gate level every Fig. 16 /
19 / 20 experiment is millions of identical micro-steps (pop event,
dispatch to cell, push fan-out), so the per-event constant factor *is*
the benchmark.  The hot path therefore

* moves bare ``(time, seq, cell_idx, port_idx)`` tuples through the
  queue backends -- no per-event object allocation
  (:class:`~repro.rsfq.events.PulseEvent` is materialised only at trace
  and debug boundaries);
* resolves cells and ports to integer indices once, at netlist
  elaboration (:meth:`~repro.rsfq.netlist.Netlist.elaborate`), instead of
  string-keyed dict lookups per pulse;
* hoists the jitter and trace branches out of the inner loop: ``deliver``
  is bound to a jitter-specialised variant at construction, and ``run``
  dispatches to trace / no-trace loop variants.

See ``docs/ENGINE.md`` for the architecture overview and
:mod:`repro.rsfq.parallel` for the partitioned parallel engine layered on
top of the same primitives.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    ConfigurationError,
    ConstraintViolationError,
    DeadlineExceededError,
    FaultInjectionError,
)
from repro.rsfq.cells import Cell, Violation
from repro.rsfq.events import QUEUE_BACKENDS, EventQueue
from repro.rsfq.faults import FaultModel, canonical_log
from repro.rsfq.netlist import Netlist
from repro.rsfq.waveform import PulseTrace

#: External stimulus: ``(cell or cell name, input port, time in ps)``.
Stimulus = Tuple[Union[Cell, str], str, float]

#: Jitter stream modes (see :class:`Simulator` ``jitter_mode``).
JITTER_MODES = ("global", "wire")


def wire_jitter_rng(seed, wire_key: str) -> random.Random:
    """The deterministic jitter stream of one wire (``jitter_mode="wire"``).

    Seeding :class:`random.Random` with a *string* uses CPython's stable
    (sha512-based) seeding, so the stream depends only on ``(seed,
    wire_key)`` -- never on hash randomisation, execution order, or which
    partition the wire's source cell lives in.  This is what makes
    jittered runs bit-identical between :class:`Simulator` and
    :class:`repro.rsfq.parallel.ParallelSimulator`.
    """
    return random.Random(f"{seed!r}|{wire_key}")


def margin_report_rows(margins: dict) -> List[dict]:
    """Render a ``{(cell_type, port_a, port_b): (required, tightest)}``
    margin table as slack rows, tightest (most negative slack) first."""
    rows = []
    for (cell_type, port_a, port_b), (required, actual) in sorted(
        margins.items(), key=lambda kv: kv[1][1] - kv[1][0]
    ):
        rows.append({
            "cell": cell_type,
            "constraint": f"{port_a}-{port_b}",
            "required_ps": round(required, 2),
            "tightest_ps": round(actual, 2),
            "slack_ps": round(actual - required, 2),
        })
    return rows


def merge_margins(target: dict, source: dict) -> None:
    """Fold ``source`` margin observations into ``target`` (tightest wins)."""
    for key, (required, actual) in source.items():
        current = target.get(key)
        if current is None or actual < current[1]:
            target[key] = (required, actual)


@dataclass(frozen=True)
class RunStats:
    """Per-run execution statistics (returned by :meth:`Simulator.run_batch`
    and :class:`~repro.rsfq.session.SimulationSession`).

    Attributes:
        events: Events processed during the run.
        final_time_ps: Simulation time when the run finished.
        delivered_pulses: Pulses delivered during the run.
        violations: Timing violations recorded during the run.
        wall_time_s: Host wall-clock seconds the run took.
    """

    events: int
    final_time_ps: float
    delivered_pulses: int
    violations: int
    wall_time_s: float


class Simulator:
    """Event-driven simulator over a :class:`~repro.rsfq.netlist.Netlist`.

    Args:
        netlist: The circuit to simulate.
        strict: When True, a timing-constraint violation raises
            :class:`~repro.errors.ConstraintViolationError`; otherwise
            violations are recorded in :attr:`violations`.
        trace: Optional :class:`~repro.rsfq.waveform.PulseTrace` recording
            every pulse arrival (for waveform rendering).
        jitter_ps: Standard deviation of Gaussian wire-delay jitter.  Zero
            for ideal simulation; non-zero models fabrication/thermal
            variation of the physical chip (used as the "measured chip" side
            of the Fig. 16 comparison).
        seed: Seed for the jitter random stream (deterministic runs).
        queue_backend: Event-queue implementation -- a name from
            :data:`repro.rsfq.events.QUEUE_BACKENDS` (``"heap"`` or
            ``"sorted"``) or any zero-argument callable returning an object
            with the queue protocol (``push``/``pop``/``peek_time``/
            ``clear``/``__len__``/``__bool__``).  All backends are
            deterministic and produce identical event orders.
        jitter_mode: How jitter draws are sequenced.

            * ``"global"`` (default, legacy): one stream consumed in
              delivery order -- fast, but the draw a given wire receives
              depends on the global event interleaving.
            * ``"wire"``: one independent stream per wire, derived from
              ``(seed, wire identity)`` via :func:`wire_jitter_rng` -- the
              k-th pulse on a wire always gets that wire's k-th draw, so
              jittered results are independent of event interleaving and
              bit-identical between the sequential and the partitioned
              parallel engine.  With ``seed=None`` the mode behaves as a
              fixed default seed (still deterministic).

    The simulator resolves the netlist's routing through
    :meth:`Netlist.elaborate`, so the per-pulse hot path performs integer
    indexing instead of cell resolution; the elaboration is memoised on
    the netlist and shared across simulators and runs.
    """

    def __init__(
        self,
        netlist: Netlist,
        strict: bool = False,
        trace: Optional[PulseTrace] = None,
        jitter_ps: float = 0.0,
        seed: Optional[int] = None,
        queue_backend: Union[str, Callable] = "heap",
        jitter_mode: str = "global",
        faults: Optional[FaultModel] = None,
    ):
        if jitter_mode not in JITTER_MODES:
            raise ConfigurationError(
                f"unknown jitter_mode '{jitter_mode}'; "
                f"available: {list(JITTER_MODES)}"
            )
        self.netlist = netlist
        self.strict = strict
        self.trace = trace
        self.jitter_ps = float(jitter_ps)
        self.jitter_mode = jitter_mode
        self._seed = seed
        self._rng = random.Random(seed)
        self._wire_rngs: dict = {}
        self.faults = faults
        self.queue = self._make_queue(queue_backend)
        self.now = 0.0
        self.violations: List[Violation] = []
        #: Total pulses delivered (event count) -- activity metric.
        self.delivered_pulses = 0
        #: Total events processed across all runs since the last reset.
        self.events_processed = 0
        #: Minimum observed interval per constraint family:
        #: (cell_type, port_a, port_b) -> (required, tightest_actual).
        self.margins: dict = {}
        #: Set after a ``run(engine="traced")`` replay: the results were
        #: materialised from a compiled trace, so incremental stepping
        #: is refused until :meth:`reset` (see repro.rsfq.trace).
        self._trace_replayed = False
        self._trace_engine = None
        self._fanout = netlist.elaborate()
        self._install_views()
        self._bind_deliver()

    @staticmethod
    def _make_queue(queue_backend: Union[str, Callable]):
        if callable(queue_backend):
            return queue_backend()
        try:
            factory = QUEUE_BACKENDS[queue_backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown queue backend '{queue_backend}'; available: "
                f"{sorted(QUEUE_BACKENDS)} (or pass a callable)"
            )
        return factory()

    def _install_views(self) -> None:
        """Resolve the cell/port views the run loops index through.

        Without faults these are exactly the fan-out table's tuples (same
        objects, zero overhead).  With an active fault model they come
        from the model's bound runtime, which may append flux-trap proxies
        past the real cells (see :mod:`repro.rsfq.faults`).
        """
        if self.faults is not None and self.faults.active:
            self._fault_runtime = self.faults.bind(self._fanout)
            self._cells_view = self._fault_runtime.cells_view
            self._ports_view = self._fault_runtime.ports_view
        else:
            self._fault_runtime = None
            self._cells_view = self._fanout.cell_list
            self._ports_view = self._fanout.input_ports

    def _bind_deliver(self) -> None:
        """Bind ``deliver`` to the jitter/fault-specialised variant (hoists
        both branches out of the per-event hot path).

        With an active fault model every delivery runs through the fault
        decision procedure (which also handles per-wire jitter); the
        zero-fault configurations below are untouched, so attaching
        ``faults=None`` (or an empty model) keeps the allocation-free fast
        path byte-for-byte.

        When the instance uses the stock heap backend *and* has not
        overridden ``_deliver_ideal`` (the partitioned engine's local
        engines do, to route cross-partition pulses), the ideal variant is
        further specialised to push entries straight onto the underlying
        heap, skipping the queue's Python-level ``push`` wrapper.
        """
        if self._fault_runtime is not None:
            if self.jitter_ps > 0.0 and self.jitter_mode != "wire":
                raise FaultInjectionError(
                    "fault injection with jitter requires "
                    "jitter_mode='wire': the legacy global jitter stream "
                    "is consumed in delivery order and cannot be "
                    "reproduced under faults or partitioned execution"
                )
            self.deliver = self._deliver_faulty
        elif self.jitter_ps <= 0.0:
            if (
                type(self)._deliver_ideal is Simulator._deliver_ideal
                and type(self.queue) is EventQueue
            ):
                self.deliver = self._deliver_ideal_heap
            else:
                self.deliver = self._deliver_ideal
        elif self.jitter_mode == "wire":
            self.deliver = self._deliver_jitter_wire
        else:
            self.deliver = self._deliver_jitter_global

    def _refresh(self) -> None:
        """Re-elaborate if the netlist grew since the last elaboration.

        Elaboration preserves the indices of already-present cells
        (insertion order is stable), so entries already in the queue stay
        valid across a refresh.
        """
        if self._fanout.version != self.netlist.topology_version:
            self._fanout = self.netlist.elaborate()
            self._install_views()
            self._bind_deliver()

    # -- scheduling --------------------------------------------------------

    def schedule_input(
        self, cell: Union[Cell, str], port: str, time: float
    ) -> None:
        """Inject an external pulse into ``cell.port`` at ``time`` (ps).

        ``time`` must be at or after the current simulation time
        :attr:`now`: scheduling *at exactly* ``now`` is allowed (the pulse
        is processed in the next :meth:`run` call, after any event already
        queued for the same instant), while scheduling in the past raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if self._trace_replayed:
            raise ConfigurationError(
                "this simulator's state was materialised from a trace "
                "replay; call reset() before scheduling further inputs"
            )
        cell = self._resolve(cell)
        if port not in cell.INPUTS:
            raise ConfigurationError(
                f"cell '{cell.name}' has no input port '{port}'"
            )
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule input for '{cell.name}.{port}' at "
                f"{time} ps: simulation time is already {self.now} ps "
                "(inputs must be scheduled at or after the current time)"
            )
        self._refresh()
        cell_idx, port_idx = self._fanout.resolve_endpoint(cell.name, port)
        fr = self._fault_runtime
        if fr is not None and fr.swallow_external(
            cell_idx, cell.name, port, time
        ):
            return
        self.queue.push(time, cell_idx, port_idx)

    # -- delivery variants (bound to ``deliver`` at construction) ----------

    def _deliver_ideal(self, cell: Cell, port: str, time: float) -> None:
        """Propagate an output pulse along the port's wire (no jitter)."""
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        push = self.queue.push
        for dst_idx, dst_port_idx, delay, _wid in routes:
            push(time + delay, dst_idx, dst_port_idx)

    def _deliver_ideal_heap(self, cell: Cell, port: str, time: float) -> None:
        """:meth:`_deliver_ideal` specialised for the stock heap backend:
        entries go straight onto the underlying heap (same tuples, same
        sequence numbering, no ``push`` wrapper call per pulse)."""
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        queue = self.queue
        heap = queue._heap
        seq = queue._seq
        for dst_idx, dst_port_idx, delay, _wid in routes:
            heappush(heap, (time + delay, seq, dst_idx, dst_port_idx))
            seq += 1
        queue._seq = seq

    def _deliver_jitter_global(self, cell: Cell, port: str, time: float) -> None:
        """Jittered delivery drawing from the single global stream (in
        delivery order -- the legacy behaviour behind the golden jitter
        snapshots)."""
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        push = self.queue.push
        gauss = self._rng.gauss
        sigma = self.jitter_ps
        for dst_idx, dst_port_idx, delay, _wid in routes:
            jittered = delay + gauss(0.0, sigma)
            if jittered < 0.0:
                jittered = 0.0
            push(time + jittered, dst_idx, dst_port_idx)

    def _deliver_jitter_wire(self, cell: Cell, port: str, time: float) -> None:
        """Jittered delivery drawing from per-wire streams (stable under
        any event interleaving; see :func:`wire_jitter_rng`)."""
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        push = self.queue.push
        sigma = self.jitter_ps
        rngs = self._wire_rngs
        fanout = self._fanout
        for dst_idx, dst_port_idx, delay, wid in routes:
            rng = rngs.get(wid)
            if rng is None:
                rng = rngs[wid] = wire_jitter_rng(
                    self._seed, fanout.wire_key(wid)
                )
            jittered = delay + rng.gauss(0.0, sigma)
            if jittered < 0.0:
                jittered = 0.0
            push(time + jittered, dst_idx, dst_port_idx)

    def _deliver_faulty(self, cell: Cell, port: str, time: float) -> None:
        """Delivery under an active fault model (bound when ``faults`` has
        at least one spec).

        Per route: draw the (optional) per-wire jitter, then let the bound
        fault runtime decide the pulse's fate -- drop it, delay it, spawn
        an echo, reroute it through a flux-trap proxy, or swallow it at a
        stuck cell -- and push whatever survives via
        :meth:`_dispatch_entry` (overridden by the partitioned engine's
        local loops for ownership-aware routing).  All decision streams
        are per-wire and consumed in pulse order, so faulty runs stay
        bit-identical between the sequential and partitioned engines.
        """
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        fr = self._fault_runtime
        sigma = self.jitter_ps
        dispatch = self._dispatch_entry
        if sigma > 0.0:
            rngs = self._wire_rngs
            fanout = self._fanout
            for dst_idx, dst_port_idx, delay, wid in routes:
                rng = rngs.get(wid)
                if rng is None:
                    rng = rngs[wid] = wire_jitter_rng(
                        self._seed, fanout.wire_key(wid)
                    )
                jittered = delay + rng.gauss(0.0, sigma)
                if jittered < 0.0:
                    jittered = 0.0
                for entry in fr.route_pulse(
                    wid, dst_idx, dst_port_idx, time + jittered
                ):
                    dispatch(entry, dst_idx)
        else:
            for dst_idx, dst_port_idx, delay, wid in routes:
                for entry in fr.route_pulse(
                    wid, dst_idx, dst_port_idx, time + delay
                ):
                    dispatch(entry, dst_idx)

    def _dispatch_entry(self, entry, dst_idx: int) -> None:
        """Push one fault-processed ``(time, view_idx, port_idx)`` entry.

        ``dst_idx`` is the *real* destination cell index (``view_idx`` may
        address a flux-trap proxy); the partitioned engine's local loops
        override this to route by the owner of ``dst_idx``.
        """
        self.queue.push(*entry)

    # ``deliver`` is rebound per instance; this definition keeps the
    # method documented and subclass-overridable.
    deliver = _deliver_ideal

    # -- execution ---------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
        deadline_s: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the final simulation time.  ``max_events`` guards against
        runaway feedback loops in malformed circuits: the run raises
        :class:`~repro.errors.ConfigurationError` after processing exactly
        ``max_events`` events with work still pending (a run that
        *completes* on its last allowed event does not raise).

        ``deadline_s`` adds a *wall-clock* guard alongside the event
        guard: when set, the run raises
        :class:`~repro.errors.DeadlineExceededError` once the host clock
        exceeds the budget with events still pending (checked every 1024
        events so the guard costs nothing on the hot path; a run that
        drains its queue in time never pays more than the checks).  The
        specialised zero-overhead loops below are only used when no
        deadline is requested.

        ``engine="traced"`` serves the run from the record-once /
        replay-vectorized trace layer when possible (see
        :mod:`repro.rsfq.trace`): the scheduled stimuli are fingerprinted,
        recorded once on a strict ideal pass, and this run's variation
        (jitter seed, silent fault model) is materialised as flat array
        passes -- falling back transparently to this event loop whenever
        replay cannot reproduce the run bit-for-bit.  After a replay the
        simulator refuses further stepping until :meth:`reset` (replay
        restores observations, not mid-episode scratch state).
        """
        if self._trace_replayed:
            raise ConfigurationError(
                "this simulator's state was materialised from a trace "
                "replay; call reset() before running again"
            )
        if engine is not None:
            if engine != "traced":
                raise ConfigurationError(
                    f"unknown engine '{engine}'; available: ('traced',)"
                )
            return self._run_traced(until, max_events, deadline_s)
        if deadline_s is not None:
            return self._run_with_deadline(until, max_events, deadline_s)
        self._refresh()
        queue = self.queue
        cells = self._cells_view
        ports = self._ports_view
        pop = queue.pop
        processed = 0
        try:
            if self.trace is None:
                if until is None and type(queue) is EventQueue:
                    # Fastest path: no trace, no horizon, stock heap
                    # backend -- pop entries straight off the underlying
                    # heap (C-level ``heappop``, list truthiness instead
                    # of the queue's ``__bool__``/``pop`` wrappers).
                    heap = queue._heap
                    while heap:
                        if processed >= max_events:
                            raise ConfigurationError(
                                f"simulation exceeded {max_events} events; "
                                "suspected feedback oscillation in the netlist"
                            )
                        time, _seq, ci, pi = heappop(heap)
                        self.now = time
                        cell = cells[ci]
                        cell.receive(ports[ci][pi], time, self)
                        processed += 1
                elif until is None:
                    # Fast path: no trace, no horizon.
                    while queue:
                        if processed >= max_events:
                            raise ConfigurationError(
                                f"simulation exceeded {max_events} events; "
                                "suspected feedback oscillation in the netlist"
                            )
                        time, _seq, ci, pi = pop()
                        self.now = time
                        cell = cells[ci]
                        cell.receive(ports[ci][pi], time, self)
                        processed += 1
                else:
                    peek = queue.peek_time
                    while queue:
                        if peek() > until:
                            break
                        if processed >= max_events:
                            raise ConfigurationError(
                                f"simulation exceeded {max_events} events; "
                                "suspected feedback oscillation in the netlist"
                            )
                        time, _seq, ci, pi = pop()
                        self.now = time
                        cell = cells[ci]
                        cell.receive(ports[ci][pi], time, self)
                        processed += 1
            else:
                trace = self.trace
                peek = queue.peek_time
                while queue:
                    if until is not None and peek() > until:
                        break
                    if processed >= max_events:
                        raise ConfigurationError(
                            f"simulation exceeded {max_events} events; "
                            "suspected feedback oscillation in the netlist"
                        )
                    time, _seq, ci, pi = pop()
                    self.now = time
                    cell = cells[ci]
                    port = ports[ci][pi]
                    trace.record(cell.name, port, time)
                    cell.receive(port, time, self)
                    processed += 1
        finally:
            self.delivered_pulses += processed
            self.events_processed += processed
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_with_deadline(
        self,
        until: Optional[float],
        max_events: int,
        deadline_s: float,
    ) -> float:
        """The :meth:`run` loop with a periodic wall-clock check.

        Kept out of :meth:`run` so the deadline-free fast paths stay
        branchless; the clock is sampled every 1024 events (and once per
        run for short runs), which bounds overrun to one check interval.
        """
        if deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        deadline = _time.perf_counter() + deadline_s
        self._refresh()
        queue = self.queue
        cells = self._cells_view
        ports = self._ports_view
        pop = queue.pop
        peek = queue.peek_time
        trace = self.trace
        processed = 0
        try:
            while queue:
                if until is not None and peek() > until:
                    break
                if processed >= max_events:
                    raise ConfigurationError(
                        f"simulation exceeded {max_events} events; "
                        "suspected feedback oscillation in the netlist"
                    )
                if not processed & 0x3FF and \
                        _time.perf_counter() > deadline:
                    raise DeadlineExceededError(
                        f"simulation exceeded its {deadline_s}s wall-clock "
                        f"deadline after {processed} events at "
                        f"t={self.now:.2f} ps with work still pending"
                    )
                time, _seq, ci, pi = pop()
                self.now = time
                cell = cells[ci]
                port = ports[ci][pi]
                if trace is not None:
                    trace.record(cell.name, port, time)
                cell.receive(port, time, self)
                processed += 1
        finally:
            self.delivered_pulses += processed
            self.events_processed += processed
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_traced(
        self,
        until: Optional[float],
        max_events: int,
        deadline_s: Optional[float],
    ) -> float:
        """Serve :meth:`run` from the trace layer (``engine="traced"``).

        Eligible only for a whole episode from the power-on state on the
        stock heap backend with un-overridden delivery; anything else --
        and any replay-side divergence -- re-enters the normal event
        loop on the already-populated queue, which is bit-identical by
        construction.
        """
        from repro.rsfq import trace as trace_mod

        eligible = (
            until is None
            and deadline_s is None
            and self.now == 0.0
            and self.events_processed == 0
            and type(self.queue) is EventQueue
            and type(self)._deliver_ideal is Simulator._deliver_ideal
        )
        if not eligible:
            trace_mod.GLOBAL_TRACE_COUNTERS.bump("fallbacks")
            return self.run(until=until, max_events=max_events,
                            deadline_s=deadline_s)
        engine = self._trace_engine
        if engine is None or engine.netlist is not self.netlist:
            engine = self._trace_engine = trace_mod.TraceEngine(
                self.netlist
            )
        self._refresh()
        fanout = self._fanout
        entries = sorted(self.queue._heap, key=lambda e: e[1])
        segment = tuple(
            (fanout.cell_list[ci].name, fanout.input_ports[ci][pi], time)
            for time, _seq, ci, pi in entries
        )
        episode = engine.replay_episode(
            (segment,),
            jitter_ps=self.jitter_ps,
            seed=self._seed,
            jitter_mode=self.jitter_mode,
            faults=self.faults,
            strict=self.strict,
            max_events=max_events,
            want_trace=self.trace is not None,
        )
        if episode is None:
            return self.run(max_events=max_events)
        self.queue.clear()
        self.now = episode.final_time_ps
        self.violations.extend(episode.violations)
        merge_margins(self.margins, episode.margins)
        self.delivered_pulses += episode.events
        self.events_processed += episode.events
        if self.trace is not None and episode.trace is not None:
            record = self.trace.record
            for component, port, time in episode.trace.events():
                record(component, port, time)
        self._trace_replayed = True
        return self.now

    def run_batch(
        self,
        batches: Iterable[Sequence[Stimulus]],
        until: Optional[float] = None,
        max_events: int = 10_000_000,
        deadline_s: Optional[float] = None,
    ) -> List[RunStats]:
        """Execute several independent stimulus sets, resetting between runs.

        Each element of ``batches`` is a sequence of ``(cell, port, time)``
        stimuli describing one run; the circuit state, clock, queue and the
        seeded jitter/fault streams are all restored before each run (see
        :meth:`reset` -- every sample replays from the simulator's seed, so
        batch results can never depend on batch order or on earlier
        samples; Monte-Carlo batches should vary the seed per trial, e.g.
        via :class:`repro.rsfq.session.SimulationSession` ``seeds=`` or
        :meth:`repro.rsfq.faults.FaultModel.reseeded`).  The netlist
        elaboration is resolved once and shared across the batch.
        ``deadline_s`` (when set) bounds each run's wall-clock time.

        Returns one :class:`RunStats` per stimulus set.  For richer per-run
        control (per-run traces, seeds, aggregate stats) use
        :class:`repro.rsfq.session.SimulationSession`.
        """
        stats: List[RunStats] = []
        for stimuli in batches:
            self.reset()
            for cell, port, time in stimuli:
                self.schedule_input(cell, port, time)
            events_before = self.events_processed
            start = _time.perf_counter()
            final = self.run(until=until, max_events=max_events,
                             deadline_s=deadline_s)
            wall = _time.perf_counter() - start
            stats.append(RunStats(
                events=self.events_processed - events_before,
                final_time_ps=final,
                delivered_pulses=self.delivered_pulses,
                violations=len(self.violations),
                wall_time_s=wall,
            ))
        return stats

    def report_violation(self, violation: Violation) -> None:
        """Record (or raise, in strict mode) a timing violation.

        The strict-mode message is prefixed with the simulation time and
        the violating cell's name so a raise deep inside a batch or
        campaign pinpoints *when* and *where* the circuit broke without
        consulting :attr:`violations`.
        """
        self.violations.append(violation)
        if self.strict:
            raise ConstraintViolationError(
                f"at t={violation.time:.2f} ps in cell "
                f"'{violation.component}': {violation}"
            )

    # -- fault observability ----------------------------------------------

    def injection_log(self):
        """The run's injected faults in canonical (engine-independent)
        order; empty without an active fault model.  See
        :func:`repro.rsfq.faults.canonical_log`."""
        if self._fault_runtime is None:
            return ()
        return canonical_log(self._fault_runtime.log)

    def fault_counts(self) -> dict:
        """Per-kind injected-fault totals (empty without a fault model)."""
        if self._fault_runtime is None:
            return {}
        return dict(self._fault_runtime.counts)

    def record_margin(self, cell_type: str, port_a: str, port_b: str,
                      required: float, actual: float) -> None:
        """Track the tightest observed interval per constraint family
        (called by cells on every checked arrival)."""
        key = (cell_type, port_a, port_b)
        current = self.margins.get(key)
        if current is None or actual < current[1]:
            self.margins[key] = (required, actual)

    def margin_report(self):
        """Slack per constraint family, tightest first.

        Returns a list of dicts with the constraint identity, the required
        minimum interval, the tightest observed interval, and the slack
        (observed - required; negative = violated).  This is the timing
        sign-off view a designer reads before tape-out.
        """
        return margin_report_rows(self.margins)

    # -- helpers -----------------------------------------------------------

    def _resolve(self, cell: Union[Cell, str]) -> Cell:
        if isinstance(cell, Cell):
            return cell
        if cell not in self.netlist.cells:
            raise ConfigurationError(f"no cell named '{cell}'")
        return self.netlist.cells[cell]

    def reset(self) -> None:
        """Restore the simulator to its construction state.

        Clears pending events, time, violations, margins, traces and all
        cell state, *and* reseeds every stochastic stream (the global
        jitter RNG, the per-wire jitter streams, and any bound fault
        runtime) from the construction seed.  After ``reset()`` a replay
        of the same stimuli is therefore bit-identical to the first run
        -- the invariant :meth:`run_batch` and the Monte-Carlo campaign
        harness rely on.  To model *fresh* physical randomness, construct
        a new simulator (or session run) with a different ``seed``.
        """
        self.queue.clear()
        self.now = 0.0
        self.violations.clear()
        self.delivered_pulses = 0
        self.events_processed = 0
        self.margins.clear()
        self._trace_replayed = False
        self._rng = random.Random(self._seed)
        self._wire_rngs.clear()
        if self._fault_runtime is not None:
            self._fault_runtime.reset()
        self.netlist.reset_state()
        if self.trace is not None:
            self.trace.clear()
