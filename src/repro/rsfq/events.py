"""Event primitives for the RSFQ discrete-event simulator.

The hot path of the engine never allocates an event *object*: queue
entries are plain ``(time, seq, target, port)`` tuples, where ``target``
and ``port`` are whatever the pusher chose to store -- the
:class:`repro.rsfq.simulator.Simulator` stores the integer cell / port
indices of the elaborated :class:`repro.rsfq.netlist.FanoutTable`, while
standalone users may store strings.  :class:`PulseEvent` objects exist
only as a *materialisation boundary* for tracing, debugging and error
messages (:meth:`EventQueue.pop_event` / :meth:`PulseEvent.from_entry`).

Two interchangeable queue backends implement the same protocol
(``push`` / ``pop`` / ``pop_event`` / ``peek_time`` / ``clear`` /
``__len__`` / ``__bool__``):

* :class:`EventQueue` -- a binary min-heap, the default.  O(log n) per
  operation regardless of schedule shape.
* :class:`SortedListQueue` -- an insertion-sorted list popped from the
  tail: O(1) pops and peeks, bisect-insert pushes.  Wins on pop-heavy /
  peek-heavy workloads and small queues; the heap wins on deep queues
  with interleaved arrival times.

Both are deterministic: simultaneous events pop in schedule (sequence)
order, because the heap/list keys compare ``(time, seq)`` first and
``seq`` is unique.  :data:`QUEUE_BACKENDS` maps backend names to classes
for the :class:`repro.rsfq.simulator.Simulator` ``queue_backend=``
option.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: A queue entry: ``(time, seq, target, port)``.  ``target``/``port`` are
#: opaque to the queue (integer indices on the simulator fast path).
Entry = Tuple[float, int, object, object]


@dataclass(frozen=True)
class PulseEvent:
    """An SFQ pulse arriving at a cell input port (debug/trace view).

    The engine itself moves bare tuples; ``PulseEvent`` is only built at
    trace and debugging boundaries via :meth:`from_entry`.

    Attributes:
        time: Arrival time in picoseconds.
        seq: Tie-breaking sequence number (schedule order) so that
            simultaneous events are processed deterministically.
        component: Destination cell (name or elaborated index).
        port: Destination input port (name or elaborated index).
    """

    time: float
    seq: int
    component: object
    port: object

    @classmethod
    def from_entry(cls, entry: Entry) -> "PulseEvent":
        """Materialise a queue entry tuple into an event object."""
        time, seq, component, port = entry
        return cls(time=time, seq=seq, component=component, port=port)

    def sort_key(self) -> tuple:
        return (self.time, self.seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of ``(time, seq, target, port)`` tuples."""

    _heap: List[Entry] = field(default_factory=list)
    _seq: int = 0

    def push(self, time: float, target, port) -> Entry:
        """Schedule a pulse arrival; returns the stored entry tuple."""
        entry = (time, self._seq, target, port)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def pop(self) -> Optional[Entry]:
        """Remove and return the earliest entry tuple, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def pop_event(self) -> Optional[PulseEvent]:
        """Like :meth:`pop` but materialises a :class:`PulseEvent`."""
        entry = self.pop()
        return None if entry is None else PulseEvent.from_entry(entry)

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending entry without removing it."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        self._heap.clear()


@dataclass
class SortedListQueue:
    """A sorted-list queue popped from the tail (earliest entry last).

    Insertion uses :func:`bisect.insort` on ``(-time, -seq)`` keys so that
    the earliest entry sits at the end of the list: ``pop`` and
    ``peek_time`` are O(1) list-tail operations, while pushes pay a
    bisect search plus a C-level ``memmove``.
    """

    _items: List[tuple] = field(default_factory=list)
    _seq: int = 0

    def push(self, time: float, target, port) -> Entry:
        """Schedule a pulse arrival; returns the entry tuple."""
        seq = self._seq
        self._seq += 1
        bisect.insort(self._items, (-time, -seq, target, port))
        return (time, seq, target, port)

    def pop(self) -> Optional[Entry]:
        """Remove and return the earliest entry tuple, or None when empty."""
        if not self._items:
            return None
        neg_time, neg_seq, target, port = self._items.pop()
        return (-neg_time, -neg_seq, target, port)

    def pop_event(self) -> Optional[PulseEvent]:
        """Like :meth:`pop` but materialises a :class:`PulseEvent`."""
        entry = self.pop()
        return None if entry is None else PulseEvent.from_entry(entry)

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending entry without removing it."""
        if not self._items:
            return None
        return -self._items[-1][0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def clear(self) -> None:
        self._items.clear()


#: Queue-backend registry for ``Simulator(queue_backend=...)``.
QUEUE_BACKENDS: Dict[str, type] = {
    "heap": EventQueue,
    "sorted": SortedListQueue,
}
