"""Event primitives for the RSFQ discrete-event simulator."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class PulseEvent:
    """An SFQ pulse arriving at a cell input port.

    Attributes:
        time: Arrival time in picoseconds.
        seq: Tie-breaking sequence number (schedule order) so that
            simultaneous events are processed deterministically.
        component: Name of the destination cell.
        port: Destination input port name.
    """

    time: float
    seq: int
    component: str
    port: str

    def sort_key(self) -> tuple:
        return (self.time, self.seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of :class:`PulseEvent` objects."""

    _heap: List[tuple] = field(default_factory=list)
    _seq: int = 0

    def push(self, time: float, component: str, port: str) -> PulseEvent:
        """Schedule a pulse arrival and return the created event."""
        event = PulseEvent(time=time, seq=self._seq, component=component, port=port)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Optional[PulseEvent]:
        """Remove and return the earliest event, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without removing it."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        self._heap.clear()
