"""Event primitives for the RSFQ discrete-event simulator.

Two interchangeable queue backends implement the same protocol
(``push`` / ``pop`` / ``peek_time`` / ``clear`` / ``__len__`` /
``__bool__``):

* :class:`EventQueue` -- a binary min-heap, the default.  O(log n) per
  operation regardless of schedule shape.
* :class:`SortedListQueue` -- an insertion-sorted list popped from the
  tail: O(1) pops and peeks, bisect-insert pushes.  Wins on pop-heavy /
  peek-heavy workloads and small queues; the heap wins on deep queues
  with interleaved arrival times.

Both are deterministic: simultaneous events pop in schedule (sequence)
order.  :data:`QUEUE_BACKENDS` maps backend names to classes for the
:class:`repro.rsfq.simulator.Simulator` ``queue_backend=`` option.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PulseEvent:
    """An SFQ pulse arriving at a cell input port.

    Attributes:
        time: Arrival time in picoseconds.
        seq: Tie-breaking sequence number (schedule order) so that
            simultaneous events are processed deterministically.
        component: Name of the destination cell.
        port: Destination input port name.
    """

    time: float
    seq: int
    component: str
    port: str

    def sort_key(self) -> tuple:
        return (self.time, self.seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of :class:`PulseEvent` objects."""

    _heap: List[tuple] = field(default_factory=list)
    _seq: int = 0

    def push(self, time: float, component: str, port: str) -> PulseEvent:
        """Schedule a pulse arrival and return the created event."""
        event = PulseEvent(time=time, seq=self._seq, component=component, port=port)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Optional[PulseEvent]:
        """Remove and return the earliest event, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without removing it."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        self._heap.clear()


@dataclass
class SortedListQueue:
    """A sorted-list queue popped from the tail (earliest event last).

    Insertion uses :func:`bisect.insort` on ``(-time, -seq)`` keys so that
    the earliest event sits at the end of the list: ``pop`` and
    ``peek_time`` are O(1) list-tail operations, while pushes pay a
    bisect search plus a C-level ``memmove``.
    """

    _items: List[tuple] = field(default_factory=list)
    _seq: int = 0

    def push(self, time: float, component: str, port: str) -> PulseEvent:
        """Schedule a pulse arrival and return the created event."""
        event = PulseEvent(time=time, seq=self._seq, component=component, port=port)
        self._seq += 1
        bisect.insort(self._items, (-event.time, -event.seq, event))
        return event

    def pop(self) -> Optional[PulseEvent]:
        """Remove and return the earliest event, or None when empty."""
        if not self._items:
            return None
        return self._items.pop()[2]

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without removing it."""
        if not self._items:
            return None
        return -self._items[-1][0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def clear(self) -> None:
        self._items.clear()


#: Queue-backend registry for ``Simulator(queue_backend=...)``.
QUEUE_BACKENDS: Dict[str, type] = {
    "heap": EventQueue,
    "sorted": SortedListQueue,
}
