"""Synchronous RSFQ building blocks (the design style SUSHI abandons).

Conventional RSFQ digital design clocks every gate, which requires a clock
distribution network (SPL trees plus JTL alignment segments) reaching each
cell.  The paper's motivation (section 3) reports that this typically
consumes ~80% of the design's resources.  This module implements the
conventional style -- a counterflow-clocked DFF shift register (the usual
RSFQ on-chip memory) and a bit-serial adder from clocked gates -- so the
overhead claim can be *measured* from real netlists
(:func:`clock_overhead_fraction`), and so the memory-wall motivation has a
concrete artefact (sequential-access-only storage).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rsfq import library
from repro.rsfq.logic import AND2, OR2, XOR2
from repro.rsfq.netlist import Netlist
from repro.rsfq.simulator import Simulator

#: JTL alignment segments inserted on every clock-tree leaf (the pulse
#: re-timing the paper's motivation attributes most wiring overhead to).
CLOCK_ALIGNMENT_JTLS = 6

#: JTL segments on each data hop between synchronous stages.
DATA_HOP_JTLS = 2


class ClockTree:
    """An SPL fan-out tree delivering (optionally skewed) clock pulses.

    Args:
        net: Netlist to build into.
        name: Prefix for the created cells (``{name}.clkspl*``); the
            ``clk`` substring is what resource accounting keys on.
        leaves: ``(cell, port, skew_ps)`` destinations.  Counterflow
            clocking is realised by giving later pipeline stages smaller
            skews.
    """

    def __init__(self, net: Netlist, name: str,
                 leaves: Sequence[Tuple[object, str, float]]):
        if not leaves:
            raise ConfigurationError("a clock tree needs at least one leaf")
        self.net = net
        self.name = name
        self._root_cell, self._root_port = self._build(
            name, list(leaves)
        )

    def _build(self, name, leaves):
        if len(leaves) == 1:
            cell, port, skew = leaves[0]
            jtl = self.net.add(library.JTL(f"{name}.clkjtl"))
            self.net.connect(jtl, "dout", cell, port,
                             delay=1.0 + max(skew, 0.0),
                             jtl_count=CLOCK_ALIGNMENT_JTLS)
            return jtl, "din"
        spl = self.net.add(library.SPL(f"{name}.clkspl"))
        mid = (len(leaves) + 1) // 2
        left_cell, left_port = self._build(f"{name}.l", leaves[:mid])
        right_cell, right_port = self._build(f"{name}.r", leaves[mid:])
        self.net.connect(spl, "doutA", left_cell, left_port, delay=1.0)
        self.net.connect(spl, "doutB", right_cell, right_port, delay=1.0)
        return spl, "din"

    @property
    def input(self) -> Tuple[object, str]:
        """(cell, port) receiving the external clock pulse."""
        return self._root_cell, self._root_port


class SyncShiftRegister:
    """Counterflow-clocked DFF shift register -- conventional RSFQ memory.

    The clock reaches the *last* stage first (larger skew toward the
    input), so each clock pulse shifts the whole word one stage toward the
    output.  This is the storage style whose sequential-only access the
    paper's memory-wall discussion criticises (SuperNPU's 16% utilisation).
    """

    def __init__(self, net: Netlist, name: str, depth: int,
                 stage_skew_ps: float = 25.0):
        if depth < 1:
            raise ConfigurationError("shift register depth must be >= 1")
        self.net = net
        self.name = name
        self.depth = depth
        self.dffs = [net.add(library.DFF(f"{name}.dff{i}"))
                     for i in range(depth)]
        for a, b in zip(self.dffs, self.dffs[1:]):
            net.connect(a, "dout", b, "din", delay=1.0,
                        jtl_count=DATA_HOP_JTLS)
        self.out_probe = net.add(library.Probe(f"{name}.out"))
        net.connect(self.dffs[-1], "dout", self.out_probe, "din", delay=1.0)
        # Counterflow: the clock reaches the last stage first, so stage i
        # is delayed by (depth-1-i)*skew relative to it -- each clock pulse
        # then moves every bit exactly one stage.
        leaves = [
            (dff, "clk", float(depth - 1 - i) * stage_skew_ps)
            for i, dff in enumerate(self.dffs)
        ]
        self.clock = ClockTree(net, f"{name}.ct", leaves)

    @property
    def data_input(self) -> Tuple[object, str]:
        return self.dffs[0], "din"

    def read_bits(self, clock_times: Sequence[float]) -> List[int]:
        """Decode the output stream against the clock cycles: bit k is 1
        when an output pulse follows clock k (within one period)."""
        clock_times = sorted(clock_times)
        if len(clock_times) < 2:
            raise ConfigurationError("need at least two clock times")
        period = clock_times[1] - clock_times[0]
        bits = []
        for t in clock_times:
            hit = any(t <= out < t + period for out in self.out_probe.times)
            bits.append(1 if hit else 0)
        return bits


class BitSerialAdder:
    """Bit-serial full adder from clocked RSFQ gates, LSB first.

    Structure (two clock phases per bit, carry fed back for the next bit)::

        a,b ──▶ XOR1 ──▶ XOR2 ──▶ sum
           └──▶ AND1     AND2 ◀── carry feedback
                  └─▶ OR ◀┘ └──────────┐
                      └── carry ───────┘

    The conventional synchronous counterpart of what SUSHI computes with a
    single pulse into an SC chain -- and the netlist the paper's ~80%
    wiring-overhead claim is measured on (see
    :func:`clock_overhead_fraction`).
    """

    #: Clock period per bit (ps) -- generous, constraint-clean.
    PERIOD = 400.0
    #: Skew of the second evaluation phase within a cycle.
    PHASE2 = 120.0
    #: Skew of the carry-merge phase within a cycle.
    PHASE3 = 240.0

    def __init__(self, net: Netlist, name: str = "adder"):
        self.net = net
        self.name = name
        add, con = net.add, net.connect
        self.a_spl = add(library.SPL(f"{name}.a_spl"))
        self.b_spl = add(library.SPL(f"{name}.b_spl"))
        self.xor1 = add(XOR2(f"{name}.xor1"))
        self.and1 = add(AND2(f"{name}.and1"))
        con(self.a_spl, "doutA", self.xor1, "dinA", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.a_spl, "doutB", self.and1, "dinA", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.b_spl, "doutA", self.xor1, "dinB", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.b_spl, "doutB", self.and1, "dinB", delay=1.0,
            jtl_count=DATA_HOP_JTLS)

        self.x_spl = add(library.SPL(f"{name}.x_spl"))
        self.xor2 = add(XOR2(f"{name}.xor2"))
        self.and2 = add(AND2(f"{name}.and2"))
        con(self.xor1, "dout", self.x_spl, "din", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.x_spl, "doutA", self.xor2, "dinA", delay=1.0)
        con(self.x_spl, "doutB", self.and2, "dinA", delay=1.0)

        self.or1 = add(OR2(f"{name}.or1"))
        con(self.and1, "dout", self.or1, "dinA", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.and2, "dout", self.or1, "dinB", delay=1.0,
            jtl_count=DATA_HOP_JTLS)

        # Carry: observe and feed back into the phase-2 gates (arrives
        # well before the next cycle's PHASE2 clock).
        self.carry_spl = add(library.SPL3(f"{name}.c_spl"))
        con(self.or1, "dout", self.carry_spl, "din", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        self.carry_probe = add(library.Probe(f"{name}.carry"))
        con(self.carry_spl, "doutA", self.xor2, "dinB", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.carry_spl, "doutB", self.and2, "dinB", delay=1.0,
            jtl_count=DATA_HOP_JTLS)
        con(self.carry_spl, "doutC", self.carry_probe, "din", delay=1.0)

        self.sum_probe = add(library.Probe(f"{name}.sum"))
        con(self.xor2, "dout", self.sum_probe, "din", delay=1.0)

        self.clock = ClockTree(net, f"{name}.ct", [
            (self.xor1, "clk", 0.0),
            (self.and1, "clk", 0.0),
            (self.xor2, "clk", self.PHASE2),
            (self.and2, "clk", self.PHASE2),
            (self.or1, "clk", self.PHASE3),
        ])

    def add_numbers(self, a: int, b: int, bits: int = None) -> int:
        """Run the adder on two non-negative integers; returns the sum.

        Builds a fresh simulator over the netlist, streams the operands
        LSB-first, clocks ``bits + 1`` cycles and decodes the sum pulses.
        """
        if a < 0 or b < 0:
            raise ConfigurationError("operands must be non-negative")
        if bits is None:
            bits = max(a.bit_length(), b.bit_length()) + 1
        sim = Simulator(self.net)
        self.net.reset_state()
        clk_cell, clk_port = self.clock.input
        clock_times = []
        for k in range(bits):
            t0 = 50.0 + k * self.PERIOD
            if (a >> k) & 1:
                sim.schedule_input(self.a_spl, "din", t0)
            if (b >> k) & 1:
                sim.schedule_input(self.b_spl, "din", t0)
            sim.schedule_input(clk_cell, clk_port, t0 + 40.0)
            clock_times.append(t0 + 40.0)
        sim.run()
        if sim.violations:
            raise ConfigurationError(
                f"adder schedule violated constraints: {sim.violations[0]}"
            )
        total = 0
        for k, t in enumerate(clock_times):
            window_end = t + self.PERIOD
            if any(t <= s < window_end for s in self.sum_probe.times):
                total |= 1 << k
        return total


def clock_overhead_fraction(net: Netlist) -> float:
    """Fraction of a synchronous design's JJs spent on clocking/wiring.

    Counts the clock-network cells (anything whose name marks it as part
    of a clock tree), all JTL repeaters on wires, and the splitters that
    exist only to distribute pulses -- the resources the paper's section 3
    calls wiring overhead for timing.
    """
    clock_jj = 0
    logic_jj = 0
    for cell in net.cells.values():
        if ".clk" in cell.name or ".ct" in cell.name:
            clock_jj += cell.JJ_COUNT
        else:
            logic_jj += cell.JJ_COUNT
    wiring_jj = net.wiring_jj_count()
    total = clock_jj + logic_jj + wiring_jj
    if total == 0:
        raise ConfigurationError("empty netlist")
    return (clock_jj + wiring_jj) / total
