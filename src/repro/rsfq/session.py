"""Batched, cache-aware simulation sessions over one netlist.

Building a :class:`~repro.rsfq.simulator.Simulator` is cheap, but the work
around it is not: netlist elaboration, trace plumbing, per-run seeding and
statistics all used to be re-done by every caller that wanted to run the
same circuit many times (yield studies, jitter sweeps, regression
batteries).  :class:`SimulationSession` packages that loop:

* the netlist is elaborated **once** (memoised fan-out table, pre-resolved
  cell indices -- see :meth:`repro.rsfq.netlist.Netlist.elaborate`);
* every run resets circuit state, optionally reseeds the jitter stream,
  and returns a :class:`RunResult` carrying per-run statistics and
  (optionally) a fresh :class:`~repro.rsfq.waveform.PulseTrace`;
* aggregate statistics accumulate across the session for reporting.

Typical use::

    from repro.rsfq import Netlist, SimulationSession, library

    session = SimulationSession(net, queue_backend="sorted")
    results = session.run_batch([
        [("in0", "din", 0.0), ("in0", "din", 50.0)],
        [("in0", "din", 0.0)],
    ])
    assert all(r.stats.violations == 0 for r in results)
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.rsfq.netlist import Netlist
from repro.rsfq.simulator import RunStats, Simulator, Stimulus
from repro.rsfq.waveform import PulseTrace


@dataclass
class RunResult:
    """One session run: execution statistics plus optional artefacts.

    Attributes:
        index: Position of the run within the session (0-based).
        stats: The run's :class:`~repro.rsfq.simulator.RunStats`.
        trace: Pulse trace of the run when the session records traces,
            else ``None``.
        violations: The concrete violation records of the run.
        seed: Jitter seed used for the run (``None`` = session default).
        fault_counts: Per-kind injected-fault totals of the run (empty
            without an active fault model).
    """

    index: int
    stats: RunStats
    trace: Optional[PulseTrace] = None
    violations: list = field(default_factory=list)
    seed: Optional[int] = None
    fault_counts: dict = field(default_factory=dict)


@dataclass
class SessionStats:
    """Aggregate statistics across all runs of a session."""

    runs: int = 0
    total_events: int = 0
    total_pulses: int = 0
    total_violations: int = 0
    total_wall_time_s: float = 0.0
    elaboration_time_s: float = 0.0

    def record(self, stats: RunStats) -> None:
        self.runs += 1
        self.total_events += stats.events
        self.total_pulses += stats.delivered_pulses
        self.total_violations += stats.violations
        self.total_wall_time_s += stats.wall_time_s

    @property
    def events_per_second(self) -> float:
        """Throughput over the session (0 when nothing ran)."""
        if self.total_wall_time_s <= 0:
            return 0.0
        return self.total_events / self.total_wall_time_s


class SimulationSession:
    """Amortise netlist elaboration across many runs of one circuit.

    Args:
        netlist: The circuit under test.
        strict: Forwarded to :class:`~repro.rsfq.simulator.Simulator`.
        jitter_ps: Default wire-delay jitter for every run.
        seed: Default jitter seed (per-run seeds override it).
        record_traces: When True, each run gets a fresh
            :class:`~repro.rsfq.waveform.PulseTrace` attached to its
            :class:`RunResult`.
        queue_backend: Event-queue backend name or factory (see
            :data:`repro.rsfq.events.QUEUE_BACKENDS`).
        parallel_parts: When >= 2, runs execute on the partitioned
            :class:`~repro.rsfq.parallel.ParallelSimulator` with that
            many partitions (results are bit-identical to sequential
            runs at ``jitter_ps=0`` and, with ``jitter_mode="wire"``,
            under jitter too).
        partition_hints: Optional cell -> group hints forwarded to the
            partitioner (e.g. ``GateLevelChip.partition_hints()``).
        jitter_mode: Jitter stream discipline for sequential runs
            (``None`` keeps the engine default: ``"global"`` sequential,
            ``"wire"`` parallel).
        faults: Optional :class:`~repro.rsfq.faults.FaultModel` attached
            to every run's simulator (the model carries its own decision
            seed; reseed it per trial with
            :meth:`~repro.rsfq.faults.FaultModel.reseeded` for
            Monte-Carlo campaigns).
        engine: ``"event"`` (default) runs every stimulus set through
            the discrete-event loop; ``"traced"`` serves repeated
            schedules from the record-once / replay-vectorized trace
            layer (:mod:`repro.rsfq.trace`) with transparent, counted
            fallback to the event engine whenever replay cannot
            reproduce the run bit-for-bit (``until=`` horizons,
            parallel sessions, fault triggers, ordering divergence).
        trace_cache: Optional on-disk cache for compiled traces when
            ``engine="traced"`` -- ``None`` (in-memory only),
            ``"default"`` (the shared plan-cache root), or a
            :class:`~repro.ssnn.compile.PlanCache` instance (traces are
            namespaced under their own artifact kind, so plans and
            traces share a root safely).
    """

    def __init__(
        self,
        netlist: Netlist,
        strict: bool = False,
        jitter_ps: float = 0.0,
        seed: Optional[int] = None,
        record_traces: bool = False,
        queue_backend: Union[str, Callable] = "heap",
        parallel_parts: int = 0,
        partition_hints: Optional[dict] = None,
        jitter_mode: Optional[str] = None,
        faults=None,
        engine: Optional[str] = None,
        trace_cache=None,
    ):
        if engine not in (None, "event", "traced"):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown engine '{engine}'; "
                "available: ('event', 'traced')"
            )
        self.engine = engine or "event"
        self._trace_cache = trace_cache
        self._trace_engine = None
        self.netlist = netlist
        self.strict = strict
        self.jitter_ps = float(jitter_ps)
        self.seed = seed
        self.record_traces = record_traces
        self.queue_backend = queue_backend
        self.parallel_parts = int(parallel_parts)
        self.partition_hints = partition_hints
        self.jitter_mode = jitter_mode
        self.faults = faults
        self.stats = SessionStats()
        start = _time.perf_counter()
        netlist.elaborate()  # warm the memoised fan-out table
        self.stats.elaboration_time_s = _time.perf_counter() - start
        self._sim: Optional[Simulator] = None
        self._runs = 0

    def _make_simulator(self, trace, run_seed):
        if self.parallel_parts >= 2:
            from repro.rsfq.parallel import ParallelSimulator

            kwargs = {}
            if self.jitter_mode is not None:
                kwargs["jitter_mode"] = self.jitter_mode
            return ParallelSimulator(
                self.netlist,
                parts=self.parallel_parts,
                hints=self.partition_hints,
                strict=self.strict,
                trace=trace,
                jitter_ps=self.jitter_ps,
                seed=run_seed,
                queue_backend=self.queue_backend,
                faults=self.faults,
                **kwargs,
            )
        kwargs = {}
        if self.jitter_mode is not None:
            kwargs["jitter_mode"] = self.jitter_mode
        return Simulator(
            self.netlist,
            strict=self.strict,
            trace=trace,
            jitter_ps=self.jitter_ps,
            seed=run_seed,
            queue_backend=self.queue_backend,
            faults=self.faults,
            **kwargs,
        )

    def _traced_engine(self):
        """The lazily-built :class:`~repro.rsfq.trace.TraceEngine`."""
        if self._trace_engine is None:
            from repro.rsfq.trace import TraceEngine

            cache = self._trace_cache
            if cache is not None:
                from repro.ssnn.compile import resolve_plan_cache

                cache = resolve_plan_cache(cache)
            self._trace_engine = TraceEngine(self.netlist, cache=cache)
        return self._trace_engine

    def trace_stats(self) -> dict:
        """Record/replay/fallback/cache counters of the traced engine
        (all zeros when ``engine="event"`` or nothing ran yet)."""
        if self._trace_engine is None:
            return {"records": 0, "replays": 0, "fallbacks": 0,
                    "cache_hits": 0, "cache_misses": 0}
        return dict(self._trace_engine.stats)

    def _run_traced(
        self,
        stimuli: Sequence[Stimulus],
        until: Optional[float],
        max_events: int,
        run_seed,
    ) -> Optional[RunResult]:
        """Serve one run from the trace layer, or None for fallback."""
        if until is not None or self.parallel_parts >= 2:
            from repro.rsfq.trace import GLOBAL_TRACE_COUNTERS

            GLOBAL_TRACE_COUNTERS.bump("fallbacks")
            return None
        engine = self._traced_engine()
        start = _time.perf_counter()
        episode = engine.replay_episode(
            (tuple(stimuli),),
            jitter_ps=self.jitter_ps,
            seed=run_seed,
            jitter_mode=self.jitter_mode or "global",
            faults=self.faults,
            strict=self.strict,
            max_events=max_events,
            want_trace=self.record_traces,
        )
        wall = _time.perf_counter() - start
        if episode is None:
            return None
        stats = RunStats(
            events=episode.events,
            final_time_ps=episode.final_time_ps,
            delivered_pulses=episode.events,
            violations=len(episode.violations),
            wall_time_s=wall,
        )
        self.stats.record(stats)
        result = RunResult(
            index=self._runs,
            stats=stats,
            trace=episode.trace,
            violations=list(episode.violations),
            seed=run_seed,
            fault_counts=dict(episode.fault_counts),
        )
        self._runs += 1
        return result

    # -- execution ---------------------------------------------------------

    def run(
        self,
        stimuli: Sequence[Stimulus],
        until: Optional[float] = None,
        max_events: int = 10_000_000,
        seed: Optional[int] = None,
    ) -> RunResult:
        """Execute one stimulus set on a freshly-reset circuit.

        ``seed`` overrides the session's jitter seed for this run only;
        passing the same seed twice yields byte-identical traces (the
        determinism contract the golden-trace tests rely on).
        """
        run_seed = self.seed if seed is None else seed
        if self.engine == "traced":
            result = self._run_traced(stimuli, until, max_events,
                                      run_seed)
            if result is not None:
                return result
        trace = PulseTrace() if self.record_traces else None
        # Jittered runs get a fresh simulator so each run's jitter stream
        # starts from its seed (per-run determinism); ideal runs reuse one
        # cached simulator.  The fan-out table is shared via the netlist
        # memo either way, so both paths skip re-elaboration.
        fresh = (
            self._sim is None
            or seed is not None
            or trace is not None
            or self.jitter_ps > 0.0
        )
        if fresh:
            sim = self._make_simulator(trace, run_seed)
            if seed is None and trace is None and self.jitter_ps == 0.0:
                self._sim = sim
        else:
            sim = self._sim
        sim.reset()
        for cell, port, time in stimuli:
            sim.schedule_input(cell, port, time)
        start = _time.perf_counter()
        final = sim.run(until=until, max_events=max_events)
        wall = _time.perf_counter() - start
        stats = RunStats(
            events=sim.events_processed,
            final_time_ps=final,
            delivered_pulses=sim.delivered_pulses,
            violations=len(sim.violations),
            wall_time_s=wall,
        )
        self.stats.record(stats)
        result = RunResult(
            index=self._runs,
            stats=stats,
            trace=trace,
            violations=list(sim.violations),
            seed=run_seed,
            fault_counts=sim.fault_counts(),
        )
        self._runs += 1
        return result

    def run_batch(
        self,
        batches: Iterable[Sequence[Stimulus]],
        until: Optional[float] = None,
        max_events: int = 10_000_000,
        seeds: Optional[Sequence[Optional[int]]] = None,
    ) -> List[RunResult]:
        """Execute several stimulus sets, one :class:`RunResult` each.

        ``seeds`` (when given) supplies one jitter seed per run -- e.g.
        ``seeds=range(trials)`` for a Monte-Carlo yield study.
        """
        batches = list(batches)
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != len(batches):
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    f"got {len(seeds)} seeds for {len(batches)} runs"
                )
        return [
            self.run(
                stimuli,
                until=until,
                max_events=max_events,
                seed=None if seeds is None else seeds[i],
            )
            for i, stimuli in enumerate(batches)
        ]
