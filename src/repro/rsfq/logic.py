"""Clocked RSFQ logic gates and synchronous building blocks.

SUSHI's motivation (paper section 3) contrasts its asynchronous design
with conventional *synchronous* RSFQ logic, where every gate is clocked
and the clock distribution network consumes ~80% of the design's wiring
resources.  To measure that claim from real netlists (rather than assert
it), this module provides the standard clocked RSFQ gate set -- AND2,
OR2, XOR2, NOT -- plus a clock-tree builder and two classic synchronous
blocks (shift register, bit-serial adder) in :mod:`repro.rsfq.synchronous`.

Clocked RSFQ gates follow the universal convention: data pulses arriving
during a clock period set internal flux states; the clock pulse evaluates
the function, emits the result pulse (if true), and clears the state --
every gate is a gate-level pipeline stage.
"""

from __future__ import annotations

from repro.rsfq import constraints as K
from repro.rsfq.cells import Cell


class _ClockedGate(Cell):
    """Shared machinery: latch a/b arrivals, evaluate and clear on clk."""

    __slots__ = ("got_a", "got_b")

    INPUTS = ("dinA", "dinB", "clk")
    OUTPUTS = ("dout",)
    CONSTRAINTS = {
        ("dinA", "clk"): K.DFF_DIN_TO_CLK,
        ("dinB", "clk"): K.DFF_DIN_TO_CLK,
        ("clk", "clk"): K.MIN_PULSE_INTERVAL,
        ("clk", "dinA"): K.CB_CROSS_INTERVAL,
        ("clk", "dinB"): K.CB_CROSS_INTERVAL,
    }

    def __init__(self, name: str):
        super().__init__(name)
        self.got_a = False
        self.got_b = False

    def evaluate(self) -> bool:
        raise NotImplementedError

    def on_pulse(self, port, time, sim):
        if port == "dinA":
            self.got_a = True
        elif port == "dinB":
            self.got_b = True
        else:  # clk: evaluate, emit, clear
            if self.evaluate():
                self.emit("dout", time + self.DELAY_PS, sim)
            self.got_a = False
            self.got_b = False

    def reset_state(self):
        super().reset_state()
        self.got_a = False
        self.got_b = False


class AND2(_ClockedGate):
    """Clocked AND: emits on clk when both inputs pulsed this period."""

    __slots__ = ()

    JJ_COUNT = 11
    AREA_UM2 = 5240.0
    DELAY_PS = 7.8
    STATIC_POWER_NW = 300.0

    def evaluate(self) -> bool:
        return self.got_a and self.got_b


class OR2(_ClockedGate):
    """Clocked OR: emits on clk when either input pulsed this period."""

    __slots__ = ()

    JJ_COUNT = 9
    AREA_UM2 = 4620.0
    DELAY_PS = 7.2
    STATIC_POWER_NW = 260.0

    def evaluate(self) -> bool:
        return self.got_a or self.got_b


class XOR2(_ClockedGate):
    """Clocked XOR: emits on clk when exactly one input pulsed."""

    __slots__ = ()

    JJ_COUNT = 10
    AREA_UM2 = 4930.0
    DELAY_PS = 7.5
    STATIC_POWER_NW = 280.0

    def evaluate(self) -> bool:
        return self.got_a != self.got_b


class NOT(_ClockedGate):
    """Clocked inverter: emits on clk when dinA did *not* pulse.

    (RSFQ NOT gates are inherently clocked -- absence of a pulse can only
    be detected against a clock reference.)
    """

    __slots__ = ()

    INPUTS = ("dinA", "clk")
    CONSTRAINTS = {
        ("dinA", "clk"): K.DFF_DIN_TO_CLK,
        ("clk", "clk"): K.MIN_PULSE_INTERVAL,
        ("clk", "dinA"): K.CB_CROSS_INTERVAL,
    }
    JJ_COUNT = 10
    AREA_UM2 = 4930.0
    DELAY_PS = 7.5
    STATIC_POWER_NW = 280.0

    def evaluate(self) -> bool:
        return not self.got_a


#: The clocked gate set (for library-wide tests and accounting).
CLOCKED_GATES = (AND2, OR2, XOR2, NOT)
