"""Netlist partitioning for conservative parallel discrete-event simulation.

SUSHI's NPEs are asynchronous and pulse-driven *by construction* -- there
is no global clock coupling them -- so a gate-level chip netlist decomposes
naturally along the inter-NPE / mesh wires.  This module cuts a
:class:`~repro.rsfq.netlist.Netlist` into partitions suitable for the
:class:`~repro.rsfq.parallel.ParallelSimulator`:

* **Hinted partitioning** -- structural builders
  (:class:`repro.neuro.chip.GateLevelChip`,
  :mod:`repro.neuro.structure`) expose a ``cell name -> group`` hint map;
  hinted groups are kept intact and packed onto the requested number of
  partitions, so cuts fall exactly on the inter-NPE wires the architecture
  provides.
* **Fallback heuristic** -- without hints, a min-cut-flavoured
  graph-growing pass (greedy BFS accretion over zero-delay-contracted
  clusters) produces balanced partitions whose cuts avoid dense regions.

Every cut wire must have strictly positive delay: the wire delays across
cuts are the *lookahead* of the conservative synchronisation protocol
(Chandy--Misra null messages advance a receiver's clock by at least the
channel's minimum wire delay).  Zero-delay wires are therefore contracted
-- their endpoints always land in the same partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rsfq.netlist import Netlist, Wire


@dataclass(frozen=True)
class Partition:
    """One partition: an index plus the names of the cells it owns."""

    index: int
    cells: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.cells)


@dataclass(frozen=True)
class PartitionPlan:
    """A complete cut of a netlist for parallel simulation.

    Attributes:
        partitions: The partitions, indexed ``0..len-1``.
        owner: Cell name -> partition index.
        cut_wires: Wires whose endpoints live in different partitions.
        channel_lookahead: ``(src_partition, dst_partition)`` -> minimum
            wire delay over that channel's cut wires (the conservative
            lookahead for null-message time advancement).
        min_lookahead: Smallest channel lookahead (global safe window).
            ``inf`` when nothing is cut.
    """

    partitions: Tuple[Partition, ...]
    owner: Dict[str, int]
    cut_wires: Tuple[Wire, ...]
    channel_lookahead: Dict[Tuple[int, int], float]
    min_lookahead: float

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def channels_into(self, dst: int) -> List[Tuple[int, float]]:
        """``(src_partition, lookahead)`` pairs feeding partition ``dst``."""
        return [
            (src, lookahead)
            for (src, d), lookahead in self.channel_lookahead.items()
            if d == dst
        ]

    def summary(self) -> str:
        sizes = ", ".join(str(len(p)) for p in self.partitions)
        return (
            f"{self.n_partitions} partitions (cells: {sizes}); "
            f"{len(self.cut_wires)} cut wires; "
            f"min lookahead {self.min_lookahead:.2f} ps"
        )


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

class _UnionFind:
    def __init__(self, items):
        self.parent = {item: item for item in items}

    def find(self, item):
        parent = self.parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _zero_delay_clusters(net: Netlist) -> Dict[str, List[str]]:
    """Contract zero-delay wires: their endpoints must co-reside (a cut
    across them would have zero lookahead and stall the null-message
    protocol).  Returns ``root -> member cells`` in insertion order."""
    uf = _UnionFind(net.cells)
    for wire in net.wires:
        if wire.delay <= 0.0:
            uf.union(wire.src, wire.dst)
    clusters: Dict[str, List[str]] = {}
    for name in net.cells:  # insertion order keeps plans deterministic
        clusters.setdefault(uf.find(name), []).append(name)
    return clusters


def _pack_groups(
    groups: Sequence[Tuple[str, List[str]]], parts: int
) -> List[List[str]]:
    """Pack named groups onto ``parts`` bins, balancing cell counts.

    Greedy largest-first into the least-loaded bin; ties resolve by bin
    index so plans are deterministic.  Groups are never split.
    """
    bins: List[List[str]] = [[] for _ in range(parts)]
    loads = [0] * parts
    order = sorted(
        range(len(groups)), key=lambda i: (-len(groups[i][1]), groups[i][0])
    )
    for i in order:
        _, members = groups[i]
        target = min(range(parts), key=lambda b: (loads[b], b))
        bins[target].extend(members)
        loads[target] += len(members)
    return [b for b in bins if b]


def _grow_partitions(
    net: Netlist, clusters: Dict[str, List[str]], parts: int
) -> List[List[str]]:
    """Fallback min-cut heuristic: greedy BFS graph growing.

    Clusters (zero-delay-contracted super-nodes) are accreted breadth-first
    from a seed until a partition reaches its share of the cells, then a
    new partition starts from the next unvisited cluster.  BFS accretion
    keeps partitions contiguous in the wire graph, which is what keeps the
    cut small on mesh/tree-shaped netlists.
    """
    root_of: Dict[str, str] = {}
    for root, members in clusters.items():
        for name in members:
            root_of[name] = root
    # Cluster adjacency (over positive-delay wires only; zero-delay wires
    # are intra-cluster by construction).
    adjacency: Dict[str, List[str]] = {root: [] for root in clusters}
    for wire in net.wires:
        a, b = root_of[wire.src], root_of[wire.dst]
        if a != b:
            adjacency[a].append(b)
            adjacency[b].append(a)

    total = len(net.cells)
    target = max(1, -(-total // parts))  # ceil division
    assignments: List[List[str]] = []
    visited = set()
    pending = list(clusters)  # insertion order: deterministic seeds
    for seed in pending:
        if seed in visited:
            continue
        frontier = [seed]
        visited.add(seed)
        current: List[str] = []
        while frontier:
            root = frontier.pop(0)
            current.extend(clusters[root])
            if len(current) >= target and len(assignments) < parts - 1:
                assignments.append(current)
                current = []
            for neighbour in adjacency[root]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append(neighbour)
        if current:
            assignments.append(current)
    # More pieces than requested (disconnected graphs): merge smallest.
    while len(assignments) > parts:
        assignments.sort(key=len)
        smallest = assignments.pop(0)
        assignments[0] = smallest + assignments[0]
    return assignments


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def partition_netlist(
    net: Netlist,
    parts: int = 2,
    hints: Optional[Mapping[str, object]] = None,
) -> PartitionPlan:
    """Cut ``net`` into at most ``parts`` partitions for parallel simulation.

    Args:
        net: The netlist to cut.
        parts: Requested partition count (the plan may contain fewer when
            the netlist is too small or too strongly connected).
        hints: Optional ``cell name -> group key`` mapping (e.g. from
            :meth:`repro.neuro.chip.GateLevelChip.partition_hints`).
            Cells sharing a group key are kept in one partition; unknown
            cells fall into a shared ``None`` group.  Without hints a
            BFS graph-growing heuristic is used.

    Raises :class:`~repro.errors.ConfigurationError` for a non-positive
    ``parts`` or hints that conflict with zero-delay wires (endpoints of a
    zero-delay wire must share a partition -- the cut would otherwise have
    zero lookahead).
    """
    if parts < 1:
        raise ConfigurationError("partition count must be >= 1")
    if len(net.cells) == 0:
        raise ConfigurationError(f"netlist '{net.name}' has no cells")
    parts = min(parts, len(net.cells))

    clusters = _zero_delay_clusters(net)

    if hints is not None:
        # Merge hinted groups with zero-delay clusters: every cluster maps
        # to the group of its members (which must agree).
        group_members: Dict[object, List[str]] = {}
        cluster_order: List[Tuple[object, List[str]]] = []
        for root, members in clusters.items():
            groups = {hints.get(name) for name in members}
            if len(groups) > 1:
                raise ConfigurationError(
                    "partition hints split a zero-delay cluster "
                    f"(cells {members[:4]}... span groups {sorted(map(str, groups))}); "
                    "zero-delay wires cannot be cut"
                )
            group = groups.pop()
            if group not in group_members:
                group_members[group] = []
                cluster_order.append((str(group), group_members[group]))
            group_members[group].extend(members)
        assignments = _pack_groups(cluster_order, parts)
    else:
        assignments = _grow_partitions(net, clusters, parts)

    # Canonical cell order within each partition (netlist insertion order)
    # keeps local event tie-breaking deterministic.
    position = {name: i for i, name in enumerate(net.cells)}
    assignments = [sorted(cells, key=position.__getitem__)
                   for cells in assignments]
    assignments.sort(key=lambda cells: position[cells[0]])

    partitions = tuple(
        Partition(index=i, cells=tuple(cells))
        for i, cells in enumerate(assignments)
    )
    owner = {
        name: part.index for part in partitions for name in part.cells
    }

    cut_wires: List[Wire] = []
    channel_lookahead: Dict[Tuple[int, int], float] = {}
    for wire in net.wires:
        src_part, dst_part = owner[wire.src], owner[wire.dst]
        if src_part == dst_part:
            continue
        if wire.delay <= 0.0:  # pragma: no cover - excluded by contraction
            raise ConfigurationError(
                f"cut wire {wire.src}.{wire.src_port} -> "
                f"{wire.dst}.{wire.dst_port} has zero delay (no lookahead)"
            )
        cut_wires.append(wire)
        key = (src_part, dst_part)
        current = channel_lookahead.get(key)
        if current is None or wire.delay < current:
            channel_lookahead[key] = wire.delay

    min_lookahead = (
        min(channel_lookahead.values()) if channel_lookahead else float("inf")
    )
    return PartitionPlan(
        partitions=partitions,
        owner=owner,
        cut_wires=tuple(cut_wires),
        channel_lookahead=channel_lookahead,
        min_lookahead=min_lookahead,
    )
