"""Partitioned parallel gate-level simulation (conservative synchronisation).

SUSHI's NPEs are asynchronous and pulse-driven by construction -- no
global clock couples them -- so a chip netlist cut along the inter-NPE /
mesh wires (:mod:`repro.rsfq.partition`) decomposes into logical
processes that only interact through positive-delay wires.  This module
runs one event loop per partition under a conservative Chandy--Misra
style protocol:

* **Lookahead** -- each cut channel's lookahead is the minimum wire delay
  across that cut (:attr:`~repro.rsfq.partition.PartitionPlan.channel_lookahead`).
  With jitter enabled the wire delay is no longer a lower bound (draws
  are clamped at zero), so the lookahead falls back to the minimum
  *emission* delay (``DELAY_PS``) of the driving cells -- an output pulse
  can never leave earlier than its cell's propagation delay.
* **Null-message time advancement** -- instead of point-to-point null
  messages, every round recomputes all channel clocks at a barrier from
  the partitions' queue heads (``clock(u->v) = earliest possible activity
  of u + lookahead(u->v)``), which is exactly the information an
  all-to-all null-message exchange would carry.  Each partition then
  processes every event strictly below its channel-clock bound.
* **Deterministic merge** -- cross-partition pulses collect in
  per-partition outboxes during a round and are delivered at the barrier
  in (source partition, emission order); merged traces / violations /
  margins are ordered deterministically.  Results are independent of the
  executor (``"serial"`` or ``"thread"``) and of the partition count.

Equivalence to the sequential :class:`~repro.rsfq.simulator.Simulator`
is *physical*: every cell sees the identical pulse sequence on its
ports, so per-channel pulse times, violations, margins and final state
are bit-identical.  The only freedom is the interleaving of events that
occur at exactly the same simulated time in *different* partitions (the
sequential engine orders those by global scheduling order, the parallel
engine by partition index); no cell behaviour can depend on that order.
Jittered runs require ``jitter_mode="wire"`` (the default here): each
wire owns an independent, stably-seeded stream
(:func:`~repro.rsfq.simulator.wire_jitter_rng`), consumed in pulse order
along that wire, so the draws do not depend on which partition the wire
landed in.  The legacy ``"global"`` single-stream mode consumes draws in
global delivery order and therefore cannot be reproduced by any
partitioned execution -- requesting it raises.

CPython's GIL means the ``"thread"`` executor buys little wall-clock on
pure-Python cells; it exists to exercise the protocol and because the
round structure is what a free-threaded / multiprocess backend would
reuse unchanged.  The partitioned engine's value today is the protocol
itself (verified bit-identical) plus windowed execution; see
``docs/ENGINE.md``.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeoutError
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    WorkerTimeoutError,
)
from repro.rsfq.cells import Cell, Violation
from repro.rsfq.faults import FaultModel, InjectionRecord, canonical_log
from repro.rsfq.netlist import Netlist
from repro.rsfq.partition import PartitionPlan, partition_netlist
from repro.rsfq.simulator import (
    RunStats,
    Simulator,
    Stimulus,
    margin_report_rows,
    merge_margins,
)
from repro.rsfq.waveform import PulseTrace

_INF = float("inf")

#: Tolerance for the runtime lookahead guard (matches the scale of
#: repro.rsfq.constraints.INTERVAL_EPSILON).
_LOOKAHEAD_EPSILON = 1e-9

EXECUTORS = ("serial", "thread")

#: Worker-timeout policies (see :class:`ParallelSimulator`).
TIMEOUT_POLICIES = ("fallback", "raise")


class _LocalEngine(Simulator):
    """One partition's event loop: a :class:`Simulator` whose delivery is
    ownership-aware (local destinations go to the local queue, remote
    destinations to the outbox for barrier delivery)."""

    def __init__(self, netlist: Netlist, part_index: int,
                 owner_of: Sequence[int],
                 send_lookahead: Mapping[int, float], **kwargs):
        #: This partition's index.
        self._part_index = part_index
        #: cell_idx -> owning partition index (shared, read-only).
        self._owner_of = owner_of
        #: dst partition -> claimed lookahead of the (me -> dst) channel
        #: (runtime guard against partitionings that break the protocol).
        self._send_lookahead = send_lookahead
        #: Cross-partition pulses emitted this round:
        #: ``(dst_partition, time, dst_idx, dst_port_idx)`` in emission order.
        self.outbox: List[Tuple[int, float, int, int]] = []
        super().__init__(netlist, **kwargs)

    # -- ownership-aware delivery (rebound by Simulator._bind_deliver) ----

    def _send_remote(self, dst_part: int, time: float,
                     dst_idx: int, dst_port_idx: int) -> None:
        lookahead = self._send_lookahead.get(dst_part, 0.0)
        if time + _LOOKAHEAD_EPSILON < self.now + lookahead:
            raise ConfigurationError(
                f"lookahead violation on channel {self._part_index} -> "
                f"{dst_part}: pulse arrives at {time} ps but the channel "
                f"promised now+{lookahead} ps (now={self.now}); the "
                "partitioning cut a faster path than its lookahead claims"
            )
        self.outbox.append((dst_part, time, dst_idx, dst_port_idx))

    def _deliver_ideal(self, cell: Cell, port: str, time: float) -> None:
        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        owner_of = self._owner_of
        me = self._part_index
        push = self.queue.push
        for dst_idx, dst_port_idx, delay, _wid in routes:
            if owner_of[dst_idx] == me:
                push(time + delay, dst_idx, dst_port_idx)
            else:
                self._send_remote(owner_of[dst_idx], time + delay,
                                  dst_idx, dst_port_idx)

    def _deliver_jitter_wire(self, cell: Cell, port: str, time: float) -> None:
        from repro.rsfq.simulator import wire_jitter_rng

        routes = self._fanout.routes_idx.get((cell.name, port))
        if not routes:
            return
        owner_of = self._owner_of
        me = self._part_index
        push = self.queue.push
        sigma = self.jitter_ps
        rngs = self._wire_rngs
        fanout = self._fanout
        for dst_idx, dst_port_idx, delay, wid in routes:
            rng = rngs.get(wid)
            if rng is None:
                rng = rngs[wid] = wire_jitter_rng(
                    self._seed, fanout.wire_key(wid)
                )
            jittered = delay + rng.gauss(0.0, sigma)
            if jittered < 0.0:
                jittered = 0.0
            if owner_of[dst_idx] == me:
                push(time + jittered, dst_idx, dst_port_idx)
            else:
                self._send_remote(owner_of[dst_idx], time + jittered,
                                  dst_idx, dst_port_idx)

    def _deliver_jitter_global(self, cell, port, time):  # pragma: no cover
        raise ConfigurationError(
            "jitter_mode='global' cannot run partitioned (single stream "
            "consumed in global delivery order); use jitter_mode='wire'"
        )

    def _dispatch_entry(self, entry, dst_idx: int) -> None:
        """Ownership-aware push of one fault-processed queue entry.

        ``dst_idx`` is the *real* destination cell index -- ``entry[1]``
        may address a flux-trap proxy, whose index is identical in every
        partition's cell view (the view layout is a pure function of the
        shared fan-out table and fault model), so proxy entries cross
        partitions safely.
        """
        owner = self._owner_of[dst_idx]
        if owner == self._part_index:
            self.queue.push(*entry)
        else:
            self._send_remote(owner, entry[0], entry[1], entry[2])

    # -- windowed execution ------------------------------------------------

    def run_window(self, bound: float, until: float, budget: int) -> int:
        """Process local events with ``time < bound`` and ``time <= until``.

        ``bound`` is the conservative channel-clock bound (no future
        cross-partition arrival can be earlier).  Returns the number of
        events processed; raises through :data:`budget` exhaustion with
        runnable work pending, mirroring ``Simulator.run``'s guard.
        """
        queue = self.queue
        cells = self._cells_view
        ports = self._ports_view
        pop = queue.pop
        peek = queue.peek_time
        trace = self.trace
        processed = 0
        try:
            while queue:
                head = peek()
                if head >= bound or head > until:
                    break
                if processed >= budget:
                    raise ConfigurationError(
                        "simulation exceeded the event budget; suspected "
                        "feedback oscillation in the netlist"
                    )
                time, _seq, ci, pi = pop()
                self.now = time
                cell = cells[ci]
                port = ports[ci][pi]
                if trace is not None:
                    trace.record(cell.name, port, time)
                cell.receive(port, time, self)
                processed += 1
        finally:
            self.delivered_pulses += processed
            self.events_processed += processed
        return processed


class ParallelSimulator:
    """Partitioned, conservatively-synchronised drop-in for
    :class:`~repro.rsfq.simulator.Simulator`.

    Args:
        netlist: The circuit to simulate (must not grow afterwards).
        parts: Requested partition count (>= 2 for actual partitioning;
            the plan may contain fewer on small netlists).
        hints: Optional ``cell name -> group key`` partition hints (e.g.
            :meth:`repro.neuro.chip.GateLevelChip.partition_hints`).
        plan: Pre-computed :class:`~repro.rsfq.partition.PartitionPlan`
            (overrides ``parts``/``hints``).
        strict / trace / jitter_ps / seed / queue_backend: As on
            :class:`Simulator`.  ``trace`` receives the deterministic
            merge of the per-partition traces after every :meth:`run`.
        jitter_mode: Only ``"wire"`` is supported (see module docs).
        executor: ``"serial"`` (default) or ``"thread"`` -- both produce
            identical results; threads demonstrate the barrier protocol.
        faults: Optional :class:`~repro.rsfq.faults.FaultModel`.  Each
            partition binds its own runtime over the shared model; fault
            decisions are per-wire streams consumed in pulse order, so a
            faulty partitioned run is bit-identical to the sequential
            engine under the same seed (see ``docs/FAULTS.md``).
        worker_timeout_s: Optional per-round wall-clock budget for the
            ``"thread"`` executor's workers.  When a round's workers miss
            the budget the engine waits for them to finish (threads cannot
            be killed safely), records the timeout in
            :attr:`worker_timeouts`, and then applies
            ``on_worker_timeout``.
        on_worker_timeout: ``"fallback"`` (default) degrades to the
            ``"serial"`` executor for the remaining rounds (recorded in
            :attr:`fell_back_to_serial`); ``"raise"`` raises
            :class:`~repro.errors.WorkerTimeoutError` after the round's
            barrier completes, leaving the engine in a consistent,
            resumable state.

    The public surface mirrors ``Simulator``: :meth:`schedule_input`,
    :meth:`run`, :meth:`run_batch`, :meth:`reset`, :attr:`now`,
    :attr:`violations`, :attr:`margins`, :meth:`margin_report`,
    :attr:`events_processed`, :attr:`delivered_pulses` -- so
    :class:`repro.neuro.chip.ChipDriver` and the differential harness
    drive either engine unchanged.
    """

    def __init__(
        self,
        netlist: Netlist,
        parts: int = 2,
        hints: Optional[Mapping[str, object]] = None,
        plan: Optional[PartitionPlan] = None,
        strict: bool = False,
        trace: Optional[PulseTrace] = None,
        jitter_ps: float = 0.0,
        seed: Optional[int] = None,
        queue_backend: Union[str, Callable] = "heap",
        jitter_mode: str = "wire",
        executor: str = "serial",
        faults: Optional[FaultModel] = None,
        worker_timeout_s: Optional[float] = None,
        on_worker_timeout: str = "fallback",
    ):
        if jitter_mode != "wire":
            raise ConfigurationError(
                f"ParallelSimulator requires jitter_mode='wire', got "
                f"{jitter_mode!r}: the legacy global jitter stream is "
                "consumed in global delivery order and cannot be "
                "reproduced by a partitioned execution"
            )
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor '{executor}'; available: {list(EXECUTORS)}"
            )
        if on_worker_timeout not in TIMEOUT_POLICIES:
            raise ConfigurationError(
                f"unknown on_worker_timeout '{on_worker_timeout}'; "
                f"available: {list(TIMEOUT_POLICIES)}"
            )
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ConfigurationError(
                f"worker_timeout_s must be > 0, got {worker_timeout_s}"
            )
        self.netlist = netlist
        self.strict = strict
        self.trace = trace
        self.jitter_ps = float(jitter_ps)
        self.executor = executor
        self.faults = faults
        self.worker_timeout_s = worker_timeout_s
        self.on_worker_timeout = on_worker_timeout
        #: Rounds whose thread workers missed ``worker_timeout_s``.
        self.worker_timeouts = 0
        #: True once a worker timeout degraded execution to the serial
        #: executor (the self-healing path; see ``docs/FAULTS.md``).
        self.fell_back_to_serial = False
        self.plan = plan if plan is not None else partition_netlist(
            netlist, parts=parts, hints=hints
        )
        self._fanout = netlist.elaborate()
        self._now = 0.0

        # cell_idx -> owning partition (dense array for the hot path).
        owner = self.plan.owner
        self._owner_of = [owner[cell.name] for cell in self._fanout.cell_list]

        # Conservative channel lookaheads.  Ideal wires: minimum wire
        # delay per cut (the plan's figure).  Jittered wires: the draw is
        # clamped at zero, so only the driving cell's emission delay
        # (DELAY_PS) is guaranteed -- use the per-channel minimum of it.
        if self.jitter_ps > 0.0:
            self._channel_lookahead = self._jitter_lookahead()
        else:
            self._channel_lookahead = dict(self.plan.channel_lookahead)

        n_parts = self.plan.n_partitions
        self._engines: List[_LocalEngine] = []
        for p in range(n_parts):
            send_la = {
                dst: la for (src, dst), la in self._channel_lookahead.items()
                if src == p
            }
            self._engines.append(_LocalEngine(
                netlist,
                part_index=p,
                owner_of=self._owner_of,
                send_lookahead=send_la,
                strict=strict,
                trace=None if trace is None else PulseTrace(),
                jitter_ps=jitter_ps,
                seed=seed,
                queue_backend=queue_backend,
                jitter_mode="wire",
                faults=faults,
            ))
        # Restrict each partition's bind-time stuck marks to the cells it
        # owns, so the merged injection log equals the sequential one
        # (stuck *behaviour* stays global in every runtime).
        if faults is not None and faults.active:
            owner_map = self.plan.owner
            for p, engine in enumerate(self._engines):
                runtime = engine._fault_runtime
                if runtime is not None:
                    runtime.restrict_stuck_marks(
                        name for name, op in owner_map.items() if op == p
                    )
        # In-channel (src, lookahead) lists per partition, for the bounds.
        self._channels_into = [
            sorted(
                (src, la) for (src, dst), la in self._channel_lookahead.items()
                if dst == p
            )
            for p in range(n_parts)
        ]
        self._min_in_lookahead = [
            min((la for _src, la in chans), default=None)
            for chans in self._channels_into
        ]
        #: Trace-log high-water marks per partition (merge bookkeeping).
        self._trace_marks = [0] * n_parts
        #: Synchronisation rounds executed (protocol observability).
        self.rounds = 0
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- lookahead ---------------------------------------------------------

    def _jitter_lookahead(self) -> Dict[Tuple[int, int], float]:
        lookahead: Dict[Tuple[int, int], float] = {}
        owner = self.plan.owner
        cells = self._fanout.cells
        for wire in self.plan.cut_wires:
            key = (owner[wire.src], owner[wire.dst])
            emission = float(cells[wire.src].DELAY_PS)
            if emission <= 0.0:
                raise ConfigurationError(
                    f"cut wire {wire.src}.{wire.src_port} -> "
                    f"{wire.dst}.{wire.dst_port} is driven by a "
                    "zero-delay cell: with jitter enabled the channel "
                    "has no positive lookahead -- repartition so the "
                    "cut falls behind a cell with DELAY_PS > 0"
                )
            current = lookahead.get(key)
            if current is None or emission < current:
                lookahead[key] = emission
        return lookahead

    # -- Simulator-compatible surface -------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def violations(self) -> List[Violation]:
        """All recorded violations, ordered deterministically by
        (time, component, ports)."""
        merged: List[Violation] = []
        for engine in self._engines:
            merged.extend(engine.violations)
        merged.sort(key=lambda v: (v.time, v.component, v.port_a, v.port_b))
        return merged

    @property
    def margins(self) -> dict:
        merged: dict = {}
        for engine in self._engines:
            merge_margins(merged, engine.margins)
        return merged

    def margin_report(self):
        """Merged slack report across partitions, tightest first (same
        format as :meth:`Simulator.margin_report`)."""
        return margin_report_rows(self.margins)

    @property
    def events_processed(self) -> int:
        return sum(e.events_processed for e in self._engines)

    @property
    def delivered_pulses(self) -> int:
        return sum(e.delivered_pulses for e in self._engines)

    def partition_summary(self) -> str:
        """Human-readable plan summary (partition sizes, cut, lookahead)."""
        return self.plan.summary()

    def injection_log(self) -> Tuple[InjectionRecord, ...]:
        """The merged, canonically-ordered injection log across partitions
        (compares equal to :meth:`Simulator.injection_log` for the same
        seeded workload; empty without an active fault model)."""
        records: List[InjectionRecord] = []
        for engine in self._engines:
            records.extend(engine.injection_log())
        return canonical_log(records)

    def fault_counts(self) -> Dict[str, int]:
        """Merged per-kind injection totals across partitions."""
        merged: Dict[str, int] = {}
        for engine in self._engines:
            for kind, n in engine.fault_counts().items():
                merged[kind] = merged.get(kind, 0) + n
        return merged

    def schedule_input(self, cell: Union[Cell, str], port: str,
                       time: float) -> None:
        """Inject an external pulse, routed to the owning partition."""
        if self._fanout.version != self.netlist.topology_version:
            raise ConfigurationError(
                "netlist changed after partitioning; build a new "
                "ParallelSimulator (the partition plan is structural)"
            )
        name = cell.name if isinstance(cell, Cell) else cell
        if name not in self._fanout.cells:
            raise ConfigurationError(f"no cell named '{name}'")
        resolved = self._fanout.cells[name]
        if port not in resolved.INPUTS:
            raise ConfigurationError(
                f"cell '{name}' has no input port '{port}'"
            )
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule input for '{name}.{port}' at {time} ps: "
                f"simulation time is already {self._now} ps "
                "(inputs must be scheduled at or after the current time)"
            )
        cell_idx, port_idx = self._fanout.resolve_endpoint(name, port)
        engine = self._engines[self._owner_of[cell_idx]]
        runtime = engine._fault_runtime
        if runtime is not None and runtime.swallow_external(
            cell_idx, name, port, time
        ):
            return
        engine.queue.push(time, cell_idx, port_idx)

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000,
            deadline_s: Optional[float] = None) -> float:
        """Run the conservative round protocol until all queues drain (or
        past ``until``).  Returns the final simulation time.

        ``deadline_s`` mirrors :meth:`Simulator.run`'s wall-clock guard:
        checked at every round boundary (rounds are short), it raises
        :class:`~repro.errors.DeadlineExceededError` when the budget runs
        out with events still pending.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        deadline = (
            None if deadline_s is None
            else _time.perf_counter() + deadline_s
        )
        engines = self._engines
        channels_into = self._channels_into
        min_in = self._min_in_lookahead
        horizon = _INF if until is None else until
        processed_total = 0

        while True:
            if deadline is not None and _time.perf_counter() > deadline:
                raise DeadlineExceededError(
                    f"partitioned simulation exceeded its {deadline_s} s "
                    f"wall-clock deadline after {self.rounds} rounds "
                    f"(events still pending)"
                )
            heads = [
                e.queue.peek_time() if e.queue else None for e in engines
            ]
            live = [h for h in heads if h is not None]
            if not live:
                break
            gvt = min(live)
            if gvt > horizon:
                break
            if processed_total >= max_events:
                raise ConfigurationError(
                    f"simulation exceeded {max_events} events; suspected "
                    "feedback oscillation in the netlist"
                )
            # Earliest possible future activity per partition: its own
            # queue head, or (for arrivals) gvt + its minimum in-channel
            # lookahead.  Both are conservative lower bounds.
            activity = []
            for p, head in enumerate(heads):
                arrival_floor = (
                    _INF if min_in[p] is None else gvt + min_in[p]
                )
                if head is None:
                    activity.append(arrival_floor)
                else:
                    activity.append(min(head, arrival_floor))
            # Channel clocks: partition p may process events strictly
            # below min over in-channels of (activity[src] + lookahead).
            bounds = []
            for p in range(len(engines)):
                bound = _INF
                for src, lookahead in channels_into[p]:
                    clock = activity[src] + lookahead
                    if clock < bound:
                        bound = clock
                bounds.append(bound)

            budget = max_events - processed_total
            timed_out = False
            if self.executor == "thread" and len(engines) > 1:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=len(engines),
                        thread_name_prefix="rsfq-lp",
                    )
                futures = [
                    self._pool.submit(
                        engine.run_window, bounds[p], horizon, budget
                    )
                    for p, engine in enumerate(engines)
                ]
                if self.worker_timeout_s is None:
                    counts = [f.result() for f in futures]
                else:
                    counts, timed_out = self._collect_with_timeout(futures)
            else:
                counts = [
                    engine.run_window(bounds[p], horizon, budget)
                    for p, engine in enumerate(engines)
                ]
            processed_total += sum(counts)
            self.rounds += 1

            # Barrier: deliver cross-partition pulses in deterministic
            # (source partition, emission order) -- the merge step.
            self._deliver_outboxes()

            if timed_out:
                self.worker_timeouts += 1
                if self.on_worker_timeout == "raise":
                    raise WorkerTimeoutError(
                        f"round {self.rounds} thread workers exceeded the "
                        f"{self.worker_timeout_s} s budget; the round's "
                        "barrier completed, so the engine is consistent "
                        "and resumable"
                    )
                # Self-heal: degrade to the serial executor for the
                # remaining rounds (results are identical by protocol).
                self.executor = "serial"
                self.fell_back_to_serial = True

        self._now = max(self._now, *(e.now for e in engines))
        if until is not None and until > self._now:
            self._now = until
        if self.trace is not None:
            self._merge_trace()
        return self._now

    def _deliver_outboxes(self) -> None:
        """Barrier delivery of every partition's cross-partition pulses,
        in deterministic (source partition, emission order)."""
        engines = self._engines
        for engine in engines:
            if engine.outbox:
                for dst_part, time, dst_idx, dst_port_idx in engine.outbox:
                    engines[dst_part].queue.push(
                        time, dst_idx, dst_port_idx
                    )
                engine.outbox.clear()

    def _collect_with_timeout(self, futures):
        """Collect the round's worker results under ``worker_timeout_s``.

        Python threads cannot be cancelled, so a straggler is *always*
        waited for (abandoning it would race the barrier's shared-state
        merge); the timeout only decides whether the round is *flagged* so
        the configured policy can raise or degrade afterwards.
        """
        deadline = _time.perf_counter() + self.worker_timeout_s
        counts = []
        timed_out = False
        for future in futures:
            remaining = deadline - _time.perf_counter()
            try:
                counts.append(future.result(timeout=max(remaining, 0.0)))
            except _FutureTimeoutError:
                timed_out = True
                counts.append(future.result())  # wait the straggler out
        return counts, timed_out

    def run_batch(
        self,
        batches: Iterable[Sequence[Stimulus]],
        until: Optional[float] = None,
        max_events: int = 10_000_000,
        deadline_s: Optional[float] = None,
    ) -> List[RunStats]:
        """Batched execution with reset between runs (see
        :meth:`Simulator.run_batch`: every run replays from the seed;
        vary the seed for Monte-Carlo sampling)."""
        stats: List[RunStats] = []
        for stimuli in batches:
            self.reset()
            for cell, port, time in stimuli:
                self.schedule_input(cell, port, time)
            events_before = self.events_processed
            start = _time.perf_counter()
            final = self.run(
                until=until, max_events=max_events, deadline_s=deadline_s
            )
            wall = _time.perf_counter() - start
            stats.append(RunStats(
                events=self.events_processed - events_before,
                final_time_ps=final,
                delivered_pulses=self.delivered_pulses,
                violations=len(self.violations),
                wall_time_s=wall,
            ))
        return stats

    def _merge_trace(self) -> None:
        """Fold the partitions' new trace events into the user trace,
        ordered by time (ties by partition index, then local order --
        deterministic; see the module docs on tie interleaving)."""
        segments: List[Tuple[str, str, float]] = []
        for p, engine in enumerate(self._engines):
            log = engine.trace.events()
            mark = self._trace_marks[p]
            if len(log) > mark:
                segments.extend(log[mark:])
                self._trace_marks[p] = len(log)
        segments.sort(key=lambda event: event[2])  # stable: ties keep order
        record = self.trace.record
        for component, port, time in segments:
            record(component, port, time)

    def reset(self) -> None:
        """Restore construction state: clear pending events, time,
        violations and all cell state, and reseed every jitter / fault
        stream from the construction seed (matching ``Simulator.reset``:
        a replay of the same stimuli is bit-identical).  The executor
        choice and timeout counters survive a reset -- a degraded engine
        stays degraded."""
        for engine in self._engines:
            engine.outbox.clear()
            engine.reset()
        self._trace_marks = [0] * len(self._engines)
        self._now = 0.0
        self.rounds = 0
        if self.trace is not None:
            self.trace.clear()

    def close(self) -> None:
        """Shut down the thread pool (no-op for the serial executor)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ParallelSimulator {self.plan.n_partitions} partitions over "
            f"'{self.netlist.name}', executor={self.executor}>"
        )
