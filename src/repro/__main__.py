"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list                # show available experiments
    python -m repro table2 fig13        # run selected experiments
    python -m repro all                 # everything (trains models; slow)
    python -m repro all --fast          # model-only experiments (seconds)
    python -m repro chaos --quick       # serving chaos campaign (JSON via --out)
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments

#: Experiment name -> (runner, needs_training).
EXPERIMENTS = {
    "table1": (experiments.run_table1, False),
    "table2": (experiments.run_table2, False),
    "fig13": (experiments.run_fig13, False),
    "fig14": (experiments.run_fig14, False),
    "table3": (experiments.run_table3, True),
    "fig16": (experiments.run_fig16, True),
    "table4": (experiments.run_table4, False),
    "fig19": (experiments.run_fig19, False),
    "fig20": (experiments.run_fig20, False),
    "fig21": (experiments.run_fig21, False),
    "fps": (experiments.run_fps, False),
    "delay": (experiments.run_delay_fraction, False),
    "reload": (experiments.run_reload_overhead, True),
    "bucketing": (experiments.run_ablation_bucketing, True),
    "quantization": (experiments.run_ablation_quantization, True),
    "sync-overhead": (experiments.run_motivation_sync_overhead, False),
    "reload-opt": (experiments.run_reload_optimization, True),
    "design-space": (experiments.run_design_space, True),
    "conversion": (experiments.run_conversion_comparison, True),
    "robustness": (experiments.run_robustness, True),
    "bringup": (experiments.run_bringup_battery, False),
    "temporal": (experiments.run_temporal_limits, False),
    "yield": (experiments.run_yield_tolerance, True),
    "resilience": (experiments.run_resilience, False),
}


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["chaos"]:
        # The chaos campaign has its own flags (--quick/--scenario/--out);
        # hand the rest of the command line straight to its parser.
        from repro.harness.chaos import main as chaos_main

        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SUSHI paper's tables and figures.",
    )
    parser.add_argument(
        "names", nargs="*", default=["all"],
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="skip experiments that need model training",
    )
    args = parser.parse_args(argv)

    if args.names == ["list"]:
        for name, (_, trains) in EXPERIMENTS.items():
            tag = " (trains a model)" if trains else ""
            print(f"  {name}{tag}")
        print("  chaos (serving chaos campaign; "
              "python -m repro chaos --help)")
        return 0

    names = (list(EXPERIMENTS) if args.names in (["all"], [])
             else args.names)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}; "
              "run 'python -m repro list'", file=sys.stderr)
        return 2

    for name in names:
        runner, trains = EXPERIMENTS[name]
        if args.fast and trains:
            print(f"== {name}: skipped (--fast) ==\n")
            continue
        start = time.time()
        result = runner()
        elapsed = time.time() - start
        print(f"== {name} ({elapsed:.1f}s) ==")
        print(result["report"])
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
