"""Command-line entry point: experiments, chaos, serving, load tests.

Usage::

    python -m repro list                # experiments + subcommands
    python -m repro table2 fig13        # run selected experiments
    python -m repro all                 # everything (trains models; slow)
    python -m repro all --fast          # model-only experiments (seconds)
    python -m repro chaos --quick       # serving chaos campaign
    python -m repro serve --port 8787   # HTTP/JSON gateway (docs/GATEWAY.md)
    python -m repro loadtest --quick    # closed-loop gateway load campaign
    python -m repro explore --quick     # design-space sweep (docs/EXPLORER.md)

Each subcommand owns its flags -- ``python -m repro <name> --help``
shows them.  Anything that is neither a subcommand nor a known
experiment prints the usage summary and exits 2 (``main`` returns the
exit code; it never lets ``SystemExit`` escape, so it is safe to call
programmatically).
"""

from __future__ import annotations

import sys
import time

from repro.harness import experiments

#: Experiment name -> (runner, needs_training).
EXPERIMENTS = {
    "table1": (experiments.run_table1, False),
    "table2": (experiments.run_table2, False),
    "fig13": (experiments.run_fig13, False),
    "fig14": (experiments.run_fig14, False),
    "table3": (experiments.run_table3, True),
    "fig16": (experiments.run_fig16, True),
    "table4": (experiments.run_table4, False),
    "fig19": (experiments.run_fig19, False),
    "fig20": (experiments.run_fig20, False),
    "fig21": (experiments.run_fig21, False),
    "fps": (experiments.run_fps, False),
    "delay": (experiments.run_delay_fraction, False),
    "reload": (experiments.run_reload_overhead, True),
    "bucketing": (experiments.run_ablation_bucketing, True),
    "quantization": (experiments.run_ablation_quantization, True),
    "sync-overhead": (experiments.run_motivation_sync_overhead, False),
    "reload-opt": (experiments.run_reload_optimization, True),
    "design-space": (experiments.run_design_space, True),
    "conversion": (experiments.run_conversion_comparison, True),
    "robustness": (experiments.run_robustness, True),
    "bringup": (experiments.run_bringup_battery, False),
    "temporal": (experiments.run_temporal_limits, False),
    "yield": (experiments.run_yield_tolerance, True),
    "resilience": (experiments.run_resilience, False),
}


def _chaos_main(argv):
    from repro.harness.chaos import main as chaos_main
    return chaos_main(argv)


def _serve_main(argv):
    from repro.gateway.server import main as serve_main
    return serve_main(argv)


def _loadtest_main(argv):
    from repro.gateway.loadgen import main as loadtest_main
    return loadtest_main(argv)


def _explore_main(argv):
    from repro.explore.cli import main as explore_main
    return explore_main(argv)


#: Subcommand name -> (dispatcher, one-line help).  Each dispatcher
#: owns its own argparse parser (and therefore its own ``--help``).
SUBCOMMANDS = {
    "chaos": (_chaos_main,
              "serving chaos campaign (--quick/--scenario/--out)"),
    "serve": (_serve_main,
              "HTTP/JSON gateway over the serving stack"),
    "loadtest": (_loadtest_main,
                 "open/closed-loop gateway load campaign"),
    "explore": (_explore_main,
                "design-space sweep + Pareto frontier "
                "(--quick/--workers/--memory)"),
}


def usage(stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    print("usage: python -m repro <subcommand|experiments...> [options]",
          file=stream)
    print("\nsubcommands:", file=stream)
    for name, (_, help_text) in SUBCOMMANDS.items():
        print(f"  {name:<10} {help_text}", file=stream)
    print("  list       show every experiment and subcommand",
          file=stream)
    print("\nexperiments: run by name ('all' for everything, --fast "
          "skips training);\nsee 'python -m repro list'", file=stream)


def _list_everything() -> int:
    for name, (_, trains) in EXPERIMENTS.items():
        tag = " (trains a model)" if trains else ""
        print(f"  {name}{tag}")
    for name, (_, help_text) in SUBCOMMANDS.items():
        print(f"  {name} ({help_text}; python -m repro {name} --help)")
    return 0


def _run_experiments(argv) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SUSHI paper's tables and figures.",
    )
    parser.add_argument(
        "names", nargs="*", default=["all"],
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="skip experiments that need model training",
    )
    args = parser.parse_args(argv)

    names = (list(EXPERIMENTS) if args.names in (["all"], [])
             else args.names)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        usage(sys.stderr)
        return 2

    for name in names:
        runner, trains = EXPERIMENTS[name]
        if args.fast and trains:
            print(f"== {name}: skipped (--fast) ==\n")
            continue
        start = time.time()
        result = runner()
        elapsed = time.time() - start
        print(f"== {name} ({elapsed:.1f}s) ==")
        print(result["report"])
        print()
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    try:
        if argv[:1] == ["list"]:
            return _list_everything()
        if argv[:1] in (["--help"], ["-h"]):
            usage()
            return 0
        if argv and argv[0] in SUBCOMMANDS:
            dispatcher, _ = SUBCOMMANDS[argv[0]]
            return dispatcher(argv[1:])
        # Anything else is a list of experiment names; unknown names
        # (i.e. typo'd subcommands) print usage and exit 2 there.
        return _run_experiments(argv)
    except SystemExit as exc:  # argparse --help / usage errors
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2


if __name__ == "__main__":
    sys.exit(main())
