"""A deterministic, seeded TCP chaos proxy (stdlib only).

:class:`ChaosProxy` accepts client connections and pumps bytes to/from
a fixed upstream address with one thread per direction, applying the
:class:`NetFault` list it was built with.  Faults are *armed* per
connection, at accept time, in list order: each fault claims one permit
from the shared :class:`FireLedger`, and a fault whose budget is spent
simply stops arming -- so a scenario that opens connections one at a
time gets a fully deterministic fault schedule ("the first two
connections reset mid-response, the rest are clean") and can assert
the ledger counts exactly.

Fault kinds (:data:`FAULT_KINDS`):

==========  ===========================================================
kind        behaviour on an armed connection
==========  ===========================================================
latency     sleep ``delay_ms + jitter_ms * u`` before forwarding each
            chunk in ``direction`` (``u`` from the per-connection
            seeded stream)
throttle    pace forwarding at ``rate_bps`` bytes/second
split       forward each chunk as several partial writes of seeded
            random sizes up to ``chunk_bytes`` (exercises framing)
slow-send   slowloris: forward in ``chunk_bytes`` pieces with a
            ``pause_ms`` sleep between pieces
reset       after ``after_bytes`` have been forwarded in ``direction``,
            hard-reset the client socket (``SO_LINGER 0`` => RST)
blackhole   accept the client, never connect upstream, hold the socket
            silently for ``hold_s``, then close
==========  ===========================================================
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Every fault kind the proxy understands.
FAULT_KINDS = (
    "latency", "throttle", "split", "slow-send", "reset", "blackhole",
)

_DIRECTIONS = ("up", "down", "both")

#: Multiplier folding (seed, connection index) into one deterministic
#: integer seed -- tuples would go through ``hash()`` and break across
#: processes under hash randomisation.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class NetFault:
    """One composable network fault with an exact fire budget.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        budget: How many *connections* may arm this fault over the
            proxy's lifetime; ``None`` means unlimited (the ledger
            still counts every arm).
        direction: ``"up"`` (client -> upstream), ``"down"``
            (upstream -> client) or ``"both"``.  Ignored by
            ``blackhole`` (which never reaches the upstream).
        delay_ms / jitter_ms: ``latency`` base delay plus seeded
            uniform jitter.
        rate_bps: ``throttle`` pacing in bytes per second.
        chunk_bytes: ``split`` maximum piece size / ``slow-send``
            fixed piece size.
        pause_ms: ``slow-send`` inter-piece sleep.
        after_bytes: ``reset`` fires once this many bytes have been
            forwarded in ``direction`` on the armed connection.
        hold_s: ``blackhole`` silent-hold duration before closing.
    """

    kind: str
    budget: Optional[int] = 1
    direction: str = "down"
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    rate_bps: float = 65536.0
    chunk_bytes: int = 64
    pause_ms: float = 1.0
    after_bytes: int = 0
    hold_s: float = 5.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"direction must be one of {_DIRECTIONS}, "
                f"not {self.direction!r}"
            )
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError("budget must be >= 0 or None")
        if self.chunk_bytes < 1:
            raise ConfigurationError("chunk_bytes must be >= 1")
        if self.rate_bps <= 0:
            raise ConfigurationError("rate_bps must be > 0")

    def applies(self, direction: str) -> bool:
        return self.direction == "both" or self.direction == direction


class FireLedger:
    """Thread-safe exact accounting of fault arms, keyed per fault.

    Mirrors the marker-file budget of the PR 5 chaos hooks, in-process:
    :meth:`claim` atomically takes one permit for ``(fault_index,
    kind)`` and refuses once the budget is spent, so the total number
    of connections a fault ever touches is exact -- never "roughly
    budget" under racing accepts.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._fired: Dict[Tuple[int, str], int] = {}

    def claim(self, key: Tuple[int, str], budget: Optional[int]) -> bool:
        with self._lock:
            fired = self._fired.get(key, 0)
            if budget is not None and fired >= budget:
                return False
            self._fired[key] = fired + 1
            return True

    def fired(self, kind: Optional[str] = None) -> int:
        """Total arms, optionally restricted to one fault kind."""
        with self._lock:
            return sum(
                count for (_, k), count in self._fired.items()
                if kind is None or k == kind
            )

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                f"{index}:{kind}": count
                for (index, kind), count in sorted(self._fired.items())
            }


class ChaosProxy:
    """Seeded fault-injecting TCP proxy in front of one upstream.

    Args:
        upstream: ``(host, port)`` of the real service (the gateway).
        faults: :class:`NetFault` list, armed per connection in order.
        seed: Base seed for the per-connection randomness streams.
        host / port: Listen address; port 0 picks an ephemeral port
            (read :attr:`port` after :meth:`start`).

    Use as a context manager or ``start()`` / ``close()``.  ``close``
    tears down the listener and every tracked socket, which unblocks
    all pump threads.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        faults: Tuple[NetFault, ...] = (),
        *,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        buffer_bytes: int = 65536,
    ):
        self.upstream = (upstream[0], int(upstream[1]))
        self.faults = tuple(faults)
        self.seed = int(seed)
        self.host = host
        self.port = port
        self.buffer_bytes = buffer_bytes
        self.ledger = FireLedger()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._lock = threading.Lock()
        self._socks: set = set()
        self._threads: List[threading.Thread] = []
        self._connections = 0
        self._bytes = {"up": 0, "down": 0}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="netchaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._running = False
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        thread, self._accept_thread = self._accept_thread, None
        if thread is not None:
            thread.join(timeout=5)
        with self._lock:
            socks = list(self._socks)
            threads = list(self._threads)
            self._socks.clear()
            self._threads.clear()
        for sock in socks:
            _close_quietly(sock)
        for worker in threads:
            worker.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def fired(self, kind: Optional[str] = None) -> int:
        return self.ledger.fired(kind)

    def stats(self) -> Dict:
        with self._lock:
            return {
                "connections": self._connections,
                "bytes_up": self._bytes["up"],
                "bytes_down": self._bytes["down"],
                "fired": self.ledger.snapshot(),
            }

    # -- accept / connection handling ----------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                index = self._connections
                self._connections += 1
            # Arm faults for this connection NOW, in fault order, so
            # the schedule depends only on the accept sequence.
            armed = [
                fault for key, fault in enumerate(self.faults)
                if self.ledger.claim((key, fault.kind), fault.budget)
            ]
            rng = random.Random(self.seed * _SEED_STRIDE + index)
            self._track(client)
            worker = threading.Thread(
                target=self._handle_connection,
                args=(client, armed, rng),
                name=f"netchaos-conn-{index}",
                daemon=True,
            )
            with self._lock:
                self._threads.append(worker)
            worker.start()

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._socks.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._socks.discard(sock)

    def _handle_connection(
        self,
        client: socket.socket,
        armed: List[NetFault],
        rng: random.Random,
    ) -> None:
        blackholes = [f for f in armed if f.kind == "blackhole"]
        if blackholes:
            self._blackhole(client, blackholes[0])
            return
        try:
            upstream = socket.create_connection(self.upstream, timeout=5.0)
        except OSError:
            _close_quietly(client)
            self._untrack(client)
            return
        self._track(upstream)
        # Two pump threads per connection; the rng is shared between
        # directions but each draw sequence is deterministic because
        # each pump gets its own derived stream.
        up_rng = random.Random(rng.getrandbits(64))
        down_rng = random.Random(rng.getrandbits(64))
        pumps = [
            threading.Thread(
                target=self._pump,
                args=(client, upstream, client, "up", armed, up_rng),
                name="netchaos-up", daemon=True,
            ),
            threading.Thread(
                target=self._pump,
                args=(upstream, client, client, "down", armed, down_rng),
                name="netchaos-down", daemon=True,
            ),
        ]
        for pump in pumps:
            with self._lock:
                self._threads.append(pump)
            pump.start()

    def _blackhole(self, client: socket.socket, fault: NetFault) -> None:
        """Accept-then-silence: hold the socket, answer nothing."""
        deadline = time.monotonic() + fault.hold_s
        while self._running and time.monotonic() < deadline:
            time.sleep(0.05)
        _close_quietly(client)
        self._untrack(client)

    # -- the byte pump -------------------------------------------------------

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        client: socket.socket,
        direction: str,
        armed: List[NetFault],
        rng: random.Random,
    ) -> None:
        faults = [f for f in armed if f.applies(direction)]
        latency = [f for f in faults if f.kind == "latency"]
        throttles = [f for f in faults if f.kind == "throttle"]
        splits = [f for f in faults if f.kind == "split"]
        slows = [f for f in faults if f.kind == "slow-send"]
        resets = [f for f in faults if f.kind == "reset"]
        forwarded = 0
        try:
            while True:
                try:
                    data = src.recv(self.buffer_bytes)
                except OSError:
                    break
                if not data:
                    # Half-close: propagate EOF without killing the
                    # opposite direction (keep-alive responses may
                    # still be in flight the other way).
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    break
                for fault in latency:
                    delay = fault.delay_ms + fault.jitter_ms * rng.random()
                    time.sleep(delay / 1000.0)
                for fault in throttles:
                    time.sleep(len(data) / fault.rate_bps)
                for fault in resets:
                    if forwarded + len(data) > fault.after_bytes:
                        head = data[:max(0, fault.after_bytes - forwarded)]
                        if head:
                            dst.sendall(head)
                            self._count(direction, len(head))
                        self._reset(client)
                        _close_quietly(src)
                        _close_quietly(dst)
                        return
                if slows:
                    piece = max(1, slows[0].chunk_bytes)
                    pause = slows[0].pause_ms / 1000.0
                    for start in range(0, len(data), piece):
                        dst.sendall(data[start:start + piece])
                        time.sleep(pause)
                elif splits:
                    bound = max(1, splits[0].chunk_bytes)
                    view = memoryview(data)
                    start = 0
                    while start < len(view):
                        size = rng.randint(1, bound)
                        dst.sendall(view[start:start + size])
                        start += size
                else:
                    dst.sendall(data)
                forwarded += len(data)
                self._count(direction, len(data))
        except OSError:
            pass
        finally:
            self._untrack(src)

    def _reset(self, client: socket.socket) -> None:
        """Hard-reset the client side: SO_LINGER 0 turns close into RST.

        The opposite pump is blocked in ``recv`` on this socket, and an
        in-flight recv holds the open file description alive -- close()
        alone would defer the TCP teardown (and the RST) until that
        recv returns.  ``shutdown(SHUT_RD)`` wakes it without touching
        the wire, so the linger-0 close aborts promptly.
        """
        try:
            client.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        try:
            client.shutdown(socket.SHUT_RD)
        except OSError:
            pass
        try:
            client.close()
        except OSError:
            pass

    def _count(self, direction: str, nbytes: int) -> None:
        with self._lock:
            self._bytes[direction] += nbytes

    def __repr__(self) -> str:
        state = "listening" if self._listener is not None else "stopped"
        return (f"<ChaosProxy {state} {self.host}:{self.port} -> "
                f"{self.upstream[0]}:{self.upstream[1]} "
                f"faults={len(self.faults)}>")


def _close_quietly(sock: socket.socket) -> None:
    # shutdown() first: a thread blocked in recv on this socket keeps
    # the open file description referenced, so a bare close() would
    # leave the TCP teardown (and that thread) pending indefinitely.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
