"""Deterministic network fault injection for the serving edge.

Everything below the gateway socket is exercised elsewhere (worker
chaos, node kills, breaker storms); this package attacks the one layer
those campaigns assume perfect -- the TCP path between a client and the
gateway.  :class:`ChaosProxy` is a stdlib-only (``socket`` +
``threading``) TCP proxy that forwards byte streams to an upstream
while injecting composable :class:`NetFault` behaviours: added latency,
bandwidth throttling, split/partial writes, mid-response connection
resets, black-holes (accept-then-silence), and slowloris-style slow
senders.

Determinism is the point, mirroring the PR 5 chaos hooks: every fault
carries an exact fire *budget* accounted in a :class:`FireLedger`
(claimed once per connection, at accept time, in fault order), and all
randomised behaviour (latency jitter, split sizes) is drawn from a
per-connection stream seeded as ``seed * K + connection_index`` -- so a
scenario that opens connections sequentially sees the exact same fault
schedule on every run and can assert the ledger to the integer.
"""

from repro.netchaos.proxy import (
    FAULT_KINDS,
    ChaosProxy,
    FireLedger,
    NetFault,
)

__all__ = [
    "FAULT_KINDS",
    "ChaosProxy",
    "FireLedger",
    "NetFault",
]
