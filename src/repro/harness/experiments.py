"""One runner per paper artefact (see DESIGN.md's experiment index).

Every ``run_*`` function returns a dict with a human-readable ``report``
string plus structured fields the benchmarks assert on.  Paper values are
embedded for the paper-vs-measured comparison; absolute accuracy numbers
differ by construction (synthetic datasets -- see DESIGN.md) while the
hardware-model numbers are calibrated and should match closely.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import SUSHI_PAPER, TIANJIC, TRUENORTH
from repro.harness.artifacts import get_trained_bundle
from repro.harness.charts import line_chart
from repro.harness.reporting import format_table, paper_vs_measured
from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.state_controller import Polarity
from repro.resources.estimator import PAPER_SWEEP_SIZES, estimate_resources
from repro.resources.performance import (
    PerformanceModel,
    mnist_synops_per_frame,
)
from repro.resources.power import PowerModel
from repro.rsfq.constraints import paper_table1
from repro.rsfq.waveform import render_waveform
from repro.snn import binarize_network, consistency
from repro.snn.encoding import PoissonEncoder
from repro.ssnn import SushiRuntime, encode_inference, plan_network

# Paper values for Table 3.
PAPER_TABLE3 = {
    "digits": {"reference_acc": 0.9865, "sushi_acc": 0.9784,
               "consistency": 0.9818},
    "fashion": {"reference_acc": 0.8890, "sushi_acc": 0.8623,
                "consistency": 0.8871},
}


# ---------------------------------------------------------------------------
# Table 1 -- RSFQ cell constraints
# ---------------------------------------------------------------------------

def run_table1() -> Dict:
    """Print Table 1 and verify the simulator enforces every constraint."""
    from repro.rsfq import Netlist, Simulator, library

    table = paper_table1()
    rows = [
        {"cell": cell, "constraint": name, "min_lag_ps": value}
        for cell, constraints in table.items()
        for name, value in constraints.items()
    ]
    # Enforcement check: drive each representative constraint too fast and
    # confirm a violation is recorded.
    checks = []
    scenarios = [
        ("JTL", library.JTL, [("din", 0.0), ("din", 10.0)]),
        ("SPL", library.SPL, [("din", 0.0), ("din", 10.0)]),
        ("CB cross", library.CB, [("dinA", 0.0), ("dinB", 2.0)]),
        ("DFF din-clk", library.DFF, [("din", 0.0), ("clk", 3.0)]),
        ("NDRO din-rst", library.NDRO, [("din", 0.0), ("rst", 10.0)]),
        ("TFF", library.TFFL, [("din", 0.0), ("din", 10.0)]),
    ]
    for label, cls, pulses in scenarios:
        net = Netlist("check")
        cell = net.add(cls("c"))
        sim = Simulator(net)
        for port, time in pulses:
            sim.schedule_input(cell, port, time)
        sim.run()
        checks.append({"scenario": label,
                       "violation_detected": bool(sim.violations)})
    report = format_table(rows, title="Table 1: RSFQ cell constraints (ps)")
    report += "\n\n" + format_table(checks,
                                    title="Constraint enforcement checks")
    return {"rows": rows, "checks": checks, "report": report}


# ---------------------------------------------------------------------------
# Table 2 -- resource overhead of the configurable 4x4 mesh
# ---------------------------------------------------------------------------

def run_table2() -> Dict:
    measured = estimate_resources(4, with_weights=True, max_strength=4)
    entries = [
        {"metric": "total JJs", "paper": 45_542,
         "measured": measured.total_jj},
        {"metric": "wiring JJs", "paper": 31_026,
         "measured": measured.wiring_jj},
        {"metric": "logic JJs", "paper": 14_516,
         "measured": measured.logic_jj},
        {"metric": "wiring share (%)", "paper": 68.13,
         "measured": round(100 * measured.wiring_fraction, 2)},
        {"metric": "total area (mm^2)", "paper": 44.73,
         "measured": round(measured.total_area_mm2, 2)},
    ]
    return {
        "measured": measured,
        "entries": entries,
        "report": paper_vs_measured(
            entries, title="Table 2: 4x4 configurable mesh resources"
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 13 -- JJ / area scaling with NPE count
# ---------------------------------------------------------------------------

def run_fig13() -> Dict:
    rows = []
    base = None
    for n in PAPER_SWEEP_SIZES:
        r = estimate_resources(n, with_weights=False)
        if base is None:
            base = r.total_jj
        rows.append({
            "npes": r.npe_count,
            "network": f"{n}x{n}",
            "total_jj": r.total_jj,
            "logic_jj": r.logic_jj,
            "wiring_jj": r.wiring_jj,
            "area_mm2": round(r.total_area_mm2, 2),
            "linear_ref_jj": base * n,
        })
    report = format_table(
        rows, title="Fig. 13: resource scaling with NPE count"
    )
    report += "\n\n" + line_chart(
        [row["npes"] for row in rows],
        {
            "total JJs": [row["total_jj"] for row in rows],
            "logic JJs": [row["logic_jj"] for row in rows],
            "wiring JJs": [row["wiring_jj"] for row in rows],
            "linear ref": [row["linear_ref_jj"] for row in rows],
        },
        title="Fig. 13(a): JJs vs NPEs", y_label="JJs",
    )
    anchors = paper_vs_measured([
        {"metric": "total JJs @ 32 NPEs", "paper": 99_982,
         "measured": rows[-1]["total_jj"]},
        {"metric": "area @ 32 NPEs (mm^2)", "paper": 103.75,
         "measured": rows[-1]["area_mm2"]},
    ], title="Fig. 13 anchors")
    return {"rows": rows, "report": report + "\n\n" + anchors}


# ---------------------------------------------------------------------------
# Table 3 -- inference accuracy and consistency
# ---------------------------------------------------------------------------

def run_table3(
    datasets: Sequence[str] = ("digits", "fashion"),
    hidden: int = 384,
    epochs: int = 25,
    train_size: int = 3500,
    test_size: int = 400,
    chip_n: int = 16,
) -> Dict:
    """Reference (stateful, SpikingJelly stand-in) vs SUSHI chip inference.

    Absolute accuracies use the synthetic datasets and a scaled-down
    network; the paper-shape assertions are (1) SUSHI accuracy is slightly
    below the reference, (2) consistency is high but below 100%, and (3)
    the fashion dataset is harder on both platforms."""
    results = {}
    rows = []
    for name in datasets:
        bundle = get_trained_bundle(
            dataset=name, hidden=hidden, epochs=epochs,
            train_size=train_size, test_size=test_size,
        )
        model, data = bundle.model, bundle.dataset
        # The reference platform ("SpikingJelly") evaluates the trained
        # network with float arithmetic and *stateful* IF neurons; SUSHI
        # adds the integer conversion and the stateless simplification.
        reference_preds = model.predict(data.test_images)
        network = binarize_network(model)
        encoder = PoissonEncoder(seed=model.encoder_seed)
        trains = encoder.encode_steps(
            data.test_images.reshape(len(data.test_images), -1),
            model.time_steps,
        )
        runtime = SushiRuntime(chip_n=chip_n)
        chip_result = runtime.infer(network, trains)
        ref_acc = float((reference_preds == data.test_labels).mean())
        sushi_acc = float(
            (chip_result.predictions == data.test_labels).mean()
        )
        agree = consistency(chip_result.predictions, reference_preds)
        paper = PAPER_TABLE3[name]
        results[name] = {
            "reference_acc": ref_acc,
            "sushi_acc": sushi_acc,
            "consistency": agree,
            "spurious": chip_result.spurious_decisions,
        }
        rows.extend([
            {"dataset": name, "metric": "reference accuracy",
             "paper": paper["reference_acc"], "measured": round(ref_acc, 4)},
            {"dataset": name, "metric": "SUSHI accuracy",
             "paper": paper["sushi_acc"], "measured": round(sushi_acc, 4)},
            {"dataset": name, "metric": "consistency",
             "paper": paper["consistency"], "measured": round(agree, 4)},
        ])
    report = format_table(
        rows, ["dataset", "metric", "paper", "measured"],
        title="Table 3: SpikingJelly-reference vs SUSHI inference "
              "(synthetic datasets -- compare shapes, not absolutes)",
    )
    return {"results": results, "rows": rows, "report": report}


# ---------------------------------------------------------------------------
# Fig. 16 -- chip waveforms vs simulation, inference readout
# ---------------------------------------------------------------------------

def run_fig16(jitter_ps: float = 0.35, sample_index: int = None) -> Dict:
    """Gate-level 2-NPE chip (the fabricated configuration) vs behavioural
    simulation, plus the per-label output pulse streams of Fig. 16(d).

    A small network (7x7-pooled digits, 16 hidden units) is trained and its
    ten output neurons are evaluated one at a time on the 1x1 gate-level
    chip via bit-slicing.  The "chip" side re-runs the identical pulse
    schedule with Gaussian wire-delay jitter standing in for fabrication
    variation; the waveform comparison mirrors the paper's
    oscilloscope-vs-VCS figure."""
    bundle = get_trained_bundle(
        dataset="digits", hidden=16, epochs=12, train_size=800,
        test_size=60, downsample=4,
    )
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    if sample_index is None:
        # Pick the first test sample the deployed (binarized) network
        # classifies correctly -- the paper's figure shows a successful
        # inference.  Each candidate is encoded exactly as the chip run
        # below will encode it (fresh encoder, single sample).
        sample_index = 0
        for i in range(len(data.test_images)):
            candidate = PoissonEncoder(seed=model.encoder_seed).encode_steps(
                data.test_images[i:i + 1].reshape(1, -1), model.time_steps
            )
            if int(network.predict(candidate)[0]) == int(data.test_labels[i]):
                sample_index = i
                break
    image = data.test_images[sample_index:sample_index + 1]
    label = int(data.test_labels[sample_index])
    trains = encoder.encode_steps(image.reshape(1, -1), model.time_steps)

    # Per-label output streams over the whole network (behavioural chip).
    runtime = SushiRuntime(chip_n=1, sc_per_npe=10, engine="behavioral")
    result = runtime.infer(network, trains)
    raster = result.output_raster[:, 0, :]  # (T, 10)
    label_streams = {
        f"label{k}": "-".join(str(int(v)) for v in raster[:, k])
        for k in range(raster.shape[1])
    }
    prediction = int(result.predictions[0])

    # Gate-level vs jittered gate-level on the winning output neuron: the
    # hidden spikes of each step stream through NPE0 (relay) into NPE1.
    hidden_spikes = network.layers[0].forward(trains[:, 0, :])  # (T, 16)
    weights = network.layers[1].signed_weights[:, prediction]
    threshold = int(network.layers[1].thresholds[prediction])

    from repro.rsfq.waveform import PulseTrace

    def run_gate(seed, jitter):
        chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=10))
        trace = PulseTrace()
        sim = chip.simulator(jitter_ps=jitter, seed=seed, trace=trace)
        driver = ChipDriver(chip, sim)
        step_outputs = []
        for t in range(hidden_spikes.shape[0]):
            driver.begin_timestep([threshold])
            before = len(chip.fire_times(0))
            for polarity, sign in ((Polarity.SET0, -1), (Polarity.SET1, 1)):
                for axon in range(hidden_spikes.shape[1]):
                    if hidden_spikes[t, axon] and weights[axon] == sign:
                        driver.configure_weights([[1]])
                        driver.run_pass(polarity, [True])
            step_outputs.append(
                1 if len(chip.fire_times(0)) > before else 0
            )
        # NPE0 (relay) pulses are observed where the row line leaves it.
        relay_times = trace.times("rowline0.thru", "din")
        return chip, step_outputs, relay_times

    ideal_chip, ideal_outputs, ideal_relay = run_gate(seed=1, jitter=0.0)
    jitter_chip, jitter_outputs, jitter_relay = run_gate(
        seed=2, jitter=jitter_ps
    )

    # Detailed view (the paper's Fig. 16(b)): a window around the output
    # spike, showing the relay (NPE0) activity and the neuron (NPE1) fire.
    fire_times = ideal_chip.fire_times(0) or [ideal_relay[-1]]
    t_mid = fire_times[0]
    t_start, t_end = max(0.0, t_mid - 30_000.0), t_mid + 5_000.0
    window = lambda times: [t for t in times if t_start <= t < t_end]
    waveforms = render_waveform(
        {
            "NPE0 (sim)": window(ideal_relay),
            "NPE0 (chip)": window(jitter_relay),
            "NPE1 (sim)": window(ideal_chip.fire_times(0)),
            "NPE1 (chip)": window(jitter_chip.fire_times(0)),
        },
        t_start=t_start, t_end=t_end, width=72,
    )
    consistent = ideal_outputs == jitter_outputs
    pulse_match = (
        len(ideal_relay) == len(jitter_relay)
        and len(ideal_chip.fire_times(0)) == len(jitter_chip.fire_times(0))
    )
    stream_report = "\n".join(
        f"=> {name}: {stream}" for name, stream in label_streams.items()
    )
    report = (
        "Fig. 16: simulation vs (jittered) chip waveforms, detailed view "
        f"around the output spike [{t_start:.0f}, {t_end:.0f}] ps\n"
        + waveforms
        + f"\n\nPer-label output pulse streams (T={model.time_steps}):\n"
        + stream_report
        + f"\n\nInference result: {prediction} (true label {label}); "
        + f"sim/chip step outputs identical: {consistent}; "
        + f"pulse counts identical: {pulse_match}"
    )
    return {
        "label_streams": label_streams,
        "prediction": prediction,
        "true_label": label,
        "ideal_outputs": ideal_outputs,
        "jitter_outputs": jitter_outputs,
        "consistent": consistent,
        "pulse_match": pulse_match,
        "report": report,
    }


# ---------------------------------------------------------------------------
# Fig. 14 -- asynchronous neuron timing example
# ---------------------------------------------------------------------------

def run_fig14() -> Dict:
    """Reproduce the section 5.2 timing example on a gate-level NPE.

    The protocol channels (rst, write, set, in) drive the hardware in the
    paper's mandated order; the oscilloscope view shows the input pulses
    and the level-inverting real output.  The three asynchronous
    constraints are checked on the observed pulse times:

    1. write follows rst;  2. input follows set;  3. the read output is
    triggered by (aligned with) rst.
    """
    from repro.neuro.npe import GateLevelNPE
    from repro.neuro.timing import NPEDriver
    from repro.rsfq import Netlist, Simulator
    from repro.rsfq.waveform import PulseTrace, pulses_to_levels

    net = Netlist("fig14")
    npe = GateLevelNPE(net, "npe", n_sc=4)
    trace = PulseTrace()
    sim = Simulator(net, trace=trace)
    driver = NPEDriver(sim, npe)

    t_rst1 = driver.reset()
    driver.write_preload(0b1010)     # arbitrary prior state to read back
    t_rst2 = driver.reset()          # read channels report bits 1 and 3
    driver.configure_threshold(4)
    t_set = driver.cursor
    driver.set_polarity(Polarity.SET1)
    t_inputs_start = driver.cursor
    driver.pulses(6)                 # six input pulses, as in the figure
    driver.run()

    input_times = trace.times("npe.sc0.in_cb", "dinA")
    output_times = npe.fire_times
    read_times = sorted(
        t for i in range(npe.n_sc) for t in npe.read_times(i)
    )
    t_end = sim.now + 200.0
    channels = {
        "input": input_times,
        "real output (level)": output_times,
        "read": read_times,
    }
    waveform = render_waveform(channels, t_end=t_end, width=76)
    levels = pulses_to_levels(output_times, t_end=t_end, dt=t_end / 76)
    checks = {
        "write follows rst": t_rst1 < t_rst2,  # writes sit between resets
        "input follows set": bool(input_times) and min(input_times) > t_set,
        "read aligned with rst": bool(read_times)
        and all(t_rst2 <= t < t_set + 1.0 for t in read_times),
        "output inverts level per pulse": int(levels[-1]) == len(
            output_times
        ) % 2,
        "no timing violations": not sim.violations,
    }
    report = (
        "Fig. 14: asynchronous neuron timing on a gate-level NPE\n"
        + waveform
        + "\n\nconstraint checks: "
        + ", ".join(f"{k}={v}" for k, v in checks.items())
        + f"\ninput pulses: {len(input_times)}; output pulses: "
        + f"{len(output_times)}; read pulses: {len(read_times)}"
    )
    return {
        "checks": checks,
        "input_count": len(input_times),
        "output_count": len(output_times),
        "read_count": len(read_times),
        "report": report,
    }


def run_bringup_battery(jitter_ps: float = 0.4) -> Dict:
    """Section 6.2 bring-up: the NPE mechanism battery (flip, carry, fire,
    reset/read, polarity, relay) on the gate-level chip, under ideal and
    jittered ("fabricated") wire delays."""
    from repro.neuro.bringup import run_bringup

    ideal = run_bringup(sc_per_npe=4)
    jittered = run_bringup(sc_per_npe=4, jitter_ps=jitter_ps, seed=7)
    full_scale = run_bringup(sc_per_npe=10)
    rows = []
    for check_i, check_j in zip(ideal.checks, jittered.checks):
        rows.append({
            "mechanism": check_i.name,
            "expected": check_i.expected,
            "sim": check_i.observed,
            "chip(jitter)": check_j.observed,
            "pass": check_i.passed and check_j.passed,
        })
    report = format_table(
        rows, title="Section 6.2 bring-up: NPE mechanism battery"
    )
    report += (
        f"\n\nviolations: sim={ideal.violations}, "
        f"chip={jittered.violations}; 10-SC NPE battery: "
        f"{'PASS' if full_scale.passed else 'FAIL'}"
    )
    # Timing sign-off: tightest slack per constraint family over a full
    # protocol run (all must be positive).
    from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip

    chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=4, max_strength=2))
    driver = ChipDriver(chip)
    driver.begin_timestep([3, 5])
    driver.configure_weights([[1, 2], [2, 1]])
    driver.run_pass(Polarity.SET1, [True, True])
    driver.run_pass(Polarity.SET0, [True, False])
    margin_rows = driver.sim.margin_report()[:8]
    report += "\n\n" + format_table(
        margin_rows, title="Timing sign-off: tightest slack per "
                           "constraint family (ps)"
    )
    return {
        "ideal": ideal,
        "jittered": jittered,
        "full_scale": full_scale,
        "rows": rows,
        "margin_rows": margin_rows,
        "min_slack_ps": min(r["slack_ps"] for r in margin_rows),
        "report": report,
    }


# ---------------------------------------------------------------------------
# Table 4 -- comparison with TrueNorth and Tianjic
# ---------------------------------------------------------------------------

def run_table4() -> Dict:
    perf = PerformanceModel(16)
    resources = estimate_resources(16, with_weights=False)
    power = PowerModel(resources).total_mw(perf.peak_sops())
    gsops = perf.peak_gsops()
    efficiency = gsops / (power * 1e-3)
    rows = [
        {
            "platform": spec.name,
            "model": spec.model,
            "technology": spec.technology,
            "clock_mhz": spec.clock_mhz or "Async",
            "area_mm2": spec.area_mm2,
            "power_mw": (
                f"{spec.power_mw[0]:g}-{spec.power_mw[1]:g}"
                if spec.power_mw[0] != spec.power_mw[1]
                else f"{spec.power_mw[0]:g}"
            ),
            "gsops": spec.gsops if spec.gsops is not None else "-",
            "gsops_per_w": spec.gsops_per_w,
        }
        for spec in (TRUENORTH, TIANJIC)
    ]
    rows.append({
        "platform": "SUSHI (measured)",
        "model": "SSNN",
        "technology": "RSFQ, 2 um",
        "clock_mhz": "Async",
        "area_mm2": round(resources.total_area_mm2, 2),
        "power_mw": f"{power:.2f}",
        "gsops": round(gsops, 0),
        "gsops_per_w": round(efficiency, 0),
    })
    entries = [
        {"metric": "GSOPS", "paper": SUSHI_PAPER.gsops,
         "measured": round(gsops, 1)},
        {"metric": "GSOPS/W", "paper": SUSHI_PAPER.gsops_per_w,
         "measured": round(efficiency, 0)},
        {"metric": "power (mW)", "paper": 41.87,
         "measured": round(power, 2)},
        {"metric": "area (mm^2)", "paper": 103.75,
         "measured": round(resources.total_area_mm2, 2)},
        {"metric": "speedup vs TrueNorth", "paper": 23.0,
         "measured": round(gsops / TRUENORTH.gsops, 1)},
        {"metric": "efficiency vs TrueNorth", "paper": 81.0,
         "measured": round(efficiency / TRUENORTH.gsops_per_w, 1)},
        {"metric": "efficiency vs Tianjic", "paper": 50.0,
         "measured": round(efficiency / TIANJIC.gsops_per_w, 1)},
    ]
    report = (
        format_table(rows, title="Table 4: platform comparison")
        + "\n\n"
        + paper_vs_measured(entries, title="SUSHI column, paper vs measured")
    )
    return {"rows": rows, "entries": entries, "gsops": gsops,
            "efficiency": efficiency, "power_mw": power, "report": report}


# ---------------------------------------------------------------------------
# Figs. 19-21 -- scaling of performance, power, efficiency
# ---------------------------------------------------------------------------

def run_fig19() -> Dict:
    rows = []
    for n in PAPER_SWEEP_SIZES:
        perf = PerformanceModel(n)
        rows.append({
            "npes": perf.npe_count,
            "network": f"{n}x{n}",
            "gsops": round(perf.peak_gsops(), 1),
            "truenorth_gsops": TRUENORTH.gsops,
        })
    report = format_table(
        rows, title="Fig. 19: performance vs NPE count"
    )
    report += "\n\n" + line_chart(
        [row["npes"] for row in rows],
        {
            "SUSHI": [row["gsops"] for row in rows],
            "TrueNorth": [row["truenorth_gsops"] for row in rows],
        },
        title="Fig. 19: GSOPS vs NPEs", y_label="GSOPS",
    )
    return {"rows": rows, "peak": rows[-1]["gsops"], "report": report}


def run_fig20() -> Dict:
    rows = []
    for n in PAPER_SWEEP_SIZES:
        perf = PerformanceModel(n)
        power = PowerModel.for_mesh(n, with_weights=False).total_mw(
            perf.peak_sops()
        )
        rows.append({
            "npes": 2 * n,
            "network": f"{n}x{n}",
            "power_mw": round(power, 2),
        })
    report = format_table(rows, title="Fig. 20: power vs NPE count")
    report += "\n\n" + line_chart(
        [row["npes"] for row in rows],
        {"SUSHI": [row["power_mw"] for row in rows]},
        title="Fig. 20: power (mW) vs NPEs", y_label="mW",
    )
    return {"rows": rows, "peak_power_mw": rows[-1]["power_mw"],
            "report": report}


def run_fig21() -> Dict:
    rows = []
    for n in PAPER_SWEEP_SIZES:
        perf = PerformanceModel(n)
        rows.append({
            "npes": 2 * n,
            "network": f"{n}x{n}",
            "gsops_per_w": round(
                perf.power_efficiency_gsops_per_w(with_weights=False), 0
            ),
            "truenorth": TRUENORTH.gsops_per_w,
            "tianjic": TIANJIC.gsops_per_w,
        })
    report = format_table(
        rows, title="Fig. 21: power efficiency vs NPE count"
    )
    report += "\n\n" + line_chart(
        [row["npes"] for row in rows],
        {
            "SUSHI": [row["gsops_per_w"] for row in rows],
            "TrueNorth": [row["truenorth"] for row in rows],
            "Tianjic": [row["tianjic"] for row in rows],
        },
        title="Fig. 21: GSOPS/W vs NPEs", y_label="GSOPS/W",
    )
    return {"rows": rows, "report": report}


# ---------------------------------------------------------------------------
# Section 6.3 scalars -- FPS, delay fraction, reload overhead, ablation
# ---------------------------------------------------------------------------

def run_fps() -> Dict:
    perf = PerformanceModel(16)
    synops = mnist_synops_per_frame()
    fps = perf.fps(synops, reload_fraction=0.2, utilisation=0.765)
    entries = [
        {"metric": "MNIST-network FPS @ 16x16", "paper": 2.61e5,
         "measured": round(fps, 0)},
        {"metric": "synops per frame", "paper": synops,
         "measured": synops},
    ]
    return {"fps": fps, "entries": entries,
            "report": paper_vs_measured(entries,
                                        title="Section 6.3: frame rate")}


def run_delay_fraction() -> Dict:
    """Transmission-delay share of per-pulse processing: the calibrated
    analytic model over the full sweep, cross-checked at small meshes by
    static timing analysis of the actual gate-level netlists."""
    from repro.rsfq.analysis import chip_transmission_fraction

    rows = []
    for n in PAPER_SWEEP_SIZES:
        share = PerformanceModel(n).transmission_delay_share()
        row = {
            "network": f"{n}x{n}",
            "model_share_pct": round(100 * share, 1),
            "gate_level_pct": "-",
        }
        if n <= 4:  # gate-level chips are built cell by cell; keep small
            chip = GateLevelChip(ChipConfig(n=n, sc_per_npe=4))
            row["gate_level_pct"] = round(
                100 * chip_transmission_fraction(chip), 1
            )
        rows.append(row)
    entries = [
        {"metric": "share @ 1x1, model (%)", "paper": 6.0,
         "measured": rows[0]["model_share_pct"]},
        {"metric": "share @ 1x1, gate-level (%)", "paper": 6.0,
         "measured": rows[0]["gate_level_pct"]},
        {"metric": "share @ 16x16, model (%)", "paper": 53.0,
         "measured": rows[-1]["model_share_pct"]},
    ]
    report = (
        format_table(rows, title="Section 6.3A: transmission delay share")
        + "\n\n" + paper_vs_measured(entries)
    )
    return {"rows": rows, "entries": entries, "report": report}


def run_reload_overhead(chip_n: int = 16, samples: int = 5) -> Dict:
    """Measure the weight-reload share of inference time on the real
    (scaled-down) workload -- the paper reports ~20% on average."""
    bundle = get_trained_bundle(dataset="digits")
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    plan = plan_network(network, chip_n)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    fractions, fps_values = [], []
    for i in range(samples):
        trains = encoder.encode_steps(
            data.test_images[i:i + 1].reshape(1, -1), model.time_steps
        )[:, 0, :]
        enc = encode_inference(plan, trains)
        fractions.append(enc.reload_fraction)
        fps_values.append(enc.fps)
    mean_fraction = float(np.mean(fractions))
    entries = [
        {"metric": "reload share of inference time (%)", "paper": 20.0,
         "measured": round(100 * mean_fraction, 1)},
    ]
    return {
        "reload_fraction": mean_fraction,
        "fps_values": fps_values,
        "entries": entries,
        "report": paper_vs_measured(
            entries, title="Section 4.2.2: weight-reload overhead"
        ),
    }


def run_yield_tolerance(dead_fractions=(0.0, 0.02, 0.05, 0.1, 0.2),
                        test_size: int = 300, seed: int = 0) -> Dict:
    """Extension: accuracy under fabrication defects.

    Superconducting fabrication is still maturing ("the current
    superconducting fabrication technique is more stable for chips with
    low JJ density", section 6) -- so a deployment must know how gracefully
    inference degrades when crosspoints die.  A dead crosspoint NDRO is a
    synapse stuck at strength 0; we knock out random fractions of the
    deployed network's synapses and measure chip accuracy."""
    from repro.snn.binarize import BinarizedLayer, BinarizedNetwork

    bundle = get_trained_bundle(dataset="digits")
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    images = data.test_images[:test_size]
    labels = data.test_labels[:test_size]
    trains = encoder.encode_steps(images.reshape(len(images), -1),
                                  model.time_steps)
    rng = np.random.default_rng(seed)
    runtime = SushiRuntime(chip_n=16)
    rows = []
    accs = {}
    for fraction in dead_fractions:
        layers = []
        for layer in network.layers:
            weights = layer.signed_weights.copy()
            dead = rng.random(weights.shape) < fraction
            weights[dead] = 0
            layers.append(BinarizedLayer(weights, layer.thresholds))
        degraded = BinarizedNetwork(layers)
        result = runtime.infer(degraded, trains)
        acc = float((result.predictions == labels).mean())
        accs[fraction] = acc
        rows.append({
            "dead_synapse_fraction": fraction,
            "chip_accuracy": round(acc, 4),
        })
    report = format_table(
        rows, title="Extension: accuracy under dead crosspoints "
                    "(fabrication yield)"
    )
    return {"accs": accs, "rows": rows, "report": report}


def run_temporal_limits(train_size: int = 400, test_size: int = 120,
                        epochs: int = 20) -> Dict:
    """Extension: what the stateless SSNN neuron gives up on temporal data.

    On the paper's rate-coded image workloads, clearing the membrane at
    each time step (section 5.1) costs almost nothing -- every step
    carries the full stimulus.  On an event-stream workload (DVS-style
    moving bars, :mod:`repro.data.events`) the class is *only* visible
    across steps: stateful IF integrates the motion, the stateless neuron
    cannot.  This bounds the workload domain of the simplification."""
    from repro.data.events import load_moving_bars
    from repro.snn import Linear, Sequential, Trainer, TrainerConfig
    from repro.snn.model import EventSpikingClassifier
    from repro.snn.neurons import IFNode, StatelessIFNode

    data = load_moving_bars(train_size=train_size, test_size=test_size,
                            side=8, steps=8, seed=0)
    side2 = data.frame_size ** 2
    results = {}
    rows = []
    for node_cls, name in ((IFNode, "stateful IF (reference)"),
                           (StatelessIFNode, "stateless IF (SSNN, 5.1)")):
        network = Sequential(
            Linear(side2, 48, seed=0), node_cls(v_threshold=1.0),
            Linear(48, data.num_classes, seed=1),
            node_cls(v_threshold=1.0),
        )
        model = EventSpikingClassifier(network,
                                       time_steps=data.time_steps)
        Trainer(model, TrainerConfig(epochs=epochs, batch_size=32,
                                     learning_rate=5e-3)).fit(
            data.train_events, data.train_labels
        )
        acc = float(
            (model.predict(data.test_events) == data.test_labels).mean()
        )
        results[name] = acc
        rows.append({"neuron model": name, "accuracy": round(acc, 4)})
    rows.append({"neuron model": "chance", "accuracy": 0.25})
    report = format_table(
        rows, title="Extension: stateless-neuron cost on temporal "
                    "(event-stream) data -- moving-bar direction"
    )
    return {
        "stateful_acc": results["stateful IF (reference)"],
        "stateless_acc": results["stateless IF (SSNN, 5.1)"],
        "rows": rows,
        "report": report,
    }


def run_robustness(seeds=(11, 22, 33, 44), noise_levels=(0.0, 0.1, 0.2),
                   test_size: int = 200) -> Dict:
    """Extension: robustness of chip inference to encoding stochasticity
    and input corruption.

    Rate coding is inherently stochastic -- a deployed SUSHI sees a fresh
    Poisson draw per inference -- so accuracy must be stable across
    encoder seeds; and the event-driven pipeline should degrade gracefully
    under input noise rather than collapse."""
    bundle = get_trained_bundle(dataset="digits")
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    images = data.test_images[:test_size]
    labels = data.test_labels[:test_size]
    runtime = SushiRuntime(chip_n=16)

    seed_accs = []
    for seed in seeds:
        trains = PoissonEncoder(seed=seed).encode_steps(
            images.reshape(len(images), -1), model.time_steps
        )
        result = runtime.infer(network, trains)
        seed_accs.append(float((result.predictions == labels).mean()))

    rng = np.random.default_rng(0)
    noise_rows = []
    for noise in noise_levels:
        noisy = np.clip(
            images + rng.normal(0.0, noise, images.shape), 0.0, 1.0
        )
        trains = PoissonEncoder(seed=seeds[0]).encode_steps(
            noisy.reshape(len(noisy), -1), model.time_steps
        )
        result = runtime.infer(network, trains)
        noise_rows.append({
            "input_noise_sigma": noise,
            "chip_accuracy": round(
                float((result.predictions == labels).mean()), 4
            ),
        })
    seed_spread = max(seed_accs) - min(seed_accs)
    report = format_table(
        [{"encoder_seed": s, "chip_accuracy": round(a, 4)}
         for s, a in zip(seeds, seed_accs)],
        title="Robustness: fresh Poisson draws per inference",
    )
    report += "\n\n" + format_table(
        noise_rows, title="Robustness: input corruption"
    )
    return {
        "seed_accs": seed_accs,
        "seed_spread": seed_spread,
        "noise_rows": noise_rows,
        "report": report,
    }


def run_conversion_comparison(time_steps=(4, 8, 16, 32)) -> Dict:
    """Extension: direct surrogate-gradient SSNN training vs classical
    ANN-to-SNN conversion.

    Conversion approximates ReLU activations with firing rates, so it
    needs long time windows; the directly-trained SSNN reaches its
    accuracy at T=5 -- the low-latency regime a GHz-pulse superconducting
    chip is built for (and why the paper trains directly)."""
    from repro.snn import ANNClassifier, convert_ann_to_snn

    bundle = get_trained_bundle(dataset="digits")
    direct_model, data = bundle.model, bundle.dataset
    direct_preds = direct_model.predict(data.test_images)
    direct_acc = float((direct_preds == data.test_labels).mean())

    ann = ANNClassifier(hidden_size=256, seed=0)
    ann.fit(data.train_images, data.train_labels, epochs=8,
            learning_rate=2e-3)
    ann_acc = float(
        (ann.predict(data.test_images) == data.test_labels).mean()
    )
    rows = [{
        "pipeline": f"direct SSNN (T={direct_model.time_steps})",
        "time_steps": direct_model.time_steps,
        "accuracy": round(direct_acc, 4),
    }]
    converted_accs = {}
    for steps in time_steps:
        snn = convert_ann_to_snn(ann, data.train_images[:200],
                                 time_steps=steps, encoder_seed=1)
        acc = float(
            (snn.predict(data.test_images) == data.test_labels).mean()
        )
        converted_accs[steps] = acc
        rows.append({
            "pipeline": f"ANN->SNN conversion (T={steps})",
            "time_steps": steps,
            "accuracy": round(acc, 4),
        })
    rows.append({"pipeline": "ANN (float, non-spiking)",
                 "time_steps": "-", "accuracy": round(ann_acc, 4)})
    return {
        "direct_acc": direct_acc,
        "direct_steps": direct_model.time_steps,
        "converted_accs": converted_accs,
        "ann_acc": ann_acc,
        "rows": rows,
        "report": format_table(
            rows, title="Extension: direct SSNN training vs ANN->SNN "
                        "conversion (latency/accuracy trade-off)"
        ),
    }


def run_design_space(samples: int = 3) -> Dict:
    """Design-space exploration (extension): which mesh size should a
    deployment pick for the digit workload?

    For each mesh size, the encoded-stream timing of real inferences gives
    latency and FPS; the resource/power models give area and static power;
    together they yield FPS/mm^2 and energy per inference.  Larger meshes
    cut pass counts (fewer slices) but cost area and power -- the
    flexibility knob the paper's scalability discussion (section 4.2.3)
    points at."""
    bundle = get_trained_bundle(dataset="digits")
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    rows = []
    for n in (2, 4, 8, 16, 32):
        plan = plan_network(network, n)
        latencies = []
        for i in range(samples):
            trains = encoder.encode_steps(
                data.test_images[i:i + 1].reshape(1, -1), model.time_steps
            )[:, 0, :]
            latencies.append(encode_inference(plan, trains).total_ps)
        latency_ps = float(np.mean(latencies))
        fps = 1e12 / latency_ps
        resources = estimate_resources(n, with_weights=False)
        power_mw = PowerModel(resources).static_mw
        energy_nj = power_mw * 1e-3 * latency_ps * 1e-12 * 1e9
        rows.append({
            "mesh": f"{n}x{n}",
            "passes": plan.pass_count,
            "latency_us": round(latency_ps / 1e6, 2),
            "fps": round(fps, 0),
            "area_mm2": round(resources.total_area_mm2, 1),
            "power_mw": round(power_mw, 2),
            "energy_nj_per_inf": round(energy_nj, 2),
            "fps_per_mm2": round(fps / resources.total_area_mm2, 0),
        })
    best_density = max(rows, key=lambda r: r["fps_per_mm2"])
    best_energy = min(rows, key=lambda r: r["energy_nj_per_inf"])
    report = format_table(
        rows, title="Design-space exploration: digit workload vs mesh size"
    )
    report += (
        f"\n\nbest FPS/mm^2: {best_density['mesh']}; "
        f"best energy/inference: {best_energy['mesh']}"
    )
    return {"rows": rows, "best_density": best_density["mesh"],
            "best_energy": best_energy["mesh"], "report": report}


def run_motivation_sync_overhead() -> Dict:
    """Section 3 motivation: synchronous RSFQ designs spend ~80% of their
    resources on timing (clock distribution + pulse alignment), which the
    asynchronous SUSHI design largely avoids.

    Measured from real netlists: a 16-stage counterflow shift register and
    a bit-serial adder (conventional style) vs the SUSHI mesh estimates."""
    from repro.rsfq.netlist import Netlist
    from repro.rsfq.synchronous import (
        BitSerialAdder,
        SyncShiftRegister,
        clock_overhead_fraction,
    )

    sr_net = Netlist("sr16")
    SyncShiftRegister(sr_net, "sr", depth=16)
    adder_net = Netlist("adder")
    BitSerialAdder(adder_net)
    sr_frac = clock_overhead_fraction(sr_net)
    adder_frac = clock_overhead_fraction(adder_net)
    sushi = estimate_resources(4, with_weights=True, max_strength=4)
    sushi_fixed = estimate_resources(16, with_weights=False)
    rows = [
        {"design": "sync 16-stage shift register (memory)",
         "timing_overhead_pct": round(100 * sr_frac, 1)},
        {"design": "sync bit-serial adder",
         "timing_overhead_pct": round(100 * adder_frac, 1)},
        {"design": "SUSHI 4x4 configurable mesh (async)",
         "timing_overhead_pct": round(100 * sushi.wiring_fraction, 1)},
        {"design": "SUSHI 16x16 fixed mesh (async)",
         "timing_overhead_pct": round(100 * sushi_fixed.wiring_fraction, 1)},
    ]
    return {
        "sync_shift_register": sr_frac,
        "sync_adder": adder_frac,
        "sushi_configurable": sushi.wiring_fraction,
        "sushi_fixed": sushi_fixed.wiring_fraction,
        "rows": rows,
        "report": format_table(
            rows,
            title="Section 3 motivation: timing/wiring overhead, "
                  "synchronous RSFQ vs asynchronous SUSHI",
        ),
    }


def run_ablation_quantization(test_size: int = 300) -> Dict:
    """Extension: multi-bit weight magnitudes via pulse-gain strengths > 1
    (the paper's Fig. 10(c) weight structure supports them; the headline
    results use 1-bit).  Compares 1-bit vs 2-bit deployments of a
    float-trained model -- for a network not trained binarization-aware,
    the extra magnitude levels recover accuracy the 1-bit conversion
    loses."""
    from repro.snn import quantize_network

    bundle = get_trained_bundle(dataset="digits", binary_aware=False)
    model, data = bundle.model, bundle.dataset
    encoder = PoissonEncoder(seed=model.encoder_seed)
    images = data.test_images[:test_size]
    labels = data.test_labels[:test_size]
    trains = encoder.encode_steps(images.reshape(len(images), -1),
                                  model.time_steps)
    rows = []
    results = {}
    for bits in (1, 2):
        network = (binarize_network(model) if bits == 1
                   else quantize_network(model, bits=bits))
        result = SushiRuntime(chip_n=16).infer(network, trains)
        acc = float((result.predictions == labels).mean())
        max_strength = max(l.max_strength for l in network.layers)
        results[bits] = {"accuracy": acc, "max_strength": max_strength}
        rows.append({
            "weights": f"{bits}-bit",
            "max_crosspoint_gain": max_strength,
            "chip_accuracy": round(acc, 4),
            "spurious": result.spurious_decisions,
        })
    return {
        "results": results,
        "rows": rows,
        "report": format_table(
            rows, title="Extension: weight precision vs pulse-gain strength"
        ),
    }


def run_reload_optimization(chip_n: int = 16) -> Dict:
    """Section 4.2.2: reordering adjacent batches to share crosspoint
    configurations reduces the weight-reload frequency.

    Measures crosspoint reload events and reload *time* share on the real
    workload, before and after the greedy pass reordering."""
    from repro.ssnn.reload_opt import optimize_plan

    bundle = get_trained_bundle(dataset="digits")
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    plan = plan_network(network, chip_n)
    optimized = optimize_plan(plan)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    trains = encoder.encode_steps(
        data.test_images[:1].reshape(1, -1), model.time_steps
    )[:, 0, :]
    enc_before = encode_inference(plan, trains)
    enc_after = encode_inference(optimized, trains)
    events_before = plan.reload_events()
    events_after = optimized.reload_events()
    rows = [
        {"plan": "in-slice order (naive)",
         "reload_events": events_before,
         "reload_passes": plan.reload_passes(),
         "reload_time_pct": round(100 * enc_before.reload_fraction, 1)},
        {"plan": "greedy overlap order (optimised)",
         "reload_events": events_after,
         "reload_passes": optimized.reload_passes(),
         "reload_time_pct": round(100 * enc_after.reload_fraction, 1)},
    ]
    return {
        "events_before": events_before,
        "events_after": events_after,
        "reduction": (events_before - events_after) / events_before,
        "time_before": enc_before.reload_fraction,
        "time_after": enc_after.reload_fraction,
        "rows": rows,
        "report": format_table(
            rows, title="Section 4.2.2: reload minimisation by batch "
                        "reordering"
        ),
    }


def run_ablation_bucketing(test_size: int = 300) -> Dict:
    """Accuracy with vs without synapse reordering/bucketing.

    Paper claims: the optimisation costs <1% accuracy relative to ideal
    software inference, while naive ordering suffers erroneous excitation."""
    bundle = get_trained_bundle(dataset="digits")
    model, data = bundle.model, bundle.dataset
    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    images = data.test_images[:test_size]
    labels = data.test_labels[:test_size]
    trains = encoder.encode_steps(images.reshape(len(images), -1),
                                  model.time_steps)
    software_preds = network.predict(trains)
    ordered = SushiRuntime(chip_n=16, reorder=True).infer(network, trains)
    naive = SushiRuntime(chip_n=16, reorder=False).infer(network, trains)
    software_acc = float((software_preds == labels).mean())
    ordered_acc = float((ordered.predictions == labels).mean())
    naive_acc = float((naive.predictions == labels).mean())
    rows = [
        {"configuration": "software final-sum (ideal)",
         "accuracy": round(software_acc, 4), "spurious_decisions": 0},
        {"configuration": "chip, reordered+bucketed (paper)",
         "accuracy": round(ordered_acc, 4),
         "spurious_decisions": ordered.spurious_decisions},
        {"configuration": "chip, naive synapse order (ablation)",
         "accuracy": round(naive_acc, 4),
         "spurious_decisions": naive.spurious_decisions},
    ]
    return {
        "software_acc": software_acc,
        "ordered_acc": ordered_acc,
        "naive_acc": naive_acc,
        "ordered_spurious": ordered.spurious_decisions,
        "naive_spurious": naive.spurious_decisions,
        "rows": rows,
        "report": format_table(
            rows, title="Ablation: synapse reordering & bucketing"
        ),
    }


# ---------------------------------------------------------------------------
# Extension: fault-injection resilience (docs/FAULTS.md)
# ---------------------------------------------------------------------------

def run_resilience(
    kinds: Sequence[str] = ("pulse_drop", "pulse_duplicate", "extra_delay"),
    probabilities: Sequence[float] = (0.0, 0.02, 0.1, 0.3),
    jitter_sigmas: Sequence[float] = (0.0, 1.0),
    trials: int = 3,
    drop_probability: float = 0.05,
) -> Dict:
    """Extension: Monte-Carlo resilience campaign plus self-healing demo.

    Part 1 sweeps fault probability x jitter over the reference pulse
    pipeline (:mod:`repro.harness.campaign`) and charts the BER
    degradation curves.  Part 2 runs a ``SushiRuntime`` inference under a
    pulse-drop model with the self-healing retry/fallback loop engaged and
    reports the recorded recovery trail -- the paper's chips have no
    retransmission, so the runtime layer is where resilience must live.
    """
    from repro.harness.campaign import CampaignConfig, run_resilience_campaign
    from repro.harness.differential import (
        random_binarized_network,
        random_spike_trains,
    )
    from repro.rsfq.faults import FaultModel
    from repro.ssnn.runtime import RetryPolicy

    campaign = run_resilience_campaign(CampaignConfig(
        kinds=tuple(kinds),
        probabilities=tuple(probabilities),
        jitter_sigmas=tuple(jitter_sigmas),
        trials=trials,
    ))
    report = campaign.summary()
    report += "\n\n" + campaign.chart()

    rng = np.random.default_rng(7)
    network = random_binarized_network(rng, sizes=(8, 6, 4), sc_per_npe=8)
    trains = random_spike_trains(rng, 6, 8, 8, rate=0.5)
    runtime = SushiRuntime(
        chip_n=8, sc_per_npe=8,
        faults=FaultModel.single("pulse_drop", drop_probability, seed=3),
        retry_policy=RetryPolicy(max_retries=2),
    )
    healed = runtime.infer(network, trains)
    heal_rows = [{
        "fault": f"pulse_drop p={drop_probability}",
        "attempts": healed.attempts,
        "degraded": healed.degraded,
        "injections": healed.fault_injections,
    }]
    report += "\n\n" + format_table(
        heal_rows, title="Self-healing runtime (retry/fallback)"
    )
    if healed.recovery:
        report += "\n" + "\n".join(
            f"  {line}" for line in healed.recovery
        )
    return {
        "campaign": campaign.to_json(),
        "ber_monotone": campaign.ber_monotone(),
        "zero_probability_clean": campaign.zero_probability_clean(),
        "healed_attempts": healed.attempts,
        "healed_degraded": healed.degraded,
        "healed_recovery": list(healed.recovery),
        "report": report,
    }
