"""Monte-Carlo resilience campaigns over the fault-injection subsystem.

A campaign answers the question the paper's robustness discussion leaves
open for a reproduction: *how quickly does a SUSHI-style pulse pipeline
degrade as physical fault rates rise?*  It sweeps a grid of fault
probability x jitter sigma x Monte-Carlo seeds over a reference pulse
pipeline, measures the **bit-error rate** (BER) of the delivered pulse
stream, and reports violation counts and margin degradation alongside.

Everything is deterministic: each grid point's trials derive their fault
seeds from ``(campaign seed, trial index)`` via
:meth:`~repro.rsfq.faults.FaultModel.reseeded`, so a campaign's numbers
are bit-stable across hosts and engines -- the CI smoke job pins them in
``benchmarks/BENCH_faults.json``.

BER definition
--------------

The default workload injects one SFQ pulse every ``pulse_interval_ps``
(200 ps -- comfortably wider than any fault echo/delay the default specs
introduce) into a JTL chain and probes the far end.  Each input pulse
owns one arrival *window*; a window is correct iff exactly one probe
pulse lands in it.  Dropped pulses leave empty windows, duplicated
pulses overfill them, large extra delays push pulses into a neighbour's
window -- all count as bit errors::

    BER = erroneous windows / total windows   (over all trials)

Typical use::

    from repro.harness.campaign import CampaignConfig, run_resilience_campaign

    result = run_resilience_campaign(CampaignConfig(
        kinds=("pulse_drop", "pulse_duplicate"),
        probabilities=(0.0, 0.01, 0.05),
        trials=5,
    ))
    print(result.summary())
    print(result.chart("pulse_drop"))
    result.save("campaign.json")
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harness.charts import line_chart
from repro.harness.reporting import format_table
from repro.rsfq.faults import FAULT_KINDS, FaultModel
from repro.rsfq.library import JTL, Probe
from repro.rsfq.netlist import Netlist
from repro.rsfq.parallel import ParallelSimulator
from repro.rsfq.simulator import Simulator, margin_report_rows

__all__ = [
    "CampaignConfig",
    "CampaignPoint",
    "CampaignResult",
    "run_resilience_campaign",
    "build_reference_pipeline",
]


@dataclass(frozen=True)
class CampaignConfig:
    """One resilience campaign's sweep grid and workload parameters.

    Attributes:
        kinds: Fault kinds to sweep (each gets its own probability curve).
        probabilities: Per-decision fault probabilities, swept per kind.
        jitter_sigmas: Wire-jitter standard deviations (ps) crossed with
            the probability grid.
        trials: Monte-Carlo trials per grid point (fresh fault + jitter
            seeds each, derived from ``seed``).
        seed: Campaign master seed.
        chain_length: JTL stages in the reference pipeline.
        n_pulses: Input pulses per trial (= BER bits per trial).
        pulse_interval_ps: Input pulse spacing; also the BER window width.
        fault_delay_ps: ``delay_ps`` for duplicate/extra-delay specs.
        parallel_parts: When >= 2, trials run on the partitioned engine
            (results are bit-identical to sequential -- a cheap cross
            check for campaign infrastructure).
        engine: ``"event"`` (default) runs every trial on the
            discrete-event engine; ``"traced"`` records the stimulus
            schedule once and serves repeat trials from the vectorized
            :class:`~repro.rsfq.trace.TraceEngine` replayer (p=0 /
            zero-injection trials replay, injecting trials transparently
            fall back -- results are bit-identical either way; see
            docs/ENGINE.md).  Mutually exclusive with ``parallel_parts``.
        queue_backend: Event-queue backend for the trial simulators.
        max_events: Runaway guard per trial.
        deadline_s: Optional wall-clock guard per trial (see
            :meth:`repro.rsfq.simulator.Simulator.run`).
    """

    kinds: Tuple[str, ...] = ("pulse_drop",)
    probabilities: Tuple[float, ...] = (0.0, 0.01, 0.05, 0.1)
    jitter_sigmas: Tuple[float, ...] = (0.0,)
    trials: int = 3
    seed: int = 0
    chain_length: int = 24
    n_pulses: int = 32
    pulse_interval_ps: float = 200.0
    fault_delay_ps: float = 5.0
    parallel_parts: int = 0
    engine: str = "event"
    queue_backend: str = "heap"
    max_events: int = 10_000_000
    deadline_s: Optional[float] = None

    def __post_init__(self):
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind '{kind}'; "
                    f"available: {list(FAULT_KINDS)}"
                )
        if self.engine not in ("event", "traced"):
            raise ConfigurationError(
                f"unknown engine '{self.engine}'; "
                "available: ('event', 'traced')"
            )
        if self.engine == "traced" and self.parallel_parts >= 2:
            raise ConfigurationError(
                "engine='traced' and parallel_parts >= 2 are mutually "
                "exclusive; the trace replayer is a sequential-engine "
                "surrogate"
            )
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")
        if self.chain_length < 1:
            raise ConfigurationError("chain_length must be >= 1")
        if self.n_pulses < 1:
            raise ConfigurationError("n_pulses must be >= 1")
        if self.pulse_interval_ps <= 0:
            raise ConfigurationError("pulse_interval_ps must be > 0")
        for p in self.probabilities:
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"probability {p} outside [0, 1]"
                )


@dataclass
class CampaignPoint:
    """Aggregated measurements of one ``(kind, probability, jitter)`` grid
    point across its Monte-Carlo trials."""

    kind: str
    probability: float
    jitter_ps: float
    trials: int
    bits: int
    bit_errors: int
    ber: float
    injections: int
    violations: int
    events: int
    worst_slack_ps: Optional[float]

    def to_row(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "p": self.probability,
            "jitter_ps": self.jitter_ps,
            "BER": round(self.ber, 6),
            "bit_errors": self.bit_errors,
            "bits": self.bits,
            "injections": self.injections,
            "violations": self.violations,
            "worst_slack_ps": (
                "-" if self.worst_slack_ps is None
                else round(self.worst_slack_ps, 2)
            ),
        }


@dataclass
class CampaignResult:
    """All grid points of one campaign plus serialisation/chart hooks."""

    config: CampaignConfig
    points: List[CampaignPoint] = field(default_factory=list)

    # -- queries -----------------------------------------------------------

    def curve(self, kind: str, jitter_ps: float = 0.0,
              ) -> Tuple[List[float], List[float]]:
        """``(probabilities, BERs)`` of one kind's degradation curve."""
        pts = sorted(
            (pt for pt in self.points
             if pt.kind == kind and pt.jitter_ps == jitter_ps),
            key=lambda pt: pt.probability,
        )
        return [pt.probability for pt in pts], [pt.ber for pt in pts]

    def ber_monotone(self, tolerance: float = 0.0) -> bool:
        """True when every (kind, jitter) curve's BER is non-decreasing in
        fault probability (within ``tolerance``) -- the sanity property
        the CI smoke job asserts."""
        seen = {(pt.kind, pt.jitter_ps) for pt in self.points}
        for kind, jitter in seen:
            _, bers = self.curve(kind, jitter)
            for lo, hi in zip(bers, bers[1:]):
                if hi + tolerance < lo:
                    return False
        return True

    def zero_probability_clean(self) -> bool:
        """True when every p=0 point recorded BER 0, zero injections and
        zero violations (the no-fault baseline really is fault-free)."""
        return all(
            pt.ber == 0.0 and pt.injections == 0 and pt.violations == 0
            for pt in self.points if pt.probability == 0.0
        )

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        """Aligned text table of every grid point."""
        return format_table(
            [pt.to_row() for pt in self.points],
            title=(
                f"resilience campaign: {self.config.trials} trials/point, "
                f"{self.config.n_pulses}-bit stream over "
                f"{self.config.chain_length}-stage pipeline"
            ),
        )

    def chart(self, kind: Optional[str] = None) -> str:
        """ASCII BER-vs-probability chart (one series per (kind, jitter)
        combination; restrict with ``kind``)."""
        series: Dict[str, Sequence[float]] = {}
        x_values: Optional[List[float]] = None
        for k in (self.config.kinds if kind is None else (kind,)):
            for sigma in self.config.jitter_sigmas:
                xs, ys = self.curve(k, sigma)
                if not xs:
                    continue
                label = k if sigma == 0.0 else f"{k}@{sigma:g}ps"
                series[label] = ys
                x_values = xs
        if not series or x_values is None:
            raise ConfigurationError(
                f"no campaign points for kind={kind!r}"
            )
        return line_chart(
            x_values, series,
            title="BER vs fault probability", y_label="BER",
        )

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> dict:
        cfg = asdict(self.config)
        return {
            "schema": "repro.campaign/v1",
            "config": cfg,
            "points": [asdict(pt) for pt in self.points],
            "ber_monotone": self.ber_monotone(),
            "zero_probability_clean": self.zero_probability_clean(),
        }

    def save(self, path) -> None:
        """Write the campaign artifact as pretty-printed JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def build_reference_pipeline(chain_length: int) -> Tuple[Netlist, Probe]:
    """The campaign's default workload: a ``chain_length``-stage JTL chain
    with a probe on the far end (the minimal circuit in which every fault
    kind is observable as a bit error)."""
    net = Netlist("resilience-pipeline")
    prev = None
    for i in range(chain_length):
        cell = net.add(JTL(f"j{i}"))
        if prev is not None:
            net.connect(prev, "dout", cell, "din")
        prev = cell
    probe = net.add(Probe("probe"))
    net.connect(prev, "dout", probe, "din")
    return net, probe


def _window_errors(times: Sequence[float], n_pulses: int,
                   interval: float, latency: float) -> int:
    """Count BER windows that did not receive exactly one pulse."""
    counts = [0] * n_pulses
    stray = 0
    for t in times:
        k = int(round((t - latency) / interval))
        if 0 <= k < n_pulses:
            counts[k] += 1
        else:
            stray += 1  # pushed clear out of the stream -- count below
    errors = sum(1 for c in counts if c != 1)
    # A stray pulse beyond the last window is already someone's missing
    # pulse (counted above) or a duplicate escapee; only count it when it
    # did not already surface as a window error.
    return min(errors + max(stray - errors, 0), n_pulses)


def _trial_model(kind: str, probability: float, delay_ps: float,
                 seed, trial: int) -> FaultModel:
    """The trial's fault model: one spec, reseeded per (seed, trial)."""
    return FaultModel.single(
        kind, probability=probability, delay_ps=delay_ps,
        seed=f"campaign|{seed!r}|{trial}",
    )


def run_resilience_campaign(
    config: CampaignConfig = CampaignConfig(),
    netlist_factory=None,
) -> CampaignResult:
    """Sweep the campaign grid and return the aggregated result.

    ``netlist_factory`` overrides the workload: a callable returning
    ``(netlist, probe)`` like :func:`build_reference_pipeline` (the
    default).  Each trial constructs a fresh workload so cell state and
    probes never leak between grid points.
    """
    factory = netlist_factory or (
        lambda: build_reference_pipeline(config.chain_length)
    )
    interval = config.pulse_interval_ps
    result = CampaignResult(config=config)

    trace_engine = None
    if config.engine == "traced":
        from repro.rsfq.trace import TraceEngine

        # One engine for the whole campaign: the stimulus schedule is
        # identical across trials/grid points, so a single recording
        # serves every zero-injection trial as a vectorized replay.
        trace_engine = TraceEngine(factory()[0])

    # Chain latency: probe arrival time of an unfaulted pulse, measured
    # once on a clean run (robust to custom factories).
    net, probe = factory()
    sim = Simulator(net, queue_backend=config.queue_backend)
    sim.schedule_input(next(iter(net.cells)), "din", 0.0)
    sim.run(max_events=config.max_events)
    latency = probe.times[0] if probe.times else 0.0

    for kind in config.kinds:
        for sigma in config.jitter_sigmas:
            for p in config.probabilities:
                bits = 0
                bit_errors = 0
                injections = 0
                violations = 0
                events = 0
                worst_slack: Optional[float] = None
                for trial in range(config.trials):
                    net, probe = factory()
                    model = _trial_model(
                        kind, p, config.fault_delay_ps, config.seed, trial
                    )
                    # String seeds use CPython's stable sha512 seeding in
                    # both the global RNG and the per-wire streams, so
                    # trial jitter is reproducible across hosts/processes.
                    jitter_seed = f"campaign-jitter|{config.seed!r}|{trial}"
                    first = next(iter(net.cells))
                    stimuli = [
                        (first, "din", k * interval)
                        for k in range(config.n_pulses)
                    ]
                    if trace_engine is not None:
                        episode = trace_engine.run_episode(
                            (stimuli,), jitter_ps=sigma, seed=jitter_seed,
                            jitter_mode="wire", faults=model,
                            max_events=config.max_events,
                            deadline_s=config.deadline_s,
                            queue_backend=config.queue_backend,
                            netlist=net,
                        )
                        bits += config.n_pulses
                        bit_errors += _window_errors(
                            probe.times, config.n_pulses, interval, latency
                        )
                        injections += sum(episode.fault_counts.values())
                        violations += len(episode.violations)
                        events += episode.events
                        for row in margin_report_rows(episode.margins):
                            slack = row["slack_ps"]
                            if worst_slack is None or slack < worst_slack:
                                worst_slack = slack
                        continue
                    if config.parallel_parts >= 2:
                        trial_sim = ParallelSimulator(
                            net, parts=config.parallel_parts,
                            jitter_ps=sigma, seed=jitter_seed,
                            queue_backend=config.queue_backend,
                            faults=model,
                        )
                    else:
                        trial_sim = Simulator(
                            net, jitter_ps=sigma, seed=jitter_seed,
                            jitter_mode="wire",
                            queue_backend=config.queue_backend,
                            faults=model,
                        )
                    stats = trial_sim.run_batch(
                        [stimuli],
                        max_events=config.max_events,
                        deadline_s=config.deadline_s,
                    )[0]
                    bits += config.n_pulses
                    bit_errors += _window_errors(
                        probe.times, config.n_pulses, interval, latency
                    )
                    injections += sum(trial_sim.fault_counts().values())
                    violations += stats.violations
                    events += stats.events
                    for row in trial_sim.margin_report():
                        slack = row["slack_ps"]
                        if worst_slack is None or slack < worst_slack:
                            worst_slack = slack
                result.points.append(CampaignPoint(
                    kind=kind,
                    probability=p,
                    jitter_ps=sigma,
                    trials=config.trials,
                    bits=bits,
                    bit_errors=bit_errors,
                    ber=bit_errors / bits if bits else 0.0,
                    injections=injections,
                    violations=violations,
                    events=events,
                    worst_slack_ps=worst_slack,
                ))
    return result
