"""Aligned text tables for experiment reports."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``columns`` when given, else the first row's key
    order.  Values are right-aligned except strings.
    """
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    columns = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    out: List[str] = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    out.append(header)
    out.append("-" * len(header))
    for line in cells:
        out.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
    return "\n".join(out)


def paper_vs_measured(
    entries: Sequence[Dict[str, object]], title: Optional[str] = None
) -> str:
    """Render metric/paper/measured rows with a relative-delta column.

    Each entry needs ``metric``, ``paper`` and ``measured`` keys; numeric
    pairs get a ``delta`` percentage.
    """
    rows = []
    for entry in entries:
        paper = entry["paper"]
        measured = entry["measured"]
        delta = ""
        if isinstance(paper, (int, float)) and isinstance(
            measured, (int, float)
        ) and paper:
            delta = f"{100.0 * (measured - paper) / paper:+.1f}%"
        rows.append({
            "metric": entry["metric"],
            "paper": paper,
            "measured": measured,
            "delta": delta,
        })
    return format_table(rows, ["metric", "paper", "measured", "delta"],
                        title=title)
