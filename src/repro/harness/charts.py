"""ASCII line charts for the figure reports.

The paper's Figs. 13 and 19-21 are line plots; the benchmark logs render
them as terminal charts so trends (who wins, where curves bend) are
visible without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@"


def line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render one or more series over shared x values as ASCII.

    Points are plotted with per-series glyphs on a ``width`` x ``height``
    grid with a simple linear y-axis; a legend line maps glyphs to names.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if len(series) > len(SERIES_GLYPHS):
        raise ConfigurationError(
            f"at most {len(SERIES_GLYPHS)} series supported"
        )
    if width < 8 or height < 4:
        raise ConfigurationError("chart too small to draw")
    x_values = list(x_values)
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ConfigurationError(
                f"series '{name}' length differs from x values"
            )
    all_y = [y for ys in series.values() for y in ys]
    y_min = min(all_y + [0.0])
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1,
                   int(round((x - x_min) / (x_max - x_min) * (width - 1))))

    def row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, int(round((1.0 - frac) * (height - 1))))

    for glyph, (name, ys) in zip(SERIES_GLYPHS, series.items()):
        for x, y in zip(x_values, ys):
            grid[row(y)][col(x)] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:,.0f}" if abs(y_max) >= 10 else f"{y_max:.3g}"
    bottom_label = f"{y_min:,.0f}" if abs(y_min) >= 10 else f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for i, grid_row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(grid_row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * label_width}  {x_left}{' ' * max(pad, 1)}{x_right}"
    )
    legend = "   ".join(
        f"{glyph}={name}"
        for glyph, name in zip(SERIES_GLYPHS, series.keys())
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)
