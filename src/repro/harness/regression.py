"""Metric snapshots and regression comparison.

Records the scalar outcomes of experiment runs to JSON so that future
changes to the library (cell parameters, calibration constants, training
recipes) can be checked against a known-good baseline -- the
release-engineering loop a production repo runs in CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass
class MetricSnapshot:
    """A named set of scalar metrics with optional per-metric tolerances."""

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def record(self, key: str, value: float) -> None:
        if not isinstance(value, (int, float)):
            raise ConfigurationError(f"metric '{key}' must be numeric")
        self.metrics[key] = float(value)

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"name": self.name, "metrics": self.metrics},
                      handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "MetricSnapshot":
        if not os.path.exists(path):
            raise ConfigurationError(f"no snapshot at '{path}'")
        with open(path) as handle:
            payload = json.load(handle)
        try:
            return cls(name=payload["name"], metrics=dict(payload["metrics"]))
        except KeyError as missing:
            raise ConfigurationError(f"malformed snapshot: {missing}")


@dataclass(frozen=True)
class Drift:
    """One metric's movement between snapshots."""

    key: str
    baseline: Optional[float]
    current: Optional[float]

    @property
    def relative(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return None if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


def compare(
    baseline: MetricSnapshot,
    current: MetricSnapshot,
    tolerance: float = 0.05,
    per_metric_tolerance: Optional[Dict[str, float]] = None,
) -> List[Drift]:
    """Drifts exceeding tolerance (plus added/removed metrics).

    ``tolerance`` is the default allowed relative change; individual keys
    can be overridden via ``per_metric_tolerance``.
    """
    if tolerance < 0:
        raise ConfigurationError("tolerance must be >= 0")
    per_metric_tolerance = per_metric_tolerance or {}
    failures: List[Drift] = []
    keys = set(baseline.metrics) | set(current.metrics)
    for key in sorted(keys):
        drift = Drift(
            key=key,
            baseline=baseline.metrics.get(key),
            current=current.metrics.get(key),
        )
        if drift.baseline is None or drift.current is None:
            failures.append(drift)
            continue
        allowed = per_metric_tolerance.get(key, tolerance)
        relative = drift.relative
        if relative is not None and abs(relative) > allowed:
            failures.append(drift)
    return failures


def snapshot_headline_metrics() -> MetricSnapshot:
    """Snapshot the calibrated hardware-model headline numbers (fast --
    no training), suitable as a CI regression gate."""
    from repro.resources.estimator import estimate_resources
    from repro.resources.performance import PerformanceModel
    from repro.resources.power import PowerModel

    snap = MetricSnapshot("headline")
    r4 = estimate_resources(4, with_weights=True, max_strength=4)
    r16 = estimate_resources(16, with_weights=False)
    perf = PerformanceModel(16)
    power = PowerModel(r16).total_mw(perf.peak_sops())
    snap.record("table2_total_jj", r4.total_jj)
    snap.record("table2_wiring_jj", r4.wiring_jj)
    snap.record("table2_area_mm2", r4.total_area_mm2)
    snap.record("peak_total_jj", r16.total_jj)
    snap.record("peak_area_mm2", r16.total_area_mm2)
    snap.record("peak_gsops", perf.peak_gsops())
    snap.record("peak_power_mw", power)
    snap.record("peak_gsops_per_w", perf.peak_gsops() / (power * 1e-3))
    snap.record("delay_share_16", perf.transmission_delay_share())
    snap.record("delay_share_1",
                PerformanceModel(1).transmission_delay_share())
    return snap
