"""Deterministic chaos harness for the supervised serving pipeline.

Every scenario injects one process-level failure mode into a live
:class:`~repro.ssnn.pool.InferencePool` (or a full
:class:`~repro.serve.server.InferenceServer`) and asserts the two
invariants the robustness layer promises (docs/SERVING.md, "Failure
semantics"):

1. **Bit-identical answers** -- every recovered call returns exactly
   the serial ``CompiledNetwork.forward_rows`` result (decisions,
   spurious count and synaptic-op count all equal).
2. **Full restoration** -- after the dust settles,
   ``alive_workers()`` equals the configured worker count again.

Faults are injected *inside the worker process* through the pool's
picklable ``chaos_hook`` (called before every task), so scenarios do
not depend on racing the parent from the outside.  Each hook draws
fire permits from a shared on-disk budget (``O_CREAT | O_EXCL`` marker
files), which makes the injection count exact across worker
generations: a respawned worker inherits the same hook and the same
budget, so "kill exactly one worker" means exactly one -- even though
the killer is resurrected with the hook still armed.

Scenarios (``python -m repro chaos``; ``--quick`` shrinks workloads):

* ``worker-kill``    -- SIGKILL a worker mid-batch; shard retry.
* ``worker-freeze``  -- a worker stalls past ``result_timeout_s``;
  force-kill + respawn on the progress deadline.
* ``shm-unlink``     -- an input segment vanishes mid-batch; republish
  under fresh names with a bumped epoch.
* ``shm-corrupt``    -- an input epoch guard is scribbled over; stale
  detection + republish.
* ``poison-batch``   -- a row block that kills workers on every
  delivery is quarantined (:class:`PoisonBatchError`) twice, served
  serially, and the pool survives to serve the next block.
* ``breaker-cycle``  -- consecutive pool failures open the server's
  :class:`~repro.serve.breaker.CircuitBreaker`; the half-open probe
  closes it; answers are identical throughout.

Node-level scenarios (PR 8) raise the blast radius from one worker
process to a whole :class:`~repro.cluster.node.PoolNode` behind the
:class:`~repro.cluster.router.ClusterRouter`:

* ``node-kill``      -- a whole node dies mid-batch (workers SIGKILLed,
  host gone); the router re-dispatches the request exactly once to a
  healthy node, evicts the corpse, and a replacement restores capacity.
* ``node-partition`` -- a node is cut off from the router; probes
  quarantine it out of the hash ring, traffic re-routes, and the healed
  node rejoins with its original affinity.
* ``scale-storm``    -- the autoscaler rides scripted load 1 -> 8 nodes
  and back down to 1 (fake clock, drain-before-retire), with traffic
  dispatched after every resize.

Every node scenario asserts the same invariant as the worker ones:
answers bit-identical to serial ``forward_rows`` through the event,
and the cluster restored to full routable capacity afterwards.

Network-layer scenarios (PR 10) move the blast radius *outside* the
gateway socket: each runs the full request path -- resilient
:class:`~repro.gateway.client.GatewayClient` -> seeded
:class:`~repro.netchaos.ChaosProxy` -> live :class:`Gateway` -> server
-- and asserts exact client/proxy/server ledgers on top of the
bit-identical predictions:

* ``net-reset-storm``   -- responses RST mid-flight; idempotent
  retries replay the recorded answer (exactly-once at the server).
* ``net-latency-spike`` -- responses delayed past the client timeout;
  the accepted-then-lost request is retried and replayed, never
  recomputed.
* ``net-black-hole``    -- accept-then-silence upstreams; timeouts and
  retries land on a healthy path with zero duplicate computes.
* ``net-slow-client``   -- slowloris request trickle; the gateway
  tolerates slow frames with no retries at all.
* ``net-hedge-race``    -- a delayed primary loses to a hedged
  duplicate carrying the same idempotency key (one compute, one
  replay).
* ``net-overload-shed`` -- a held backend triggers shed-before-queue:
  batch-priority traffic sheds as ``overloaded`` with ``Retry-After``
  while critical traffic still queues and completes.

The runner emits a ``repro.chaos/v1`` JSON report.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.harness.differential import random_binarized_network
from repro.serve.breaker import CircuitBreaker
from repro.serve.server import InferenceServer
from repro.ssnn.compile import CompiledNetwork, compile_network
from repro.ssnn.pool import InferencePool, PoisonBatchError

CHAOS_SCHEMA = "repro.chaos/v1"

#: Chip configuration every scenario compiles against (small enough to
#: spawn in milliseconds, big enough to shard).
CHIP_N = 4
SC_PER_NPE = 8
WORKERS = 2


class ChaosAssertionError(AssertionError):
    """A chaos scenario's recovery invariant did not hold."""


# -- fault-injection hooks (picklable; executed inside workers) --------------


class ChaosHook:
    """Base hook: fires at most ``budget`` times across *all* worker
    generations, using ``O_CREAT | O_EXCL`` marker files in
    ``marker_dir`` as an atomic cross-process permit pool."""

    def __init__(self, marker_dir: str, budget: int = 1):
        self.marker_dir = marker_dir
        self.budget = budget

    def _claim(self) -> bool:
        """Atomically claim one fire permit; False once exhausted."""
        for i in range(self.budget):
            path = os.path.join(self.marker_dir, f"fired-{i}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self) -> int:
        """Permits consumed so far (parent-side observability)."""
        return sum(
            1 for name in os.listdir(self.marker_dir)
            if name.startswith("fired-")
        )

    def __call__(self, slot, job, epoch, shard, in_name, out_name) -> None:
        if self._claim():
            self.fire(slot, job, epoch, shard, in_name, out_name)

    def fire(self, slot, job, epoch, shard, in_name, out_name) -> None:
        raise NotImplementedError


class KillHook(ChaosHook):
    """SIGKILL the worker before it touches the task (a crashed or
    OOM-killed process; the harshest exit -- no cleanup, no result)."""

    def fire(self, slot, job, epoch, shard, in_name, out_name) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


class FreezeHook(ChaosHook):
    """Stall the worker well past the pool's ``result_timeout_s`` (a
    livelocked or SIGSTOPped process that is alive but makes no
    progress)."""

    def __init__(self, marker_dir: str, budget: int = 1,
                 sleep_s: float = 30.0):
        super().__init__(marker_dir, budget)
        self.sleep_s = sleep_s

    def fire(self, slot, job, epoch, shard, in_name, out_name) -> None:
        time.sleep(self.sleep_s)


class UnlinkShmHook(ChaosHook):
    """Unlink the input segment before the task attaches it (a purged
    ``/dev/shm`` -- the segment name dangles)."""

    def fire(self, slot, job, epoch, shard, in_name, out_name) -> None:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=in_name)
        except FileNotFoundError:
            return
        try:
            segment.unlink()
        finally:
            segment.close()


class CorruptHeaderHook(ChaosHook):
    """Zero the input segment's ``(job, epoch)`` guard (bit corruption
    in the header); the worker's validation must reject the task as
    stale instead of computing on suspect rows."""

    def fire(self, slot, job, epoch, shard, in_name, out_name) -> None:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=in_name)
        except FileNotFoundError:
            return
        try:
            segment.buf[:16] = b"\x00" * 16
        finally:
            segment.close()


class _FlakyPool:
    """Wrap a real pool: the first ``failures`` calls raise, the rest
    delegate -- a deterministic stand-in for a pool whose host keeps
    failing (what the circuit breaker exists for)."""

    def __init__(self, inner: InferencePool, failures: int):
        self._inner = inner
        self.remaining_failures = failures

    def infer_rows(self, rows):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise RuntimeError("chaos: injected pool failure")
        return self._inner.infer_rows(rows)

    @property
    def closed(self):
        return self._inner.closed

    @property
    def compiled(self):
        return self._inner.compiled

    @property
    def workers(self):
        return self._inner.workers

    @property
    def restarts(self):
        return self._inner.restarts

    def alive_workers(self):
        return self._inner.alive_workers()

    def close(self):
        self._inner.close()


# -- workload ----------------------------------------------------------------


def _workload(quick: bool):
    """Deterministic compiled network + row block for the scenarios."""
    rng = np.random.default_rng(7)
    network = random_binarized_network(
        rng, sizes=(12, 9, 5), sc_per_npe=SC_PER_NPE
    )
    compiled = compile_network(network, CHIP_N, SC_PER_NPE)
    n_rows = 12 if quick else 48
    rows_rng = np.random.default_rng(11)
    rows = (rows_rng.random((n_rows, compiled.in_features)) < 0.4)
    return compiled, rows.astype(np.float64)


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosAssertionError(message)


def _check_equal(got, want, label: str) -> None:
    _check(np.array_equal(got[0], want[0]),
           f"{label}: decisions diverged from serial forward_rows")
    _check(got[1] == want[1],
           f"{label}: spurious count {got[1]} != serial {want[1]}")
    _check(got[2] == want[2],
           f"{label}: synops {got[2]} != serial {want[2]}")


# -- scenarios ---------------------------------------------------------------


def _scenario_worker_kill(quick: bool, marker_dir: str) -> Dict:
    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    hook = KillHook(marker_dir, budget=1)
    with InferencePool(
        compiled, workers=WORKERS, chaos_hook=hook, result_timeout_s=30.0
    ) as pool:
        got = pool.infer_rows(rows)
        _check_equal(got, want, "worker-kill")
        _check(hook.fired() == 1, "worker-kill: hook did not fire")
        _check(pool.restarts >= 1,
               "worker-kill: no worker was respawned")
        _check(pool.alive_workers() == WORKERS,
               "worker-kill: pool not restored to full worker count")
        # The pool keeps serving after recovery.
        _check_equal(pool.infer_rows(rows), want, "worker-kill follow-up")
        return {"restarts": pool.restarts, "fired": hook.fired()}


def _scenario_worker_freeze(quick: bool, marker_dir: str) -> Dict:
    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    hook = FreezeHook(marker_dir, budget=1, sleep_s=30.0)
    with InferencePool(
        compiled, workers=WORKERS, chaos_hook=hook, result_timeout_s=0.75
    ) as pool:
        start = time.monotonic()
        got = pool.infer_rows(rows)
        elapsed = time.monotonic() - start
        _check_equal(got, want, "worker-freeze")
        _check(hook.fired() == 1, "worker-freeze: hook did not fire")
        _check(pool.restarts >= 1,
               "worker-freeze: frozen worker was not force-killed")
        _check(pool.alive_workers() == WORKERS,
               "worker-freeze: pool not restored to full worker count")
        _check(elapsed < 10.0,
               "worker-freeze: recovery waited for the full freeze")
        _check_equal(pool.infer_rows(rows), want, "worker-freeze follow-up")
        return {"restarts": pool.restarts, "recovery_s": round(elapsed, 3)}


def _scenario_shm_unlink(quick: bool, marker_dir: str) -> Dict:
    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    hook = UnlinkShmHook(marker_dir, budget=1)
    with InferencePool(
        compiled, workers=WORKERS, chaos_hook=hook, result_timeout_s=30.0
    ) as pool:
        got = pool.infer_rows(rows)
        _check_equal(got, want, "shm-unlink")
        _check(hook.fired() == 1, "shm-unlink: hook did not fire")
        _check(pool.alive_workers() == WORKERS,
               "shm-unlink: pool not restored to full worker count")
        _check_equal(pool.infer_rows(rows), want, "shm-unlink follow-up")
        return {"restarts": pool.restarts, "fired": hook.fired()}


def _scenario_shm_corrupt(quick: bool, marker_dir: str) -> Dict:
    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    hook = CorruptHeaderHook(marker_dir, budget=1)
    with InferencePool(
        compiled, workers=WORKERS, chaos_hook=hook, result_timeout_s=30.0
    ) as pool:
        got = pool.infer_rows(rows)
        _check_equal(got, want, "shm-corrupt")
        _check(hook.fired() == 1, "shm-corrupt: hook did not fire")
        _check(pool.alive_workers() == WORKERS,
               "shm-corrupt: pool not restored to full worker count")
        _check_equal(pool.infer_rows(rows), want, "shm-corrupt follow-up")
        return {"restarts": pool.restarts, "fired": hook.fired()}


def _scenario_poison_batch(quick: bool, marker_dir: str) -> Dict:
    """A block that kills its worker on *every* delivery: the pool must
    quarantine it (twice), the caller serves it serially, and the pool
    survives to serve clean blocks once the chaos budget is spent."""
    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    hook = KillHook(marker_dir, budget=8)
    poisons = 0
    calls = 0
    with InferencePool(
        compiled, workers=WORKERS, chaos_hook=hook, result_timeout_s=30.0
    ) as pool:
        final = None
        while calls < 12:
            calls += 1
            try:
                final = pool.infer_rows(rows)
            except PoisonBatchError:
                poisons += 1
                _check(pool.alive_workers() == WORKERS,
                       "poison-batch: pool not restored after quarantine")
                # The caller's contract: quarantined blocks run serially.
                _check_equal(compiled.forward_rows(rows), want,
                             "poison-batch serial fallback")
                continue
            break
        _check(final is not None,
               "poison-batch: pool never recovered after chaos budget")
        _check(poisons >= 2,
               f"poison-batch: expected repeated quarantine, got {poisons}")
        _check_equal(final, want, "poison-batch recovery")
        _check(pool.alive_workers() == WORKERS,
               "poison-batch: pool not restored to full worker count")
        return {"poisons": poisons, "calls": calls,
                "restarts": pool.restarts, "fired": hook.fired()}


def _scenario_breaker_cycle(quick: bool, marker_dir: str) -> Dict:
    """Two consecutive pool failures open the server's breaker; while
    open the pool is skipped; the half-open probe closes it again.
    Every answer along the way equals the serial forward."""
    compiled, rows = _workload(quick)
    steps = 6
    train = rows[:steps]  # one request: (steps, in_features)
    decisions, _, _ = compiled.forward_rows(train)
    rates = decisions.reshape(steps, 1, compiled.out_features).mean(axis=0)
    want_prediction = int(rates[0].argmax())

    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.3)
    server = InferenceServer(
        compiled=compiled, workers=WORKERS, batch_max=4,
        deadline_ms=0.5, breaker=breaker,
    )
    server.start()
    try:
        _check(server._pool is not None,
               "breaker-cycle: server failed to spawn its pool")
        flaky = _FlakyPool(server._pool, failures=2)
        server._pool = flaky
        states: List[str] = [breaker.state]
        predictions: List[int] = []
        for _ in range(3):  # 2 failures trip the breaker open
            predictions.append(server.infer(train, timeout=30.0).prediction)
            states.append(breaker.state)
        _check("open" in states,
               f"breaker-cycle: breaker never opened (states={states})")
        _check(flaky.remaining_failures == 0,
               "breaker-cycle: injected failures were not consumed")
        time.sleep(0.35)  # past reset_timeout_s: open -> half-open
        _check(breaker.state == "half-open",
               f"breaker-cycle: expected half-open, got {breaker.state}")
        predictions.append(server.infer(train, timeout=30.0).prediction)
        states.append(breaker.state)
        _check(breaker.state == "closed",
               f"breaker-cycle: probe did not close (states={states})")
        for i, prediction in enumerate(predictions):
            _check(prediction == want_prediction,
                   f"breaker-cycle: request {i} prediction {prediction} "
                   f"!= serial {want_prediction}")
        stats = server.stats()
        _check(stats.pool_failures == 2,
               f"breaker-cycle: pool_failures={stats.pool_failures} != 2")
        _check(stats.workers_alive == WORKERS,
               "breaker-cycle: pool not restored to full worker count")
        snapshot = breaker.snapshot()
        return {
            "states": states,
            "opens": snapshot.opens,
            "closes": snapshot.closes,
            "probes": snapshot.probes,
            "pool_failures": stats.pool_failures,
        }
    finally:
        server.stop()


# -- node-level scenarios (cluster layer) ------------------------------------


def _cluster_workload(quick: bool, node_workers: int):
    """A router over two pool nodes plus the serial reference answer."""
    from repro.cluster import ClusterRouter, PoolNode

    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    router = ClusterRouter(compiled)
    for i in range(2):
        router.join(PoolNode(
            f"node-{i}", compiled, workers=node_workers
        ))
    return compiled, rows, want, router


def _affinity_owner(router, rows):
    """The node the consistent-hash ring routes ``rows`` to."""
    key = router.affinity_key(rows)
    return router.node(router._ring.route(key))


def _scenario_node_kill(quick: bool, marker_dir: str) -> Dict:
    """A whole node dies *mid-batch*: its workers are SIGKILLed and the
    host flag flips while the dispatch is executing, so the in-flight
    answer is lost with the host.  The router must re-dispatch exactly
    once to the healthy node (bit-identical answer), evict the corpse
    from the ring, and a replacement node must restore capacity."""
    compiled, rows, want, router = _cluster_workload(
        quick, node_workers=WORKERS
    )
    try:
        victim = _affinity_owner(router, rows)
        survivor = next(
            router.node(n) for n in router.node_ids()
            if n != victim.node_id
        )
        # Arm the mid-batch death: the victim's forward path kills the
        # node (SIGKILL to its pool workers, state -> dead) and then
        # proceeds -- whatever the doomed pool manages to compute, the
        # node is dead when the call resolves, so the answer is lost
        # and the dispatch must raise NodeUnavailableError internally.
        original_forward = victim._forward

        def dying_forward(batch_rows):
            victim.kill()
            return original_forward(batch_rows)

        victim._forward = dying_forward
        got = router.dispatch(rows)
        _check_equal(got, want, "node-kill")
        _check(victim.state == "dead", "node-kill: victim is not dead")
        _check(router.retries == 1,
               f"node-kill: expected exactly one re-dispatch, "
               f"got {router.retries}")
        _check(router.evictions == 1,
               f"node-kill: evictions={router.evictions} != 1")
        _check(victim.node_id not in router._ring,
               "node-kill: dead node still owns ring points")
        _check(survivor.healthy, "node-kill: survivor degraded")
        # Traffic keeps flowing on the survivor with no further retry.
        _check_equal(router.dispatch(rows), want, "node-kill follow-up")
        _check(router.retries == 1,
               "node-kill: follow-up dispatch needed a retry")
        # Recovery: a replacement node restores routable capacity.
        from repro.cluster import PoolNode

        router.join(PoolNode("node-repl", compiled, workers=WORKERS))
        _check(router.alive_count() == 2,
               "node-kill: cluster not restored to two routable nodes")
        _check_equal(router.dispatch(rows), want, "node-kill recovered")
        return {
            "victim": victim.node_id,
            "retries": router.retries,
            "evictions": router.evictions,
            "rebalances": router.rebalances,
            "nodes_routable": router.alive_count(),
        }
    finally:
        router.shutdown()


def _scenario_node_partition(quick: bool, marker_dir: str) -> Dict:
    """A node is partitioned from the router: dispatches and probes
    fail while its processes stay healthy.  The health sweep must
    quarantine it out of the ring (traffic re-routes, zero wrong
    answers), and after the partition heals the sweep must rejoin it
    and hand its affinity back."""
    compiled, rows, want, router = _cluster_workload(
        quick, node_workers=WORKERS
    )
    try:
        owner = _affinity_owner(router, rows)
        _check_equal(router.dispatch(rows), want, "node-partition baseline")
        _check(router.affinity_hits == 1,
               "node-partition: baseline missed its affinity owner")

        owner.partition()
        # Dispatch *before* any probe: selection skips the unreachable
        # node (it is no longer dispatchable) -- a routed-around
        # fallback, not a retry, and still the exact serial answer.
        _check_equal(router.dispatch(rows), want,
                     "node-partition during partition")
        _check(router.retries == 0,
               "node-partition: routing around should not burn a retry")
        _check(router.fallbacks >= 1,
               "node-partition: expected a fallback dispatch")

        # The health sweep quarantines it out of the ring.
        verdicts = router.probe_all()
        _check(verdicts[owner.node_id] is False,
               "node-partition: probe reached a partitioned node")
        _check(owner.node_id not in router._ring,
               "node-partition: quarantined node still in the ring")
        _check(router.quarantines == 1,
               f"node-partition: quarantines={router.quarantines} != 1")
        _check_equal(router.dispatch(rows), want,
                     "node-partition quarantined")

        # Heal: the next sweep rejoins it and affinity returns.
        owner.heal_partition()
        verdicts = router.probe_all()
        _check(verdicts[owner.node_id] is True,
               "node-partition: healed node still failing probes")
        _check(owner.node_id in router._ring,
               "node-partition: healed node not rejoined")
        _check(router.rejoins == 1,
               f"node-partition: rejoins={router.rejoins} != 1")
        hits_before = router.affinity_hits
        _check_equal(router.dispatch(rows), want, "node-partition healed")
        _check(router.affinity_hits == hits_before + 1,
               "node-partition: healed node did not get its "
               "affinity back")
        _check(owner.alive_workers() == WORKERS,
               "node-partition: node not at full worker strength")
        return {
            "owner": owner.node_id,
            "fallbacks": router.fallbacks,
            "quarantines": router.quarantines,
            "rejoins": router.rejoins,
            "rebalances": router.rebalances,
        }
    finally:
        router.shutdown()


def _scenario_scale_storm(quick: bool, marker_dir: str) -> Dict:
    """Autoscaler storm, fully deterministic: a fake clock and scripted
    gauges drive the cluster 1 -> 8 nodes under sustained "load", then
    back down to 1 (drain-before-retire), with a real dispatch checked
    bit-identical after every resize.  Quick mode uses serial nodes
    (routing is what's under test); the full campaign spawns real pools
    on every node."""
    from repro.cluster import (
        Autoscaler,
        AutoscalerConfig,
        ClusterRouter,
        PoolNode,
    )

    compiled, rows = _workload(quick)
    want = compiled.forward_rows(rows)
    node_workers = 0 if quick else WORKERS
    router = ClusterRouter(compiled)
    seq = [0]

    def factory(node_id: str) -> PoolNode:
        seq[0] += 1
        return PoolNode(f"{node_id}-{seq[0]}", compiled,
                        workers=node_workers)

    router.join(factory("seed"))

    class _FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    clock = _FakeClock()
    config = AutoscalerConfig(
        min_nodes=1, max_nodes=8, hysteresis=2, cooldown_s=5.0,
        scale_up_queue_depth=8.0, scale_down_queue_depth=1.0,
        scale_up_latency_ms=250.0, scale_down_latency_ms=50.0,
    )
    scaler = Autoscaler(router, factory, config=config, clock=clock)

    sizes = [router.alive_count()]
    # Sustained overload: every tick reports hot gauges.  Hysteresis
    # needs 2 breaching ticks per action; cooldown 5s between actions.
    while router.alive_count() < 8:
        clock.now += 6.0
        scaler.tick(queue_depth=32.0, latency_ms_p95=400.0)
        action = scaler.tick(queue_depth=32.0, latency_ms_p95=400.0)
        _check(action == "scale-up",
               f"scale-storm: expected scale-up at {len(sizes)} nodes, "
               f"got {action}")
        sizes.append(router.alive_count())
        _check_equal(router.dispatch(rows), want,
                     f"scale-storm at {router.alive_count()} nodes (up)")
    _check(sizes == [1, 2, 3, 4, 5, 6, 7, 8],
           f"scale-storm: up trajectory {sizes}")
    _check(scaler.scale_ups == 7,
           f"scale-storm: scale_ups={scaler.scale_ups} != 7")

    # The storm breaks: idle gauges drain the cluster back down.
    while router.alive_count() > 1:
        clock.now += 6.0
        scaler.tick(queue_depth=0.0, latency_ms_p95=1.0)
        action = scaler.tick(queue_depth=0.0, latency_ms_p95=1.0)
        _check(action == "scale-down",
               f"scale-storm: expected scale-down, got {action}")
        sizes.append(router.alive_count())
        _check_equal(router.dispatch(rows), want,
                     f"scale-storm at {router.alive_count()} nodes (down)")
    _check(sizes[-1] == 1, f"scale-storm: final size {sizes[-1]} != 1")
    _check(scaler.scale_downs == 7,
           f"scale-storm: scale_downs={scaler.scale_downs} != 7")
    # Another idle tick must NOT retire the last node (min_nodes=1).
    clock.now += 6.0
    scaler.tick(queue_depth=0.0, latency_ms_p95=1.0)
    scaler.tick(queue_depth=0.0, latency_ms_p95=1.0)
    _check(router.alive_count() == 1,
           "scale-storm: autoscaler breached min_nodes")
    _check_equal(router.dispatch(rows), want, "scale-storm settled")
    _check(router.retries == 0 and router.serial_fallbacks == 0,
           "scale-storm: resizing lost or re-routed in-flight work")
    actions = [e["action"] for e in scaler.events]
    router.shutdown()
    return {
        "sizes": sizes,
        "scale_ups": scaler.scale_ups,
        "scale_downs": scaler.scale_downs,
        "actions": actions,
        "rebalances": router.rebalances,
        "node_workers": node_workers,
    }


# -- network-layer scenarios (client -> chaos proxy -> gateway) --------------


def _wait_until(predicate: Callable[[], bool], timeout_s: float = 5.0,
                label: str = "condition") -> None:
    """Poll ``predicate`` every 5ms until true or ``timeout_s`` lapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise ChaosAssertionError(f"timed out waiting for {label}")


def _net_trains(compiled, n_trains: int) -> List[np.ndarray]:
    """Deterministic spike trains for the network scenarios."""
    steps = 6
    rng = np.random.default_rng(29)
    block = (rng.random((n_trains, steps, compiled.in_features)) < 0.35)
    return [block[i].astype(np.float64) for i in range(n_trains)]


def _serial_answer(compiled, train: np.ndarray):
    """Fault-free expectation for one spike train: the gateway's
    ``prediction`` and ``rates`` from a serial ``forward_rows`` pass.

    The server coalesces independent rows step-major, so batched
    results match this per-train serial formula bit-for-bit; JSON
    float round-trips are exact (repr-based), so comparing the decoded
    payload against these floats *is* a bit-identity assertion.
    """
    decisions, _, _ = compiled.forward_rows(train)
    steps = train.shape[0]
    rates = decisions.reshape(
        steps, 1, compiled.out_features
    ).mean(axis=0)[0]
    return int(rates.argmax()), [float(r) for r in rates]


class _NetEdge:
    """The full request path under test: a live serial
    :class:`InferenceServer` behind a live :class:`Gateway` behind a
    seeded :class:`ChaosProxy`, plus a client factory aimed at the
    proxy.  ``close()`` tears the stack down outside-in."""

    def __init__(self, faults=(), *, seed: int = 13,
                 queue_limit: int = 64, shed_queue_depth=None):
        from repro.gateway import (
            AdmissionController,
            ApiKeyAuthenticator,
            Gateway,
            demo_tenants,
        )
        from repro.netchaos import ChaosProxy
        from repro.serve.server import InferenceServer

        compiled, _ = _workload(True)
        self.compiled = compiled
        self.server = InferenceServer(
            compiled=compiled, workers=0, batch_max=8, deadline_ms=0.5
        ).start()
        self.gateway = Gateway(
            self.server,
            authenticator=ApiKeyAuthenticator(demo_tenants()),
            admission=AdmissionController(
                self.server, queue_limit=queue_limit,
                shed_queue_depth=shed_queue_depth,
            ),
        ).run_in_thread()
        self.proxy = ChaosProxy(
            self.gateway.address, tuple(faults), seed=seed
        ).start()

    def client(self, api_key: str = "demo-key-a", **kwargs):
        from repro.gateway import GatewayClient
        return GatewayClient(
            "127.0.0.1", self.proxy.port, api_key=api_key, **kwargs
        )

    def close(self) -> None:
        self.proxy.close()
        self.gateway.close()
        self.server.stop(drain=False)


def _check_net_results(edge, trains, results, label: str) -> None:
    """Every result is a 200 whose prediction/rates are bit-identical
    to the fault-free serial expectation."""
    _check(len(results) == len(trains),
           f"{label}: {len(results)} results for {len(trains)} trains")
    for i, (train, res) in enumerate(zip(trains, results)):
        want_pred, want_rates = _serial_answer(edge.compiled, train)
        _check(res.status == 200,
               f"{label}: request {i} got HTTP {res.status}")
        _check(res.payload.get("prediction") == want_pred,
               f"{label}: request {i} prediction "
               f"{res.payload.get('prediction')} != serial {want_pred}")
        _check(res.payload.get("rates") == want_rates,
               f"{label}: request {i} rates diverged from serial")


def _scenario_net_reset_storm(quick: bool, marker_dir: str) -> Dict:
    """Responses RST mid-flight (SO_LINGER-0 after 20 bytes).  The
    backend computed and recorded each answer before the wire died, so
    every retry must *replay* the recorded answer -- exactly-once is
    proven by the server's completed count staying at one compute per
    train while the retry/replay ledgers match the reset budget."""
    from repro.gateway import RetryPolicy
    from repro.netchaos import NetFault

    resets = 2 if quick else 4
    n_trains = 4 if quick else 8
    edge = _NetEdge(
        (NetFault("reset", budget=resets, direction="down",
                  after_bytes=20),),
    )
    try:
        trains = _net_trains(edge.compiled, n_trains)
        client = edge.client(retry=RetryPolicy(
            max_attempts=resets + 2, backoff_base_s=0.01,
            backoff_cap_s=0.05, budget=resets,
        ))
        try:
            results = [client.infer(t) for t in trains]
            stats = client.stats()
        finally:
            client.close()
        _check_net_results(edge, trains, results, "net-reset-storm")
        # Request 0 burns every armed connection: the pool is empty
        # after each RST, so each retry opens the next armed socket.
        _check(results[0].attempts == resets + 1,
               f"net-reset-storm: request 0 took {results[0].attempts} "
               f"attempts, want {resets + 1}")
        _check(results[0].replayed,
               "net-reset-storm: request 0 final answer was not a replay")
        _check(all(r.attempts == 1 for r in results[1:]),
               "net-reset-storm: a clean request needed retries")
        _check(edge.proxy.fired("reset") == resets,
               f"net-reset-storm: fired {edge.proxy.fired('reset')} "
               f"resets, want {resets}")
        _check(stats["retries"] == resets and stats["conn_errors"] == resets,
               f"net-reset-storm: retries={stats['retries']} "
               f"conn_errors={stats['conn_errors']}, want {resets} each")
        _check(stats["timeouts"] == 0 and stats["budget_exhausted"] == 0,
               "net-reset-storm: unexpected timeouts or budget exhaustion")
        _check(stats["replays"] == 1,
               f"net-reset-storm: client saw {stats['replays']} replay "
               f"responses, want 1 (only the last retry is delivered)")
        gw = edge.gateway.metrics.snapshot()
        _check(gw["idempotent_replays"] == {"tenant-a": resets},
               f"net-reset-storm: gateway replays "
               f"{gw['idempotent_replays']} != {{'tenant-a': {resets}}}")
        _check(edge.server.stats().completed == n_trains,
               "net-reset-storm: server computed a retried request twice")
        return {
            "resets": resets,
            "n_trains": n_trains,
            "client": stats,
            "proxy": edge.proxy.stats(),
            "gateway_replays": dict(gw["idempotent_replays"]),
        }
    finally:
        edge.close()


def _scenario_net_latency_spike(quick: bool, marker_dir: str) -> Dict:
    """Responses delayed 900ms against a 300ms client timeout: the
    request is accepted-then-lost.  Each timed-out attempt is answered
    on retry by the idempotency ledger -- never recomputed."""
    from repro.gateway import RetryPolicy
    from repro.netchaos import NetFault

    spikes = 1 if quick else 2
    n_trains = 4 if quick else 8
    edge = _NetEdge(
        (NetFault("latency", budget=spikes, direction="down",
                  delay_ms=900.0),),
    )
    try:
        trains = _net_trains(edge.compiled, n_trains)
        client = edge.client(
            timeout_s=0.3,
            retry=RetryPolicy(max_attempts=spikes + 2,
                              backoff_base_s=0.01, backoff_cap_s=0.05),
        )
        try:
            results = [client.infer(t) for t in trains]
            stats = client.stats()
        finally:
            client.close()
        _check_net_results(edge, trains, results, "net-latency-spike")
        _check(results[0].attempts == spikes + 1 and results[0].replayed,
               f"net-latency-spike: request 0 attempts="
               f"{results[0].attempts} replayed={results[0].replayed}, "
               f"want {spikes + 1} attempts ending in a replay")
        _check(edge.proxy.fired("latency") == spikes,
               f"net-latency-spike: fired {edge.proxy.fired('latency')} "
               f"spikes, want {spikes}")
        _check(stats["timeouts"] == spikes and stats["retries"] == spikes,
               f"net-latency-spike: timeouts={stats['timeouts']} "
               f"retries={stats['retries']}, want {spikes} each")
        _check(stats["conn_errors"] == 0 and stats["replays"] == 1,
               f"net-latency-spike: conn_errors={stats['conn_errors']} "
               f"replays={stats['replays']}, want 0 and 1")
        gw = edge.gateway.metrics.snapshot()
        _check(gw["idempotent_replays"] == {"tenant-a": spikes},
               f"net-latency-spike: gateway replays "
               f"{gw['idempotent_replays']}")
        _check(edge.server.stats().completed == n_trains,
               "net-latency-spike: a timed-out request was recomputed")
        return {
            "spikes": spikes,
            "n_trains": n_trains,
            "client": stats,
            "proxy": edge.proxy.stats(),
            "gateway_replays": dict(gw["idempotent_replays"]),
        }
    finally:
        edge.close()


def _scenario_net_black_hole(quick: bool, marker_dir: str) -> Dict:
    """Accept-then-silence upstreams: armed connections never reach the
    gateway, so -- unlike the reset/latency storms -- retries compute
    *fresh* (zero replays) and still land bit-identical."""
    from repro.gateway import RetryPolicy
    from repro.netchaos import NetFault

    holes = 1 if quick else 2
    n_trains = 4 if quick else 8
    edge = _NetEdge(
        (NetFault("blackhole", budget=holes, hold_s=10.0),),
    )
    try:
        trains = _net_trains(edge.compiled, n_trains)
        client = edge.client(
            timeout_s=0.3,
            retry=RetryPolicy(max_attempts=holes + 2,
                              backoff_base_s=0.01, backoff_cap_s=0.05),
        )
        try:
            results = [client.infer(t) for t in trains]
            stats = client.stats()
        finally:
            client.close()
        _check_net_results(edge, trains, results, "net-black-hole")
        _check(results[0].attempts == holes + 1
               and not results[0].replayed,
               f"net-black-hole: request 0 attempts={results[0].attempts} "
               f"replayed={results[0].replayed}, want {holes + 1} fresh")
        _check(edge.proxy.fired("blackhole") == holes,
               f"net-black-hole: fired {edge.proxy.fired('blackhole')} "
               f"holes, want {holes}")
        _check(stats["timeouts"] == holes and stats["retries"] == holes,
               f"net-black-hole: timeouts={stats['timeouts']} "
               f"retries={stats['retries']}, want {holes} each")
        _check(stats["replays"] == 0,
               "net-black-hole: the gateway never saw the black-holed "
               "request, so nothing should replay")
        gw = edge.gateway.metrics.snapshot()
        _check(gw["idempotent_replays"] == {},
               f"net-black-hole: gateway replays {gw['idempotent_replays']}")
        _check(edge.server.stats().completed == n_trains,
               "net-black-hole: duplicate compute after black-hole retry")
        return {
            "holes": holes,
            "n_trains": n_trains,
            "client": stats,
            "proxy": edge.proxy.stats(),
        }
    finally:
        edge.close()


def _scenario_net_slow_client(quick: bool, marker_dir: str) -> Dict:
    """Slowloris request trickle (40-byte chunks, 4ms pauses) on the
    upload direction.  The gateway must tolerate slow frames: every
    request completes first try, with no retries anywhere."""
    from repro.netchaos import NetFault

    slows = 2 if quick else 4
    n_trains = 4 if quick else 8
    edge = _NetEdge(
        (NetFault("slow-send", budget=slows, direction="up",
                  chunk_bytes=40, pause_ms=4.0),),
    )
    try:
        trains = _net_trains(edge.compiled, n_trains)
        # keep_alive=False: one connection per request, so exactly
        # `slows` of the `n_trains` connections are armed.
        client = edge.client(keep_alive=False, timeout_s=10.0)
        try:
            results = [client.infer(t) for t in trains]
            stats = client.stats()
        finally:
            client.close()
        _check_net_results(edge, trains, results, "net-slow-client")
        _check(edge.proxy.fired("slow-send") == slows,
               f"net-slow-client: fired {edge.proxy.fired('slow-send')} "
               f"slow sockets, want {slows}")
        _check(stats["retries"] == 0 and stats["timeouts"] == 0
               and stats["conn_errors"] == 0 and stats["replays"] == 0,
               f"net-slow-client: expected a clean ledger, got {stats}")
        _check(stats["connections_opened"] == n_trains,
               f"net-slow-client: opened {stats['connections_opened']} "
               f"connections, want {n_trains} (keep-alive off)")
        _check(edge.server.stats().completed == n_trains,
               "net-slow-client: completed count diverged")
        return {
            "slows": slows,
            "n_trains": n_trains,
            "client": stats,
            "proxy": edge.proxy.stats(),
        }
    finally:
        edge.close()


def _scenario_net_hedge_race(quick: bool, marker_dir: str) -> Dict:
    """One delayed primary races a hedged duplicate carrying the same
    idempotency key: the hedge wins with a ledger replay -- one
    compute, one replay, zero retries."""
    from repro.netchaos import NetFault

    n_trains = 4 if quick else 8
    edge = _NetEdge(
        (NetFault("latency", budget=1, direction="down",
                  delay_ms=700.0),),
    )
    try:
        trains = _net_trains(edge.compiled, n_trains)
        client = edge.client(hedge_after_ms=150.0, timeout_s=10.0)
        try:
            results = [client.infer(t) for t in trains]
            stats = client.stats()
        finally:
            client.close()
        _check_net_results(edge, trains, results, "net-hedge-race")
        _check(results[0].hedged and results[0].attempts == 1,
               f"net-hedge-race: request 0 hedged={results[0].hedged} "
               f"attempts={results[0].attempts}, want one hedged attempt")
        _check(results[0].replayed,
               "net-hedge-race: the winning hedge must be a replay of "
               "the primary's recorded compute")
        _check(all(not r.hedged for r in results[1:]),
               "net-hedge-race: an un-delayed request hedged")
        _check(stats["hedges"] == 1 and stats["hedge_wins"] == 1,
               f"net-hedge-race: hedges={stats['hedges']} "
               f"hedge_wins={stats['hedge_wins']}, want 1 each")
        _check(stats["retries"] == 0 and stats["timeouts"] == 0,
               "net-hedge-race: hedging must not consume retries")
        _check(edge.proxy.fired("latency") == 1,
               f"net-hedge-race: fired {edge.proxy.fired('latency')}")
        gw = edge.gateway.metrics.snapshot()
        _check(gw["idempotent_replays"] == {"tenant-a": 1},
               f"net-hedge-race: gateway replays {gw['idempotent_replays']}")
        _check(edge.server.stats().completed == n_trains,
               "net-hedge-race: the hedge computed a second time")
        return {
            "n_trains": n_trains,
            "client": stats,
            "proxy": edge.proxy.stats(),
            "gateway_replays": dict(gw["idempotent_replays"]),
        }
    finally:
        edge.close()


def _scenario_net_overload_shed(quick: bool, marker_dir: str) -> Dict:
    """Shed-before-queue under a wedged backend: with the forward pass
    held, critical (priority-0) traffic keeps queueing up to the hard
    limit while batch (priority-2) traffic sheds as ``overloaded`` with
    a ``Retry-After`` hint at the soft watermark.  Releasing the hold
    drains every admitted request to a bit-identical answer."""
    edge = _NetEdge(queue_limit=64, shed_queue_depth=2)
    try:
        trains = _net_trains(edge.compiled, 4)
        release = threading.Event()
        original_forward = edge.server._forward

        def held_forward(rows):
            release.wait(15.0)
            return original_forward(rows)

        edge.server._forward = held_forward
        results: Dict[int, object] = {}
        errors: List[BaseException] = []

        def request(i: int) -> None:
            # Distinct seeds: each client draws its own idempotency-key
            # stream, so concurrent requests never alias in the ledger.
            client = edge.client("demo-key-a", seed=i + 1)
            try:
                results[i] = client.infer(trains[i])
            except BaseException as exc:  # surfaced via `errors`
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=request, args=(0,), daemon=True)]
        threads[0].start()
        _wait_until(
            lambda: (edge.server.stats().pending == 1
                     and edge.server.queue_depth() == 0),
            label="net-overload-shed: request 0 in flight",
        )
        # Two more critical requests stack up behind the held batch.
        for i in (1, 2):
            thread = threading.Thread(target=request, args=(i,),
                                      daemon=True)
            thread.start()
            threads.append(thread)
            _wait_until(lambda i=i: edge.server.queue_depth() >= i,
                        label=f"net-overload-shed: request {i} queued")
        # Batch-priority traffic now sheds at the soft watermark.
        shed_client = edge.client("demo-key-burst", seed=99)
        try:
            sheds = [shed_client.infer(trains[3]) for _ in range(3)]
            shed_stats = shed_client.stats()
        finally:
            shed_client.close()
        for k, res in enumerate(sheds):
            _check(res.status == 503,
                   f"net-overload-shed: shed {k} got HTTP {res.status}")
            _check(res.payload["error"]["code"] == "overloaded",
                   f"net-overload-shed: shed {k} code "
                   f"{res.payload['error']['code']!r}")
            _check(res.retry_after_s == 1.0,
                   f"net-overload-shed: shed {k} Retry-After "
                   f"{res.retry_after_s} != 1.0")
        _check(shed_stats["retries"] == 0,
               "net-overload-shed: an HTTP 503 must not trigger "
               "client-side retries")
        # Critical traffic is still admitted past the soft watermark.
        threads.append(threading.Thread(target=request, args=(3,),
                                        daemon=True))
        threads[-1].start()
        _wait_until(lambda: edge.server.queue_depth() >= 3,
                    label="net-overload-shed: request 3 queued")
        release.set()
        for thread in threads:
            thread.join(timeout=15.0)
        edge.server._forward = original_forward
        _check(not errors,
               f"net-overload-shed: unexpected client errors: {errors}")
        ordered = [results[i] for i in sorted(results)]
        _check_net_results(edge, trains, ordered, "net-overload-shed")
        gw = edge.gateway.metrics.snapshot()
        _check(gw["sheds"] == {("overloaded", 2): 3},
               f"net-overload-shed: shed ledger {gw['sheds']} != "
               f"{{('overloaded', 2): 3}}")
        _check(edge.server.stats().completed == 4,
               "net-overload-shed: completed count diverged")
        return {
            "sheds": {f"{code}:p{prio}": count
                      for (code, prio), count in gw["sheds"].items()},
            "admitted": len(ordered),
            "shed_client": shed_stats,
        }
    finally:
        edge.close()


NETWORK_SCENARIOS = (
    "net-reset-storm",
    "net-latency-spike",
    "net-black-hole",
    "net-slow-client",
    "net-hedge-race",
    "net-overload-shed",
)


SCENARIOS: Dict[str, Callable[[bool, str], Dict]] = {
    "worker-kill": _scenario_worker_kill,
    "worker-freeze": _scenario_worker_freeze,
    "shm-unlink": _scenario_shm_unlink,
    "shm-corrupt": _scenario_shm_corrupt,
    "poison-batch": _scenario_poison_batch,
    "breaker-cycle": _scenario_breaker_cycle,
    "node-kill": _scenario_node_kill,
    "node-partition": _scenario_node_partition,
    "scale-storm": _scenario_scale_storm,
    "net-reset-storm": _scenario_net_reset_storm,
    "net-latency-spike": _scenario_net_latency_spike,
    "net-black-hole": _scenario_net_black_hole,
    "net-slow-client": _scenario_net_slow_client,
    "net-hedge-race": _scenario_net_hedge_race,
    "net-overload-shed": _scenario_net_overload_shed,
}


# -- runner ------------------------------------------------------------------


def run_scenario(name: str, quick: bool = False) -> Dict:
    """Run one scenario; returns its report entry (never raises for
    scenario failures -- ``passed`` carries the verdict)."""
    runner = SCENARIOS[name]
    marker_dir = tempfile.mkdtemp(prefix=f"sushi-chaos-{name}-")
    start = time.monotonic()
    try:
        details = runner(quick, marker_dir)
        entry = {"name": name, "passed": True, "error": None,
                 "details": details}
    except Exception as exc:  # noqa: BLE001 - report, don't crash the run
        entry = {"name": name, "passed": False,
                 "error": f"{type(exc).__name__}: {exc}", "details": {}}
    finally:
        shutil.rmtree(marker_dir, ignore_errors=True)
    entry["elapsed_s"] = round(time.monotonic() - start, 3)
    return entry


def run_chaos(quick: bool = False,
              names: Optional[List[str]] = None) -> Dict:
    """Run the chaos campaign; returns the ``repro.chaos/v1`` report."""
    selected = list(SCENARIOS) if names is None else names
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown chaos scenarios: {unknown}")
    scenarios = [run_scenario(name, quick=quick) for name in selected]
    return {
        "schema": CHAOS_SCHEMA,
        "quick": quick,
        "workers": WORKERS,
        "scenarios": scenarios,
        "passed": all(s["passed"] for s in scenarios),
    }


def format_report(report: Dict) -> str:
    lines = [f"chaos campaign ({'quick' if report['quick'] else 'full'}, "
             f"{report['workers']} workers)"]
    for entry in report["scenarios"]:
        verdict = "ok" if entry["passed"] else "FAIL"
        detail = ""
        if entry["error"]:
            detail = f"  {entry['error']}"
        elif entry["details"]:
            pairs = ", ".join(f"{k}={v}" for k, v in entry["details"].items())
            detail = f"  ({pairs})"
        lines.append(f"  {entry['name']:<14} {verdict:>4} "
                     f"[{entry['elapsed_s']:6.2f}s]{detail}")
    lines.append("all scenarios bit-identical to serial and fully restored"
                 if report["passed"] else "CHAOS CAMPAIGN FAILED")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Inject process-level chaos into the serving pipeline "
                    "and assert bit-identical recovery.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=sorted(SCENARIOS),
                        help="run only the named scenario (repeatable)")
    parser.add_argument("--out", default=None,
                        help="write the repro.chaos/v1 JSON report here")
    args = parser.parse_args(argv)
    report = run_chaos(quick=args.quick, names=args.scenarios)
    print(format_report(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
